//! Load-trace forecasting over windowed history.
//!
//! A [`Forecaster`] turns observed load history into a piecewise-constant
//! power forecast the planner can roll forward through the emulator. Two
//! implementations bracket the design space:
//!
//! * [`HistoryForecaster`] — 24 hourly EWMA buckets over the time-of-day
//!   load pattern, warm-startable from the `sdb-workloads` behavior
//!   models ([`sdb_workloads::behavior::simulate_days`]) and updated
//!   online as the real trace unfolds. It also tracks its own running
//!   one-step-ahead mean absolute error, surfaced as the
//!   `sdb_policy_forecast_mae` gauge.
//! * [`OracleForecaster`] — returns the true remaining trace. Physically
//!   unrealizable, but it upper-bounds what any forecast-driven planner
//!   could achieve, which is exactly what the head-to-head tables need.

use std::sync::Arc;

use sdb_workloads::behavior::{hourly_profile, simulate_days, UserArchetype};
use sdb_workloads::Trace;

/// Longest horizon a history forecast will materialize, seconds. Guards
/// against pathological (e.g. infinite) horizon requests turning into
/// unbounded trace allocations; a week is far past any planning horizon
/// the corpus uses.
const MAX_HISTORY_HORIZON_S: f64 = 7.0 * 86_400.0;

/// A source of piecewise-constant load forecasts.
///
/// Implementations must be deterministic: the same observation sequence
/// must yield bit-identical forecasts, because planner decisions (and so
/// whole fleet reports) are replayed across thread counts and compared
/// byte-for-byte.
pub trait Forecaster: Send {
    /// Forecasts the load from simulation time `t_s` over `horizon_s`
    /// seconds, discretized into steps of at most `dt_s`. May return a
    /// shorter (or empty) trace if the forecastable future ends sooner.
    fn forecast(&self, t_s: f64, horizon_s: f64, dt_s: f64) -> Trace;

    /// Feeds one executed step back: the step ended at `t_s`, lasted
    /// `dt_s` seconds, and drew `load_w` watts.
    fn observe(&mut self, t_s: f64, dt_s: f64, load_w: f64);

    /// Running one-step-ahead mean absolute error, watts (0 until the
    /// first observation, and always 0 for oracles).
    fn mae_w(&self) -> f64;
}

/// Hour-of-day load model: 24 EWMA buckets plus a persistence fallback.
///
/// Each completed hour of observed load folds its mean power into the
/// bucket for that hour of day. Hours never observed fall back to the
/// most recently seen load (persistence), so a cold forecaster degrades
/// to "tomorrow looks like right now" rather than zero.
#[derive(Debug, Clone)]
pub struct HistoryForecaster {
    buckets: [f64; 24],
    primed: [bool; 24],
    alpha: f64,
    /// Most recent observed load, watts — the persistence fallback.
    last_w: f64,
    seen_any: bool,
    /// Hour-of-day currently being accumulated, with its running energy
    /// (J) and duration (s).
    acc_hour: Option<usize>,
    acc_j: f64,
    acc_s: f64,
    /// Time-weighted absolute one-step-ahead error integral (W·s) and the
    /// observed span (s) behind [`Forecaster::mae_w`].
    err_ws: f64,
    err_t: f64,
}

impl HistoryForecaster {
    /// A cold forecaster: every hour unprimed, persistence-only until
    /// observations arrive. `alpha` is the EWMA weight given to each newly
    /// completed hour (clamped to `(0, 1]`).
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        Self {
            buckets: [0.0; 24],
            primed: [false; 24],
            alpha: alpha.clamp(1e-6, 1.0),
            last_w: 0.0,
            seen_any: false,
            acc_hour: None,
            acc_j: 0.0,
            acc_s: 0.0,
            err_ws: 0.0,
            err_t: 0.0,
        }
    }

    /// A forecaster warm-started from the behavior model: simulates
    /// `days` days of `archetype` usage (seeded by `seed`) and folds each
    /// day's hourly profile into the buckets, oldest first, so the most
    /// recent simulated day carries the most EWMA weight.
    #[must_use]
    pub fn warmed(archetype: &UserArchetype, days: u32, seed: u64, alpha: f64) -> Self {
        let mut f = Self::new(alpha);
        for day in simulate_days(archetype, days, seed) {
            let profile = hourly_profile(&day);
            for (hour, &mean_w) in profile.iter().enumerate() {
                f.fold_hour(hour, mean_w);
            }
        }
        f
    }

    /// A forecaster warm-started from recorded history: folds each past
    /// day trace (oldest first, arbitrary segment granularity — unlike
    /// [`sdb_workloads::behavior::hourly_profile`] this does not require
    /// minute-level days) into the hour-of-day buckets. Days longer than
    /// 24 h wrap; hours a day never touches stay unprimed.
    pub fn from_history<'a, I>(days: I, alpha: f64) -> Self
    where
        I: IntoIterator<Item = &'a Trace>,
    {
        let mut f = Self::new(alpha);
        for day in days {
            f.fold_day(day);
        }
        f
    }

    /// Folds one recorded day into the bucket model.
    fn fold_day(&mut self, day: &Trace) {
        let mut energy_j = [0.0_f64; 24];
        let mut span_s = [0.0_f64; 24];
        let mut t = 0.0;
        for p in day.points() {
            // Split the point across hour boundaries so long segments
            // credit each hour they cover.
            let mut left = p.dur_s;
            while left > 0.0 {
                let hour = Self::hour_of(t);
                let until_boundary = 3600.0 - (t % 3600.0);
                let step = left.min(if until_boundary > 0.0 {
                    until_boundary
                } else {
                    3600.0
                });
                energy_j[hour] += p.load_w * step;
                span_s[hour] += step;
                t += step;
                left -= step;
            }
        }
        for hour in 0..24 {
            if span_s[hour] > 0.0 {
                self.fold_hour(hour, energy_j[hour] / span_s[hour]);
            }
        }
    }

    /// The model's prediction for the load at absolute time `t_s`, watts.
    #[must_use]
    pub fn predict_w(&self, t_s: f64) -> f64 {
        let hour = Self::hour_of(t_s);
        if self.primed[hour] {
            self.buckets[hour]
        } else if self.seen_any {
            self.last_w
        } else {
            0.0
        }
    }

    /// True once the bucket for `hour` (0..24) has absorbed at least one
    /// completed hour of history.
    #[must_use]
    pub fn hour_primed(&self, hour: usize) -> bool {
        self.primed[hour % 24]
    }

    fn hour_of(t_s: f64) -> usize {
        let h = (t_s / 3600.0).floor() as i64;
        h.rem_euclid(24) as usize
    }

    fn fold_hour(&mut self, hour: usize, mean_w: f64) {
        if self.primed[hour] {
            self.buckets[hour] += self.alpha * (mean_w - self.buckets[hour]);
        } else {
            self.buckets[hour] = mean_w;
            self.primed[hour] = true;
        }
    }
}

impl Forecaster for HistoryForecaster {
    fn forecast(&self, t_s: f64, horizon_s: f64, dt_s: f64) -> Trace {
        let mut out = Trace::new();
        let dt = dt_s.max(1.0);
        let mut offset = 0.0;
        let horizon = horizon_s.min(MAX_HISTORY_HORIZON_S);
        while offset < horizon {
            let step = dt.min(horizon - offset);
            if step <= 0.0 {
                break;
            }
            out.push(self.predict_w(t_s + offset), 0.0, step);
            offset += step;
        }
        out
    }

    fn observe(&mut self, t_s: f64, dt_s: f64, load_w: f64) {
        if dt_s <= 0.0 {
            return;
        }
        let start = t_s - dt_s;
        // One-step-ahead error: what the model would have predicted for
        // this step before seeing it, vs what actually happened.
        let predicted = self.predict_w(start);
        self.err_ws += (load_w - predicted).abs() * dt_s;
        self.err_t += dt_s;
        self.last_w = load_w;
        self.seen_any = true;
        // Fold completed hours into the bucket model. Steps are short
        // (the scheduler caps them at the simulation step), so crediting
        // the whole step to its start hour loses nothing measurable.
        let hour = Self::hour_of(start);
        match self.acc_hour {
            Some(h) if h == hour => {}
            Some(h) => {
                if self.acc_s > 0.0 {
                    let mean = self.acc_j / self.acc_s;
                    self.fold_hour(h, mean);
                }
                self.acc_hour = Some(hour);
                self.acc_j = 0.0;
                self.acc_s = 0.0;
            }
            None => self.acc_hour = Some(hour),
        }
        self.acc_j += load_w * dt_s;
        self.acc_s += dt_s;
    }

    fn mae_w(&self) -> f64 {
        if self.err_t > 0.0 {
            self.err_ws / self.err_t
        } else {
            0.0
        }
    }
}

/// Perfect forecast: replays the true remaining trace.
///
/// Holds the whole workload and answers every forecast request with the
/// exact sub-trace starting at the requested time. Its MAE is zero by
/// construction.
#[derive(Debug, Clone)]
pub struct OracleForecaster {
    trace: Arc<Trace>,
}

impl OracleForecaster {
    /// Wraps the true workload trace.
    #[must_use]
    pub fn new(trace: Arc<Trace>) -> Self {
        Self { trace }
    }
}

impl Forecaster for OracleForecaster {
    fn forecast(&self, t_s: f64, horizon_s: f64, _dt_s: f64) -> Trace {
        let mut out = Trace::new();
        let mut cursor = 0.0;
        let mut remaining = horizon_s;
        for p in self.trace.points() {
            let end = cursor + p.dur_s;
            if end <= t_s {
                cursor = end;
                continue;
            }
            if remaining <= 0.0 {
                break;
            }
            // Clip the point to [t_s, t_s + horizon).
            let avail = end - t_s.max(cursor);
            let take = avail.min(remaining);
            if take > 0.0 {
                out.push(p.load_w, p.external_w, take);
                remaining -= take;
            }
            cursor = end;
        }
        out
    }

    fn observe(&mut self, _t_s: f64, _dt_s: f64, _load_w: f64) {}

    fn mae_w(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_forecaster_predicts_zero_then_persists() {
        let mut f = HistoryForecaster::new(0.3);
        assert_eq!(f.predict_w(0.0), 0.0);
        f.observe(60.0, 60.0, 2.5);
        // Hour 0 is still accumulating (not primed), so persistence wins.
        assert!((f.predict_w(7.0 * 3600.0) - 2.5).abs() < 1e-12);
        let fc = f.forecast(0.0, 600.0, 120.0);
        assert_eq!(fc.points().len(), 5);
        assert!((fc.mean_load_w() - 2.5).abs() < 1e-12);
        assert!((fc.duration_s() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn completed_hours_prime_their_buckets() {
        let mut f = HistoryForecaster::new(1.0);
        // A full hour at 4 W, then a step in the next hour closes it out.
        let mut t = 0.0;
        while t < 3600.0 {
            t += 60.0;
            f.observe(t, 60.0, 4.0);
        }
        f.observe(t + 60.0, 60.0, 1.0);
        assert!(f.hour_primed(0));
        assert!((f.predict_w(0.0) - 4.0).abs() < 1e-9);
        // And tomorrow's hour 0 predicts the same (24 h periodicity).
        assert!((f.predict_w(24.0 * 3600.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn warmed_forecaster_is_primed_and_deterministic() {
        let arch = UserArchetype::runner();
        let a = HistoryForecaster::warmed(&arch, 7, 0xF0CA57, 0.3);
        let b = HistoryForecaster::warmed(&arch, 7, 0xF0CA57, 0.3);
        for h in 0..24 {
            assert!(a.hour_primed(h), "hour {h} unprimed after warm start");
            assert_eq!(
                a.predict_w(h as f64 * 3600.0),
                b.predict_w(h as f64 * 3600.0)
            );
        }
    }

    #[test]
    fn from_history_bins_arbitrary_granularity_days() {
        // One day: 2 W for the first hour and a half, 6 W until hour 3.
        let mut day = Trace::new();
        day.push(2.0, 0.0, 5400.0);
        day.push(6.0, 0.0, 5400.0);
        let f = HistoryForecaster::from_history(&[day], 1.0);
        assert!((f.predict_w(0.0) - 2.0).abs() < 1e-9);
        // Hour 1 is half 2 W, half 6 W.
        assert!((f.predict_w(3600.0) - 4.0).abs() < 1e-9);
        assert!((f.predict_w(2.0 * 3600.0) - 6.0).abs() < 1e-9);
        assert!(!f.hour_primed(3), "untouched hours stay unprimed");
    }

    #[test]
    fn mae_tracks_persistent_error() {
        let mut f = HistoryForecaster::new(0.3);
        f.observe(60.0, 60.0, 3.0); // predicted 0.0 → |err| = 3
        f.observe(120.0, 60.0, 3.0); // predicted 3.0 → |err| = 0
        assert!((f.mae_w() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn oracle_returns_exact_remainder() {
        let mut t = Trace::new();
        t.push(1.0, 0.0, 100.0);
        t.push(5.0, 0.5, 200.0);
        t.push(2.0, 0.0, 300.0);
        let oracle = OracleForecaster::new(Arc::new(t));
        // From t = 150 with a 250 s horizon: 150 s of the 5 W point, then
        // 100 s of the 2 W point.
        let fc = oracle.forecast(150.0, 250.0, 60.0);
        let pts = fc.points();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].load_w - 5.0).abs() < 1e-12);
        assert!((pts[0].dur_s - 150.0).abs() < 1e-9);
        assert!((pts[1].load_w - 2.0).abs() < 1e-12);
        assert!((pts[1].dur_s - 100.0).abs() < 1e-9);
        assert_eq!(oracle.mae_w(), 0.0);
        // Infinite horizon clips to the trace end.
        let all = oracle.forecast(0.0, f64::INFINITY, 60.0);
        assert!((all.duration_s() - 600.0).abs() < 1e-9);
    }
}
