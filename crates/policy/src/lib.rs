//! Plan-based lookahead policies for Software Defined Batteries.
//!
//! The paper's CCB/RBL blend is *instantaneously optimal*: at every tick
//! it splits the load from gauge state alone, with no model of what the
//! workload will do next. Its own Section 8 observes that "knowledge of
//! the future workload" is where the remaining headroom lives. This crate
//! quantifies that headroom end-to-end:
//!
//! * [`forecast`] — load forecasting over the `sdb-workloads` behavior
//!   models: [`forecast::HistoryForecaster`] folds windowed history into
//!   24 hourly EWMA buckets (warm-startable from simulated user days) and
//!   emits piecewise-constant power forecasts, while
//!   [`forecast::OracleForecaster`] replays the true remaining trace — the
//!   perfect-forecast upper bound.
//! * [`planner`] — a receding-horizon planner ([`planner::Planner`]): at a
//!   configurable re-plan cadence it rolls the forecast forward through a
//!   cloned emulator for each candidate discharge directive and commits
//!   the lexicographically best one (battery life, then unserved energy,
//!   then losses) through the [`sdb_core::LookaheadPolicy`] seam. The plan
//!   vocabulary is the same [`sdb_core::DischargeDirective`] the four
//!   paper APIs accept, so greedy blend, planner, and oracle are drop-in
//!   interchangeable.
//! * [`tuner`] — a directive auto-tuner mapping forecast statistics
//!   (duty factor, burstiness) to a CCB-vs-RBL blend; the planner uses it
//!   to anchor its first plan.
//! * [`corpus`] — the evaluation corpus: named pack × workload scenarios
//!   and a deterministic greedy / planned / oracle head-to-head runner
//!   with text and JSON reports (the `sdb policy` subcommand).
//!
//! Everything is a pure function of `(scenario, seed)`: re-plans, rollouts
//! and reports are bit-identical across runs and thread counts.

pub mod corpus;
pub mod forecast;
pub mod planner;
pub mod tuner;

pub use corpus::{corpus, run_head_to_head, HeadToHead, PolicyMode, RunOutcome, Scenario};
pub use forecast::{Forecaster, HistoryForecaster, OracleForecaster};
pub use planner::{Planner, PlannerConfig};
pub use tuner::{forecast_stats, tuned_directive, ForecastStats};
