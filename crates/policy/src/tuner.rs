//! Directive auto-tuner: forecast statistics → CCB-vs-RBL blend.
//!
//! The paper leaves the blend parameter `d` (0 = pure CCB wear balancing,
//! 1 = pure RBL runtime maximization) to the OS. This module picks it
//! from the *shape* of the forecast rather than a fixed constant:
//!
//! * Sustained, high-duty load → runtime is the scarce resource; lean RBL.
//! * Idle-dominated, bursty load → there is slack to shuffle wear; lean
//!   CCB.
//!
//! The mapping is a small monotone closed form, so the tuned directive is
//! continuous in the statistics and trivially deterministic. The planner
//! uses it to anchor its first plan (tie-breaks and hysteresis measure
//! distance from the tuned point until the first rollout commits).

use sdb_core::policy::DischargeDirective;
use sdb_workloads::Trace;

/// Shape statistics of a (forecast) load trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastStats {
    /// Time-weighted mean load, watts.
    pub mean_w: f64,
    /// Peak load, watts.
    pub peak_w: f64,
    /// Fraction of time the load is at or above half the peak — the
    /// high-duty fraction.
    pub high_duty: f64,
    /// `1 - mean/peak`: 0 for constant load, → 1 for spiky load.
    pub burstiness: f64,
}

/// Computes [`ForecastStats`] for a trace. An empty trace yields all
/// zeros (and tunes to the CCB-leaning floor).
#[must_use]
pub fn forecast_stats(trace: &Trace) -> ForecastStats {
    let total_s = trace.duration_s();
    if total_s <= 0.0 {
        return ForecastStats {
            mean_w: 0.0,
            peak_w: 0.0,
            high_duty: 0.0,
            burstiness: 0.0,
        };
    }
    let mean_w = trace.mean_load_w();
    let peak_w = trace.peak_load_w();
    let mut high_s = 0.0;
    for p in trace.points() {
        if peak_w > 0.0 && p.load_w >= 0.5 * peak_w {
            high_s += p.dur_s;
        }
    }
    let burstiness = if peak_w > 0.0 {
        (1.0 - mean_w / peak_w).clamp(0.0, 1.0)
    } else {
        0.0
    };
    ForecastStats {
        mean_w,
        peak_w,
        high_duty: high_s / total_s,
        burstiness,
    }
}

/// Maps forecast statistics to a blend directive:
/// `d = 0.2 + 0.6·high_duty + 0.2·burstiness`, clamped to `[0, 1]`.
///
/// Constant heavy load tunes to 0.8 (RBL-leaning: every joule counts);
/// idle-with-spikes tunes near 0.4 (CCB-leaning: balance wear, keep
/// headroom for the spikes). The floor of 0.2 keeps some RBL influence
/// even for pure idle so the pack never wear-balances itself into
/// serving load from a high-resistance cell alone.
#[must_use]
pub fn tuned_directive(stats: &ForecastStats) -> DischargeDirective {
    DischargeDirective::new(0.2 + 0.6 * stats.high_duty + 0.2 * stats.burstiness)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_heavy_load_leans_rbl() {
        let t = Trace::constant(5.0, 3600.0);
        let s = forecast_stats(&t);
        assert!((s.high_duty - 1.0).abs() < 1e-12);
        assert!(s.burstiness.abs() < 1e-12);
        assert!((tuned_directive(&s).value() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn idle_with_spikes_leans_ccb() {
        let mut t = Trace::new();
        t.push(0.1, 0.0, 3500.0);
        t.push(8.0, 0.0, 100.0);
        let s = forecast_stats(&t);
        let d = tuned_directive(&s).value();
        let heavy = tuned_directive(&forecast_stats(&Trace::constant(5.0, 3600.0))).value();
        assert!(
            d < heavy,
            "bursty ({d}) should lean more CCB than sustained ({heavy})"
        );
        assert!((0.2..=1.0).contains(&d));
    }

    #[test]
    fn empty_trace_tunes_to_floor() {
        let s = forecast_stats(&Trace::new());
        assert!((tuned_directive(&s).value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn tuned_directive_is_monotone_in_duty() {
        let mut prev = -1.0;
        for k in 0..=10 {
            let s = ForecastStats {
                mean_w: 1.0,
                peak_w: 2.0,
                high_duty: f64::from(k) / 10.0,
                burstiness: 0.5,
            };
            let d = tuned_directive(&s).value();
            assert!(d >= prev);
            prev = d;
        }
    }
}
