//! Receding-horizon directive planner.
//!
//! At a configurable re-plan cadence the planner asks its [`Forecaster`]
//! for the coming load, then *shoots*: for each candidate discharge
//! directive on a discretized grid it clones the live pack, rolls the
//! forecast forward through a disposable runtime + emulator pair, and
//! scores the rollout lexicographically — battery life first, then
//! unserved energy, then conversion losses. The winner is committed
//! through the [`sdb_core::LookaheadPolicy`] seam as an ordinary
//! [`DischargeDirective`], so downstream (the four paper APIs, the push
//! rate-limit, the observability surface) nothing knows or cares that a
//! planner is steering.
//!
//! Determinism: rollouts are pure functions of `(pack state, forecast,
//! candidate)`; ties break toward the currently committed directive and
//! then toward the smaller candidate, and a hysteresis margin suppresses
//! switches that don't clear a minimum gain — so plans are bit-identical
//! across runs and thread counts, and directive thrash is bounded by
//! construction.

use crate::forecast::{Forecaster, HistoryForecaster, OracleForecaster};
use crate::tuner::{forecast_stats, tuned_directive};
use sdb_core::policy::{DischargeDirective, PolicyInput};
use sdb_core::runtime::SdbRuntime;
use sdb_core::scheduler::{run_trace_prepared, SimOptions};
use sdb_core::{LookaheadPolicy, PlanUpdate};
use sdb_emulator::{Microcontroller, PackSnapshot};
use sdb_observe::Observer;
use sdb_workloads::behavior::UserArchetype;
use sdb_workloads::traces::TracePoint;
use sdb_workloads::Trace;
use std::sync::Arc;

/// Planner knobs. [`PlannerConfig::default`] matches the corpus runs:
/// a 4 h horizon re-planned every 30 min over a 9-point directive grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Lookahead horizon, seconds. Oracles pass [`f64::INFINITY`] to plan
    /// over the whole remaining trace.
    pub horizon_s: f64,
    /// Re-plan cadence, seconds ([`f64::INFINITY`] plans exactly once).
    pub replan_period_s: f64,
    /// Number of evenly spaced candidate directives on `[0, 1]` (min 2).
    pub candidates: usize,
    /// Rollout simulation step, seconds. Matches the outer driver's
    /// default step so oracle rollouts reproduce the outer run exactly.
    pub plan_dt_s: f64,
    /// Runtime update period used inside rollouts, seconds (matches the
    /// outer runtime for fidelity).
    pub update_period_s: f64,
    /// Hysteresis: a challenger must extend rollout battery life by at
    /// least this much to displace the committed directive, seconds.
    pub min_life_gain_s: f64,
    /// Hysteresis: or cut rollout losses by at least this fraction.
    pub min_loss_gain_frac: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            horizon_s: 4.0 * 3600.0,
            replan_period_s: 1800.0,
            candidates: 9,
            plan_dt_s: 60.0,
            update_period_s: 60.0,
            min_life_gain_s: 60.0,
            min_loss_gain_frac: 0.02,
        }
    }
}

/// Rollout score, compared lexicographically.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Score {
    life_s: f64,
    unmet_j: f64,
    loss_j: f64,
}

impl Score {
    /// Strictly better than `other`: longer life, then less unserved
    /// energy, then (beyond float noise) lower losses.
    fn beats(&self, other: &Score) -> bool {
        if self.life_s != other.life_s {
            return self.life_s > other.life_s;
        }
        if self.unmet_j != other.unmet_j {
            return self.unmet_j < other.unmet_j;
        }
        self.loss_j < other.loss_j - loss_tol(other.loss_j)
    }

    /// Beats `incumbent` by enough to overcome switching hysteresis.
    fn beats_with_margin(&self, incumbent: &Score, cfg: &PlannerConfig) -> bool {
        self.life_s > incumbent.life_s + cfg.min_life_gain_s
            || self.unmet_j < incumbent.unmet_j - 1e-6
            || self.loss_j < incumbent.loss_j * (1.0 - cfg.min_loss_gain_frac)
    }
}

/// Loss comparisons ignore sub-nanojoule float noise so candidate
/// ordering can't flip on the last bit of an accumulated sum.
fn loss_tol(loss_j: f64) -> f64 {
    1e-9 + 1e-12 * loss_j.abs()
}

/// Reusable rollout state: one scratch emulator + runtime pair shared by
/// every candidate, entered through snapshot/restore instead of a
/// per-candidate pack clone. After the first rollout warms the buffers,
/// a full candidate sweep performs zero heap allocations.
struct RolloutScratch {
    micro: Microcontroller,
    runtime: SdbRuntime,
    snap: PackSnapshot,
    input: PolicyInput,
}

impl RolloutScratch {
    fn new(live: &Microcontroller) -> Self {
        let mut micro = live.clone();
        micro.set_observer(Observer::disabled());
        let mut runtime = SdbRuntime::new(micro.battery_count());
        runtime.set_observer(Observer::disabled());
        let input = PolicyInput::from_micro(&micro);
        Self {
            micro,
            runtime,
            snap: PackSnapshot::default(),
            input,
        }
    }
}

/// The receding-horizon planner. Implements [`LookaheadPolicy`]; drive it
/// with [`sdb_core::scheduler::run_trace_planned`].
pub struct Planner {
    cfg: PlannerConfig,
    forecaster: Box<dyn Forecaster>,
    /// Currently committed directive value.
    current_d: f64,
    planned_once: bool,
    since_plan_s: f64,
    replans: u64,
    /// Lazily built rollout scratch (sized to the pack on first plan).
    scratch: Option<RolloutScratch>,
}

impl Planner {
    /// A planner over an arbitrary forecaster. The first plan anchors its
    /// hysteresis at the auto-tuned directive for the initial forecast.
    #[must_use]
    pub fn new(cfg: PlannerConfig, forecaster: Box<dyn Forecaster>) -> Self {
        Self {
            cfg,
            forecaster,
            current_d: 0.5,
            planned_once: false,
            since_plan_s: 0.0,
            replans: 0,
            scratch: None,
        }
    }

    /// The standard history-driven planner: an hourly-bucket forecaster
    /// warm-started from `days` simulated days of `archetype` usage.
    #[must_use]
    pub fn history(cfg: PlannerConfig, archetype: &UserArchetype, days: u32, seed: u64) -> Self {
        Self::new(
            cfg,
            Box::new(HistoryForecaster::warmed(archetype, days, seed, 0.3)),
        )
    }

    /// The perfect-forecast oracle over the true workload `trace`: the
    /// horizon is forced to the entire remaining trace, while the re-plan
    /// cadence comes from `cfg`. With `replan_period_s = f64::INFINITY`
    /// the oracle plans exactly once at t = 0, and because its rollout is
    /// an exact simulation over every grid directive (including the
    /// greedy baseline's, if on-grid), its realized battery life can
    /// never fall below the best fixed directive's — the upper bound the
    /// head-to-head tables report. A finite cadence lets the oracle also
    /// adapt mid-trace, matching the planner's degrees of freedom.
    #[must_use]
    pub fn oracle(mut cfg: PlannerConfig, trace: Arc<Trace>) -> Self {
        cfg.horizon_s = f64::INFINITY;
        Self::new(cfg, Box::new(OracleForecaster::new(trace)))
    }

    /// How many plans have been committed so far.
    #[must_use]
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// The currently committed directive value.
    #[must_use]
    pub fn current_directive(&self) -> f64 {
        self.current_d
    }

    /// The forecaster's running one-step-ahead MAE, watts.
    #[must_use]
    pub fn forecast_mae_w(&self) -> f64 {
        self.forecaster.mae_w()
    }

    /// Rolls pre-resampled forecast `points` forward from a snapshot of
    /// `micro` under a fixed directive `d` and scores the outcome.
    /// Rollouts run fully unobserved so planning leaves no trace in
    /// metrics or event streams, and reuse one scratch emulator/runtime
    /// pair restored through [`PackSnapshot`] instead of cloning the
    /// pack per candidate — zero heap allocations per rollout once the
    /// scratch is warm.
    fn rollout(&mut self, micro: &Microcontroller, d: f64, points: &[TracePoint]) -> Score {
        // Nested profiler scope: the rollout's own trace/micro steps land
        // under planner_rollout in the phase tree, separated from the
        // live simulation's steps.
        let _prof = sdb_prof::sub(sdb_prof::Phase::PlannerRollout);
        let stale = self
            .scratch
            .as_ref()
            .is_none_or(|s| s.micro.battery_count() != micro.battery_count());
        if stale {
            self.scratch = Some(RolloutScratch::new(micro));
        }
        let s = self.scratch.as_mut().expect("just ensured");
        micro.snapshot_into(&mut s.snap);
        s.micro
            .restore_from(&s.snap)
            .expect("scratch pack matches the live pack's shape");
        s.runtime.set_update_period(self.cfg.update_period_s);
        s.runtime
            .set_discharge_directive(DischargeDirective::new(d));
        // A fresh runtime evaluates on its first tick; restore that state
        // so the reused runtime behaves identically to a per-candidate one.
        s.runtime.force_policy_refresh();
        let res = run_trace_prepared(
            &mut s.micro,
            &mut s.runtime,
            points,
            &SimOptions {
                max_dt_s: self.cfg.plan_dt_s,
                stop_on_brownout: true,
            },
            &mut s.input,
        );
        Score {
            life_s: res.battery_life_s(),
            unmet_j: res.unmet_j,
            loss_j: res.total_loss_j(),
        }
    }
}

impl LookaheadPolicy for Planner {
    fn plan(
        &mut self,
        t_s: f64,
        micro: &sdb_emulator::Microcontroller,
        _input: &PolicyInput,
    ) -> Option<PlanUpdate> {
        if self.planned_once && self.since_plan_s < self.cfg.replan_period_s {
            return None;
        }
        let first = !self.planned_once;
        self.planned_once = true;
        self.since_plan_s = 0.0;

        let forecast = self
            .forecaster
            .forecast(t_s, self.cfg.horizon_s, self.cfg.plan_dt_s);
        if forecast.points().is_empty() {
            return None;
        }
        if first {
            // Anchor hysteresis and tie-breaking at the auto-tuned blend
            // for this forecast shape.
            self.current_d = tuned_directive(&forecast_stats(&forecast)).value();
        }

        // Candidate grid, plus the incumbent if it sits off-grid.
        let k = self.cfg.candidates.max(2);
        let mut cands: Vec<f64> = (0..k).map(|i| i as f64 / (k - 1) as f64).collect();
        if !cands.iter().any(|c| (c - self.current_d).abs() < 1e-12) {
            cands.push(self.current_d);
        }
        // One resample shared by every candidate (run_trace would redo it
        // per rollout); scores are bit-identical to run_trace rollouts.
        let resampled = forecast.resampled(self.cfg.plan_dt_s);
        let scores: Vec<Score> = cands
            .iter()
            .map(|&d| self.rollout(micro, d, resampled.points()))
            .collect();
        let cur_idx = cands
            .iter()
            .position(|c| (c - self.current_d).abs() < 1e-12)
            .expect("incumbent directive is always a candidate");

        // Lexicographic argmax with deterministic tie-breaks: score, then
        // proximity to the incumbent, then the smaller directive.
        let mut best = cur_idx;
        for i in 0..cands.len() {
            if i == best {
                continue;
            }
            let closer = ((cands[i] - self.current_d).abs(), cands[i])
                < ((cands[best] - self.current_d).abs(), cands[best]);
            if scores[i].beats(&scores[best]) || (!scores[best].beats(&scores[i]) && closer) {
                best = i;
            }
        }

        // Hysteresis: an established plan only yields to a challenger
        // that clears the configured margin.
        if !first && best != cur_idx && !scores[best].beats_with_margin(&scores[cur_idx], &self.cfg)
        {
            return None;
        }
        let d = cands[best];
        let changed = (d - self.current_d).abs() > 1e-12;
        self.current_d = d;
        if !first && !changed {
            return None;
        }
        self.replans += 1;
        Some(PlanUpdate {
            discharge: DischargeDirective::new(d),
            charge: None,
            horizon_s: forecast.duration_s(),
            forecast_mae_w: self.forecaster.mae_w(),
        })
    }

    fn observe_step(&mut self, t_s: f64, dt_s: f64, load_w: f64) {
        self.since_plan_s += dt_s;
        self.forecaster.observe(t_s, dt_s, load_w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_battery_model::{BatterySpec, Chemistry};
    use sdb_core::scheduler::run_trace_planned;
    use sdb_emulator::{Microcontroller, PackBuilder, ProfileKind};

    fn hybrid_pack(soc: f64) -> Microcontroller {
        PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("energy", Chemistry::Type2CoStandard, 2.0),
                soc,
                ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("power", Chemistry::Type3CoPower, 1.0),
                soc,
                ProfileKind::Fast,
            )
            .build()
    }

    #[test]
    fn planner_commits_a_first_plan_and_respects_cadence() {
        let mut micro = hybrid_pack(1.0);
        let mut rt = SdbRuntime::new(micro.battery_count());
        let trace = Trace::constant(3.0, 2.0 * 3600.0);
        let cfg = PlannerConfig {
            replan_period_s: f64::INFINITY,
            ..PlannerConfig::default()
        };
        let mut planner = Planner::oracle(cfg, Arc::new(trace.clone()));
        let res = run_trace_planned(
            &mut micro,
            &mut rt,
            &trace,
            &SimOptions::default(),
            &mut planner,
        );
        assert_eq!(
            planner.replans(),
            1,
            "single-shot oracle plans exactly once"
        );
        assert!(res.simulated_s > 0.0);
        let d = planner.current_directive();
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn planned_run_is_deterministic() {
        let trace = Arc::new(Trace::constant(4.0, 3600.0));
        let run = || {
            let mut micro = hybrid_pack(0.9);
            let mut rt = SdbRuntime::new(micro.battery_count());
            let mut planner =
                Planner::history(PlannerConfig::default(), &UserArchetype::commuter(), 7, 99);
            let res = run_trace_planned(
                &mut micro,
                &mut rt,
                &trace,
                &SimOptions::default(),
                &mut planner,
            );
            (res, planner.current_directive(), planner.replans())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rollouts_leave_live_state_untouched() {
        let micro = hybrid_pack(1.0);
        let before = micro.cells().iter().map(|c| c.soc()).collect::<Vec<_>>();
        let mut planner = Planner::oracle(
            PlannerConfig::default(),
            Arc::new(Trace::constant(2.0, 600.0)),
        );
        let points = Trace::constant(2.0, 600.0).resampled(60.0);
        let _ = planner.rollout(&micro, 0.5, points.points());
        let after = micro.cells().iter().map(|c| c.soc()).collect::<Vec<_>>();
        assert_eq!(before, after);
        // And the live runtime push counter is unaffected by planning.
        let rt = SdbRuntime::new(micro.battery_count());
        assert_eq!(rt.pushes(), 0);
    }

    #[test]
    fn snapshot_restore_rollouts_are_repeatable() {
        // The same candidate scored twice through the shared scratch must
        // produce bit-identical scores: restore fully resets the pack.
        let micro = hybrid_pack(0.8);
        let mut planner = Planner::oracle(
            PlannerConfig::default(),
            Arc::new(Trace::constant(4.0, 3600.0)),
        );
        let points = Trace::constant(4.0, 3600.0).resampled(60.0);
        let a = planner.rollout(&micro, 0.7, points.points());
        let b = planner.rollout(&micro, 0.2, points.points());
        let a2 = planner.rollout(&micro, 0.7, points.points());
        let b2 = planner.rollout(&micro, 0.2, points.points());
        assert_eq!(a, a2, "rollout leaked state between candidates");
        assert_eq!(b, b2);
        assert_ne!(a, b, "distinct directives should score differently");
    }
}
