//! Property-based tests for the SDB Runtime policies and scheduler.

use proptest::prelude::*;
use sdb_core::policy::{
    ccb_charge, ccb_discharge, rbl_charge, rbl_discharge, BatteryView, ChargeDirective,
    DischargeDirective, PolicyInput, PreservePolicy,
};

prop_compose! {
    fn arb_view()(
        soc in 0.0f64..1.0,
        r in 0.01f64..2.0,
        slope in 0.0f64..5.0,
        wear in 0.0f64..1.0,
        accept_frac in 0.0f64..1.0,
    ) -> BatteryView {
        BatteryView {
            soc,
            ocv_v: 3.0 + soc,
            resistance_ohm: r,
            dcir_slope: slope,
            wear,
            capacity_ah: 2.0,
            max_discharge_a: 4.0,
            charge_acceptance_a: if soc >= 1.0 { 0.0 } else { accept_frac * 1.4 },
            empty: soc <= 0.0,
            full: soc >= 1.0,
        }
    }
}

fn arb_input() -> impl Strategy<Value = PolicyInput> {
    (prop::collection::vec(arb_view(), 1..6), 0.1f64..20.0).prop_map(|(batteries, load_w)| {
        PolicyInput {
            batteries,
            load_w,
            external_w: 0.0,
        }
    })
}

/// Ratios are valid: non-negative, sum to 1, zero on unusable batteries.
fn check_valid_discharge(ratios: &[f64], input: &PolicyInput) {
    let sum: f64 = ratios.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    for (r, b) in ratios.iter().zip(&input.batteries) {
        assert!(*r >= 0.0);
        if b.empty {
            assert_eq!(*r, 0.0, "empty battery allocated {r}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every policy's output is a valid ratio tuple whenever it is
    /// feasible, for arbitrary battery views.
    #[test]
    fn policies_produce_valid_ratios(input in arb_input()) {
        let usable_discharge = input.batteries.iter().any(|b| !b.empty);
        let usable_charge = input
            .batteries
            .iter()
            .any(|b| !b.full && b.charge_acceptance_a > 0.0);

        for result in [ccb_discharge(&input), rbl_discharge(&input)] {
            match result {
                Ok(r) => {
                    prop_assert!(usable_discharge);
                    check_valid_discharge(&r, &input);
                }
                Err(_) => prop_assert!(!usable_discharge),
            }
        }
        for result in [ccb_charge(&input), rbl_charge(&input)] {
            match result {
                Ok(r) => {
                    prop_assert!(usable_charge);
                    let sum: f64 = r.iter().sum();
                    prop_assert!((sum - 1.0).abs() < 1e-6);
                    for (ratio, b) in r.iter().zip(&input.batteries) {
                        prop_assert!(*ratio >= 0.0);
                        if b.full {
                            prop_assert!(*ratio == 0.0);
                        }
                    }
                }
                Err(_) => prop_assert!(!usable_charge),
            }
        }
    }

    /// Directive blending is bounded by its endpoints: for any directive
    /// value, each battery's blended ratio lies between its CCB and RBL
    /// ratios.
    #[test]
    fn blend_is_convex(input in arb_input(), d in 0.0f64..1.0) {
        if let (Ok(ccb), Ok(rbl)) = (ccb_discharge(&input), rbl_discharge(&input)) {
            let blended = DischargeDirective::new(d).ratios(&input).unwrap();
            for ((b, &c), &r) in blended.iter().zip(&ccb).zip(&rbl) {
                let lo = c.min(r) - 1e-9;
                let hi = c.max(r) + 1e-9;
                prop_assert!(*b >= lo && *b <= hi, "blend {b} outside [{lo}, {hi}]");
            }
        }
    }

    /// RBL-Discharge monotonicity: strictly raising one battery's
    /// resistance never increases its share — in the uncapped regime.
    /// (When a current limit binds, redistribution can push load *back*
    /// onto the lossier battery, so the property only holds when no cap is
    /// active.)
    #[test]
    fn rbl_share_antimonotone_in_resistance(
        input in arb_input(),
        bump in 1.5f64..5.0,
    ) {
        prop_assume!(input.batteries.len() >= 2);
        prop_assume!(input.batteries.iter().all(|b| !b.empty));
        // Keep every battery far from its current limit: even carrying the
        // whole load alone would stay under half the cap.
        let min_ocv = input.batteries.iter().map(|b| b.ocv_v).fold(f64::INFINITY, f64::min);
        let min_cap = input.batteries.iter().map(|b| b.max_discharge_a).fold(f64::INFINITY, f64::min);
        prop_assume!(input.load_w / min_ocv < 0.5 * min_cap);
        let base = rbl_discharge(&input).unwrap();
        let mut worse = input.clone();
        worse.batteries[0].resistance_ohm *= bump;
        let after = rbl_discharge(&worse).unwrap();
        prop_assert!(after[0] <= base[0] + 1e-9,
            "share grew with resistance: {} -> {}", base[0], after[0]);
    }

    /// CCB-Discharge monotonicity: raising one battery's wear never
    /// increases its share.
    #[test]
    fn ccb_share_antimonotone_in_wear(input in arb_input(), extra in 0.05f64..0.5) {
        prop_assume!(input.batteries.len() >= 2);
        prop_assume!(input.batteries.iter().all(|b| !b.empty));
        let base = ccb_discharge(&input).unwrap();
        let mut worse = input.clone();
        worse.batteries[0].wear = (worse.batteries[0].wear + extra).min(1.0);
        let after = ccb_discharge(&worse).unwrap();
        prop_assert!(after[0] <= base[0] + 1e-9);
    }

    /// Directive constructors clamp/validate consistently.
    #[test]
    fn directive_construction(v in -10.0f64..10.0) {
        let clamped = DischargeDirective::new(v).value();
        prop_assert!((0.0..=1.0).contains(&clamped));
        let strict = ChargeDirective::try_new(v);
        prop_assert_eq!(strict.is_ok(), (0.0..=1.0).contains(&v));
    }

    /// The preserve policy always produces a valid split when any battery
    /// is usable, for any threshold and load.
    #[test]
    fn preserve_policy_total_coverage(
        input in arb_input(),
        threshold in 0.01f64..30.0,
    ) {
        prop_assume!(input.batteries.len() >= 2);
        let p = PreservePolicy::new(0, 1, threshold);
        match p.ratios(&input) {
            Ok(r) => {
                let sum: f64 = r.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6);
                check_valid_discharge(&r, &input);
            }
            Err(_) => {
                prop_assert!(input.batteries[0].empty && input.batteries[1].empty);
            }
        }
    }
}

mod scheduler_props {
    use proptest::prelude::*;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_core::runtime::SdbRuntime;
    use sdb_core::scheduler::{run_trace, SimOptions};
    use sdb_emulator::pack::PackBuilder;
    use sdb_emulator::profile::ProfileKind;
    use sdb_workloads::traces::Trace;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Full-stack accounting: the simulation result's energy fields
        /// agree with the microcontroller's lifetime totals, and the load
        /// is never over-served, for random load/charge traces under a
        /// random directive.
        #[test]
        fn sim_result_accounts_for_every_joule(
            segments in prop::collection::vec((0.0f64..12.0, 0.0f64..25.0, 60.0f64..600.0), 1..12),
            directive in 0.0f64..1.0,
            start_soc in 0.2f64..1.0,
        ) {
            let mut trace = Trace::new();
            for &(load, ext, dur) in &segments {
                trace.push(load, ext, dur);
            }
            let mut micro = PackBuilder::new()
                .battery_at(
                    BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 3.0),
                    start_soc,
                    ProfileKind::Standard,
                )
                .battery_at(
                    BatterySpec::from_chemistry("b", Chemistry::Type3CoPower, 3.0),
                    start_soc,
                    ProfileKind::Fast,
                )
                .build();
            let mut runtime = SdbRuntime::new(2);
            runtime.set_discharge_directive(
                sdb_core::policy::DischargeDirective::new(directive),
            );
            let result = run_trace(&mut micro, &mut runtime, &trace, &SimOptions::default());

            // Load is fully accounted: supplied + unmet = demanded.
            let demanded: f64 = trace.load_energy_j();
            prop_assert!(
                (result.supplied_j + result.unmet_j - demanded).abs() < 1e-3 * demanded.max(1.0),
                "supplied {} + unmet {} != demanded {}",
                result.supplied_j, result.unmet_j, demanded
            );
            // Hourly series sum to the totals.
            let hourly_loss: f64 = result.hourly_loss_j.iter().sum();
            prop_assert!((hourly_loss - result.total_loss_j()).abs() < 1e-2 * result.total_loss_j().max(1.0));
            // No energy creation across the stack.
            let chem_net: f64 = micro
                .cells()
                .iter()
                .map(|c| c.energy_out_j() - c.energy_in_j() + c.heat_j())
                .sum();
            let lhs = result.supplied_j + result.circuit_loss_j + result.cell_heat_j;
            let rhs = chem_net + result.external_j;
            prop_assert!(lhs <= rhs * 1.01 + 1.0, "created energy: {lhs} > {rhs}");
            // Final SoCs are valid.
            for s in &result.final_soc {
                prop_assert!((0.0..=1.0).contains(s));
            }
        }
    }
}
