//! Property-based tests for the SDB Runtime policies and scheduler
//! (sdb-testkit seeded-case harness).

use sdb_core::policy::{
    ccb_charge, ccb_discharge, rbl_charge, rbl_discharge, BatteryView, ChargeDirective,
    DischargeDirective, PolicyInput, PreservePolicy,
};
use sdb_testkit::{check, Gen};

fn arb_view(g: &mut Gen) -> BatteryView {
    let soc = g.f64_range(0.0, 1.0);
    let accept_frac = g.f64_range(0.0, 1.0);
    BatteryView {
        soc,
        ocv_v: 3.0 + soc,
        resistance_ohm: g.f64_range(0.01, 2.0),
        dcir_slope: g.f64_range(0.0, 5.0),
        wear: g.f64_range(0.0, 1.0),
        capacity_ah: 2.0,
        max_discharge_a: 4.0,
        charge_acceptance_a: if soc >= 1.0 { 0.0 } else { accept_frac * 1.4 },
        empty: soc <= 0.0,
        full: soc >= 1.0,
    }
}

fn arb_input(g: &mut Gen) -> PolicyInput {
    PolicyInput {
        batteries: g.vec_with(1..6, arb_view),
        load_w: g.f64_range(0.1, 20.0),
        external_w: 0.0,
    }
}

/// Like [`arb_input`] but with at least two batteries (for the
/// monotonicity and preserve properties that need a pair).
fn arb_input_multi(g: &mut Gen) -> PolicyInput {
    PolicyInput {
        batteries: g.vec_with(2..6, arb_view),
        load_w: g.f64_range(0.1, 20.0),
        external_w: 0.0,
    }
}

/// Ratios are valid: non-negative, sum to 1, zero on unusable batteries.
fn check_valid_discharge(ratios: &[f64], input: &PolicyInput) {
    let sum: f64 = ratios.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    for (r, b) in ratios.iter().zip(&input.batteries) {
        assert!(*r >= 0.0);
        if b.empty {
            assert_eq!(*r, 0.0, "empty battery allocated {r}");
        }
    }
}

/// Every policy's output is a valid ratio tuple whenever it is feasible,
/// for arbitrary battery views.
#[test]
fn policies_produce_valid_ratios() {
    check(512, 0xC0_0001, |g| {
        let input = arb_input(g);
        let usable_discharge = input.batteries.iter().any(|b| !b.empty);
        let usable_charge = input
            .batteries
            .iter()
            .any(|b| !b.full && b.charge_acceptance_a > 0.0);

        for result in [ccb_discharge(&input), rbl_discharge(&input)] {
            match result {
                Ok(r) => {
                    assert!(usable_discharge);
                    check_valid_discharge(&r, &input);
                }
                Err(_) => assert!(!usable_discharge),
            }
        }
        for result in [ccb_charge(&input), rbl_charge(&input)] {
            match result {
                Ok(r) => {
                    assert!(usable_charge);
                    let sum: f64 = r.iter().sum();
                    assert!((sum - 1.0).abs() < 1e-6);
                    for (ratio, b) in r.iter().zip(&input.batteries) {
                        assert!(*ratio >= 0.0);
                        if b.full {
                            assert!(*ratio == 0.0);
                        }
                    }
                }
                Err(_) => assert!(!usable_charge),
            }
        }
    });
}

/// Directive blending is bounded by its endpoints: for any directive
/// value, each battery's blended ratio lies between its CCB and RBL
/// ratios.
#[test]
fn blend_is_convex() {
    check(512, 0xC0_0002, |g| {
        let input = arb_input(g);
        let d = g.f64_range(0.0, 1.0);
        if let (Ok(ccb), Ok(rbl)) = (ccb_discharge(&input), rbl_discharge(&input)) {
            let blended = DischargeDirective::new(d).ratios(&input).unwrap();
            for ((b, &c), &r) in blended.iter().zip(&ccb).zip(&rbl) {
                let lo = c.min(r) - 1e-9;
                let hi = c.max(r) + 1e-9;
                assert!(*b >= lo && *b <= hi, "blend {b} outside [{lo}, {hi}]");
            }
        }
    });
}

/// Directive blending is continuous: sweeping the directive 0 → 1 in
/// small steps keeps every intermediate tuple valid (non-negative, sums
/// to 1) and moves each battery's share by at most the directive step
/// (the blend linearly interpolates two fixed unit-sum endpoints, so it
/// is 1-Lipschitz in the directive) — no discontinuous policy jumps as
/// the OS dials urgency up or down.
#[test]
fn blend_continuous_as_directive_sweeps() {
    check(256, 0xC0_0008, |g| {
        let input = arb_input(g);
        let steps = 64;
        let dd = 1.0 / f64::from(steps);

        if ccb_discharge(&input).is_ok() {
            let mut prev: Option<Vec<f64>> = None;
            for k in 0..=steps {
                let r = DischargeDirective::new(f64::from(k) * dd)
                    .ratios(&input)
                    .expect("feasible at every directive");
                check_valid_discharge(&r, &input);
                if let Some(p) = &prev {
                    for (i, (a, b)) in p.iter().zip(&r).enumerate() {
                        assert!(
                            (a - b).abs() <= dd + 1e-9,
                            "discharge share {i} jumped {a} -> {b} over d-step {dd}"
                        );
                    }
                }
                prev = Some(r);
            }
        }

        if ccb_charge(&input).is_ok() {
            let mut prev: Option<Vec<f64>> = None;
            for k in 0..=steps {
                let r = ChargeDirective::new(f64::from(k) * dd)
                    .ratios(&input)
                    .expect("feasible at every directive");
                let sum: f64 = r.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
                assert!(r.iter().all(|x| *x >= 0.0));
                if let Some(p) = &prev {
                    for (i, (a, b)) in p.iter().zip(&r).enumerate() {
                        assert!(
                            (a - b).abs() <= dd + 1e-9,
                            "charge share {i} jumped {a} -> {b} over d-step {dd}"
                        );
                    }
                }
                prev = Some(r);
            }
        }
    });
}

/// RBL-Discharge monotonicity: strictly raising one battery's resistance
/// never increases its share — in the uncapped regime. (When a current
/// limit binds, redistribution can push load *back* onto the lossier
/// battery, so the property only holds when no cap is active.)
#[test]
fn rbl_share_antimonotone_in_resistance() {
    check(512, 0xC0_0003, |g| {
        let input = arb_input_multi(g);
        let bump = g.f64_range(1.5, 5.0);
        if input.batteries.iter().any(|b| b.empty) {
            return;
        }
        // Keep every battery far from its current limit: even carrying the
        // whole load alone would stay under half the cap.
        let min_ocv = input
            .batteries
            .iter()
            .map(|b| b.ocv_v)
            .fold(f64::INFINITY, f64::min);
        let min_cap = input
            .batteries
            .iter()
            .map(|b| b.max_discharge_a)
            .fold(f64::INFINITY, f64::min);
        if input.load_w / min_ocv >= 0.5 * min_cap {
            return;
        }
        let base = rbl_discharge(&input).unwrap();
        let mut worse = input.clone();
        worse.batteries[0].resistance_ohm *= bump;
        let after = rbl_discharge(&worse).unwrap();
        assert!(
            after[0] <= base[0] + 1e-9,
            "share grew with resistance: {} -> {}",
            base[0],
            after[0]
        );
    });
}

/// CCB-Discharge monotonicity: raising one battery's wear never increases
/// its share.
#[test]
fn ccb_share_antimonotone_in_wear() {
    check(512, 0xC0_0004, |g| {
        let input = arb_input_multi(g);
        let extra = g.f64_range(0.05, 0.5);
        if input.batteries.iter().any(|b| b.empty) {
            return;
        }
        let base = ccb_discharge(&input).unwrap();
        let mut worse = input.clone();
        worse.batteries[0].wear = (worse.batteries[0].wear + extra).min(1.0);
        let after = ccb_discharge(&worse).unwrap();
        assert!(after[0] <= base[0] + 1e-9);
    });
}

/// Directive constructors clamp/validate consistently.
#[test]
fn directive_construction() {
    check(512, 0xC0_0005, |g| {
        let v = g.f64_range(-10.0, 10.0);
        let clamped = DischargeDirective::new(v).value();
        assert!((0.0..=1.0).contains(&clamped));
        let strict = ChargeDirective::try_new(v);
        assert_eq!(strict.is_ok(), (0.0..=1.0).contains(&v));
    });
}

/// The preserve policy always produces a valid split when any battery is
/// usable, for any threshold and load.
#[test]
fn preserve_policy_total_coverage() {
    check(512, 0xC0_0006, |g| {
        let input = arb_input_multi(g);
        let threshold = g.f64_range(0.01, 30.0);
        let p = PreservePolicy::new(0, 1, threshold);
        match p.ratios(&input) {
            Ok(r) => {
                let sum: f64 = r.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6);
                check_valid_discharge(&r, &input);
            }
            Err(_) => {
                assert!(input.batteries[0].empty && input.batteries[1].empty);
            }
        }
    });
}

mod scheduler_props {
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_core::runtime::SdbRuntime;
    use sdb_core::scheduler::{run_trace, SimOptions};
    use sdb_emulator::pack::PackBuilder;
    use sdb_emulator::profile::ProfileKind;
    use sdb_testkit::check;
    use sdb_workloads::traces::Trace;

    /// Full-stack accounting: the simulation result's energy fields agree
    /// with the microcontroller's lifetime totals, and the load is never
    /// over-served, for random load/charge traces under a random
    /// directive.
    #[test]
    fn sim_result_accounts_for_every_joule() {
        check(32, 0xC0_0007, |g| {
            let segments = g.vec_with(1..12, |g| {
                (
                    g.f64_range(0.0, 12.0),
                    g.f64_range(0.0, 25.0),
                    g.f64_range(60.0, 600.0),
                )
            });
            let directive = g.f64_range(0.0, 1.0);
            let start_soc = g.f64_range(0.2, 1.0);
            let mut trace = Trace::new();
            for &(load, ext, dur) in &segments {
                trace.push(load, ext, dur);
            }
            let mut micro = PackBuilder::new()
                .battery_at(
                    BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 3.0),
                    start_soc,
                    ProfileKind::Standard,
                )
                .battery_at(
                    BatterySpec::from_chemistry("b", Chemistry::Type3CoPower, 3.0),
                    start_soc,
                    ProfileKind::Fast,
                )
                .build();
            let mut runtime = SdbRuntime::new(2);
            runtime.set_discharge_directive(sdb_core::policy::DischargeDirective::new(directive));
            let result = run_trace(&mut micro, &mut runtime, &trace, &SimOptions::default());

            // Load is fully accounted: supplied + unmet = demanded.
            let demanded: f64 = trace.load_energy_j();
            assert!(
                (result.supplied_j + result.unmet_j - demanded).abs() < 1e-3 * demanded.max(1.0),
                "supplied {} + unmet {} != demanded {}",
                result.supplied_j,
                result.unmet_j,
                demanded
            );
            // Hourly series sum to the totals.
            let hourly_loss: f64 = result.hourly_loss_j.iter().sum();
            assert!(
                (hourly_loss - result.total_loss_j()).abs() < 1e-2 * result.total_loss_j().max(1.0)
            );
            // No energy creation across the stack.
            let chem_net: f64 = micro
                .cells()
                .iter()
                .map(|c| c.energy_out_j() - c.energy_in_j() + c.heat_j())
                .sum();
            let lhs = result.supplied_j + result.circuit_loss_j + result.cell_heat_j;
            let rhs = chem_net + result.external_j;
            assert!(lhs <= rhs * 1.01 + 1.0, "created energy: {lhs} > {rhs}");
            // Final SoCs are valid.
            for s in &result.final_soc {
                assert!((0.0..=1.0).contains(s));
            }
        });
    }
}
