//! Offline-optimal discharge planning by dynamic programming.
//!
//! Section 3.3 observes that the instantaneously-optimal RBL algorithms
//! "are not globally optimal. Across the length of an entire workload,
//! these algorithms might not actually maximize battery lifetime ... if we
//! had knowledge of the future workload, we could improve upon the above
//! instantaneously-optimal algorithms by making temporarily sub-optimal
//! choices from which the system can profit later." The paper leaves the
//! algorithmics open; this module makes the claim quantitative.
//!
//! [`plan`] computes, for a **two-battery** pack and a *known* load trace,
//! the discharge-split schedule that maximizes survived time, by backward
//! dynamic programming over a discretized `(SoC₀, SoC₁)` state grid. The
//! result upper-bounds every online policy (at the chosen discretization),
//! so the gap between a heuristic and the plan measures how much future
//! knowledge is worth — the number behind Figure 13's story.

use sdb_battery_model::spec::BatterySpec;
use sdb_workloads::traces::Trace;

/// Per-cell quantities the planner needs (a static snapshot of a
/// [`BatterySpec`]).
#[derive(Debug, Clone)]
pub struct CellParams {
    ocp: sdb_battery_model::curves::Curve,
    dcir: sdb_battery_model::curves::Curve,
    concentration_r_ohm: f64,
    capacity_ah: f64,
    max_discharge_a: f64,
}

impl CellParams {
    /// Extracts planner parameters from a spec.
    #[must_use]
    pub fn from_spec(spec: &BatterySpec) -> Self {
        Self {
            ocp: spec.ocp.clone(),
            dcir: spec.dcir.clone(),
            concentration_r_ohm: spec.concentration_r_ohm,
            capacity_ah: spec.capacity_ah,
            max_discharge_a: spec.max_discharge_a,
        }
    }

    /// SoC decrease caused by delivering `power_w` at the terminals for
    /// `dur_s`, or `None` if infeasible at this SoC (power beyond the
    /// quadratic maximum or the current limit).
    fn dsoc_for(&self, soc: f64, power_w: f64, dur_s: f64) -> Option<f64> {
        if power_w <= 0.0 {
            return Some(0.0);
        }
        let ocv = self.ocp.eval(soc);
        let r = self.dcir.eval(soc) + self.concentration_r_ohm;
        let disc = ocv * ocv - 4.0 * r * power_w;
        if disc < 0.0 {
            return None;
        }
        let i = (ocv - disc.sqrt()) / (2.0 * r);
        if i > self.max_discharge_a {
            return None;
        }
        Some(i * dur_s / 3600.0 / self.capacity_ah)
    }
}

/// Planner configuration: discretization resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanConfig {
    /// Grid points per battery's SoC axis (≥ 2).
    pub soc_levels: usize,
    /// Discrete split actions (shares of battery 0 from 0 to 1, ≥ 2).
    pub split_levels: usize,
    /// Trace resampling granularity, seconds.
    pub segment_s: f64,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self {
            soc_levels: 61,
            split_levels: 11,
            segment_s: 900.0,
        }
    }
}

/// The planner's output.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanResult {
    /// Survived time under the optimal schedule, seconds.
    pub life_s: f64,
    /// Total trace duration, seconds.
    pub trace_s: f64,
    /// Battery-0 share chosen per segment while alive.
    pub schedule: Vec<f64>,
}

impl PlanResult {
    /// Whether the plan survives the whole trace.
    #[must_use]
    pub fn survives(&self) -> bool {
        self.life_s >= self.trace_s - 1e-9
    }
}

/// Computes the offline-optimal discharge split schedule for a two-battery
/// pack over a known trace, maximizing survived time (ties broken toward
/// more remaining charge).
///
/// # Panics
///
/// Panics on degenerate configs (fewer than 2 levels, non-positive
/// segment length).
#[must_use]
pub fn plan(cells: &[CellParams; 2], trace: &Trace, config: &PlanConfig) -> PlanResult {
    assert!(config.soc_levels >= 2 && config.split_levels >= 2);
    assert!(config.segment_s > 0.0);
    let n = config.soc_levels;
    let grid = |idx: usize| -> f64 { idx as f64 / (n - 1) as f64 };
    let segments: Vec<(f64, f64)> = coalesce(trace, config.segment_s);
    let t_count = segments.len();

    // Value = survivable seconds downstream + ε·(remaining SoC) tiebreak,
    // looked up by bilinear interpolation so grid quantization does not
    // leak charge between segments.
    const TIE_EPS: f64 = 1e-3;
    let interp = |value: &[f64], soc0: f64, soc1: f64| -> f64 {
        let pos0 = soc0.clamp(0.0, 1.0) * (n - 1) as f64;
        let pos1 = soc1.clamp(0.0, 1.0) * (n - 1) as f64;
        let (i0, i1) = (pos0.floor() as usize, pos1.floor() as usize);
        let (j0, j1) = ((i0 + 1).min(n - 1), (i1 + 1).min(n - 1));
        let (f0, f1) = (pos0 - i0 as f64, pos1 - i1 as f64);
        let v = |a: usize, b: usize| value[a * n + b];
        v(i0, i1) * (1.0 - f0) * (1.0 - f1)
            + v(j0, i1) * f0 * (1.0 - f1)
            + v(i0, j1) * (1.0 - f0) * f1
            + v(j0, j1) * f0 * f1
    };
    // Evaluates one action from a continuous state; returns the next
    // state if feasible.
    let try_action =
        |x: f64, soc0: f64, soc1: f64, load_w: f64, dur_s: f64| -> Option<(f64, f64)> {
            let p0 = x * load_w;
            let p1 = (1.0 - x) * load_w;
            let d0 = cells[0].dsoc_for(soc0, p0, dur_s)?;
            let d1 = cells[1].dsoc_for(soc1, p1, dur_s)?;
            if d0 > soc0 + 1e-12 || d1 > soc1 + 1e-12 {
                return None; // would empty mid-segment
            }
            Some((soc0 - d0, soc1 - d1))
        };

    // Backward induction, storing every layer's value table for the
    // forward extraction (≤ ~100 segments × 61² grid ≈ 372k floats —
    // cheap).
    let mut layers: Vec<Vec<f64>> = Vec::with_capacity(t_count + 1);
    layers.push(
        (0..n * n)
            .map(|k| TIE_EPS * (grid(k / n) + grid(k % n)))
            .collect(),
    );
    for t in (0..t_count).rev() {
        let (dur_s, load_w) = segments[t];
        let prev = layers.last().expect("at least the terminal layer");
        let mut table = vec![0.0f64; n * n];
        for s0 in 0..n {
            for s1 in 0..n {
                let soc0 = grid(s0);
                let soc1 = grid(s1);
                let mut best = TIE_EPS * (soc0 + soc1);
                for a in 0..config.split_levels {
                    let x = a as f64 / (config.split_levels - 1) as f64;
                    if let Some((ns0, ns1)) = try_action(x, soc0, soc1, load_w, dur_s) {
                        let cand = dur_s + interp(prev, ns0, ns1);
                        if cand > best {
                            best = cand;
                        }
                    }
                }
                table[s0 * n + s1] = best;
            }
        }
        layers.push(table);
    }
    // layers[k] is the value at the start of segment t_count - k.

    let mut soc0 = 1.0;
    let mut soc1 = 1.0;
    let mut schedule = Vec::new();
    let mut life_s = 0.0;
    for (t, &(dur_s, load_w)) in segments.iter().enumerate() {
        let downstream = &layers[t_count - t - 1];
        let mut best_x = None;
        let mut best_v = f64::NEG_INFINITY;
        for a in 0..config.split_levels {
            let x = a as f64 / (config.split_levels - 1) as f64;
            if let Some((ns0, ns1)) = try_action(x, soc0, soc1, load_w, dur_s) {
                let cand = dur_s + interp(downstream, ns0, ns1);
                if cand > best_v {
                    best_v = cand;
                    best_x = Some((x, ns0, ns1));
                }
            }
        }
        let Some((x, ns0, ns1)) = best_x else {
            break; // brownout
        };
        schedule.push(x);
        life_s += dur_s;
        soc0 = ns0;
        soc1 = ns1;
    }
    PlanResult {
        life_s,
        trace_s: trace.duration_s(),
        schedule,
    }
}

/// Coalesces a trace into fixed-width segments of mean power (the DP's
/// time discretization; distinct from [`Trace::resampled`], which only
/// splits).
fn coalesce(trace: &Trace, segment_s: f64) -> Vec<(f64, f64)> {
    let mut out: Vec<(f64, f64)> = Vec::new();
    let mut acc_e = 0.0;
    let mut acc_t = 0.0;
    for p in trace.points() {
        let mut remaining = p.dur_s;
        while remaining > 1e-9 {
            let take = remaining.min(segment_s - acc_t);
            acc_e += p.load_w * take;
            acc_t += take;
            remaining -= take;
            if acc_t >= segment_s - 1e-9 {
                out.push((acc_t, acc_e / acc_t));
                acc_e = 0.0;
                acc_t = 0.0;
            }
        }
    }
    if acc_t > 1e-9 {
        out.push((acc_t, acc_e / acc_t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::watch::{watch_scenario, WatchPolicy};
    use sdb_battery_model::library;
    use sdb_workloads::traces::watch_day;

    fn watch_cells() -> [CellParams; 2] {
        [
            CellParams::from_spec(library::watch_li_ion().spec()),
            CellParams::from_spec(library::watch_bendable().spec()),
        ]
    }

    #[test]
    fn trivial_trace_survives_with_any_split() {
        let cells = watch_cells();
        let trace = Trace::constant(0.05, 3600.0);
        let result = plan(&cells, &trace, &PlanConfig::default());
        assert!(result.survives());
        assert_eq!(result.schedule.len(), 4);
    }

    #[test]
    fn impossible_load_dies_immediately() {
        let cells = watch_cells();
        // 50 W from two 200 mAh watch cells: infeasible at every split.
        let trace = Trace::constant(50.0, 3600.0);
        let result = plan(&cells, &trace, &PlanConfig::default());
        assert_eq!(result.life_s, 0.0);
        assert!(result.schedule.is_empty());
    }

    #[test]
    fn planner_upper_bounds_online_policies_on_the_watch_day() {
        let cells = watch_cells();
        let trace = watch_day(13, Some(9.0));
        let result = plan(&cells, &trace, &PlanConfig::default());
        // The online policies (which cannot see the future):
        let p1 = watch_scenario(WatchPolicy::MinimizeInstantaneousLosses, Some(9.0), 13);
        let p2 = watch_scenario(WatchPolicy::PreserveLiIon, Some(9.0), 13);
        // Discretization costs the planner a little; a small tolerance
        // keeps the comparison honest.
        let tol = 0.5 * 3600.0;
        assert!(
            result.life_s + tol >= p2.life_s,
            "plan {:.1} h vs preserve {:.1} h",
            result.life_s / 3600.0,
            p2.life_s / 3600.0
        );
        assert!(
            result.life_s > p1.life_s,
            "plan must beat the greedy policy"
        );
    }

    #[test]
    fn planner_preserves_the_efficient_cell_before_the_run() {
        let cells = watch_cells();
        let trace = watch_day(13, Some(9.0));
        let result = plan(&cells, &trace, &PlanConfig::default());
        // Mean battery-0 (Li-ion) share before the run vs during it: the
        // plan must hold the Li-ion back early and spend it in the run.
        let seg_per_h = (3600.0 / PlanConfig::default().segment_s) as usize;
        let before: f64 =
            result.schedule[..8 * seg_per_h].iter().sum::<f64>() / (8 * seg_per_h) as f64;
        let run_start = 9 * seg_per_h;
        let run_end = (10 * seg_per_h).min(result.schedule.len());
        assert!(run_end > run_start, "plan survives into the run");
        let during: f64 =
            result.schedule[run_start..run_end].iter().sum::<f64>() / (run_end - run_start) as f64;
        assert!(
            during > before,
            "Li-ion share before {before:.2} vs during the run {during:.2}"
        );
    }

    #[test]
    fn finer_grids_do_not_hurt() {
        let cells = watch_cells();
        let trace = watch_day(13, Some(9.0));
        let coarse = plan(
            &cells,
            &trace,
            &PlanConfig {
                soc_levels: 31,
                split_levels: 6,
                segment_s: 1800.0,
            },
        );
        let fine = plan(&cells, &trace, &PlanConfig::default());
        assert!(fine.life_s + 1800.0 >= coarse.life_s);
    }
}
