//! The closed learning loop: predictor → directives, hands-free.
//!
//! Section 8's vision is an OS assistant that "understands user behavior
//! and the user's schedule and by using this information ... can perform
//! better parameter selection". [`Autopilot`] closes that loop: it watches
//! the load the device actually draws, folds each completed day into the
//! [`crate::predict::UsagePredictor`], and steers the runtime's directive
//! parameters and preserve policy hour by hour — no manual policy
//! selection.

use crate::policy::{DischargeDirective, PreservePolicy};
use crate::predict::UsagePredictor;
use crate::runtime::SdbRuntime;

/// Configuration of the autopilot's preserve behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutopilotConfig {
    /// Index of the efficient battery to preserve for demanding episodes.
    pub efficient: usize,
    /// Index of the inefficient battery to spend first while preserving.
    pub inefficient: usize,
    /// Load above which an episode counts as high-power, watts.
    pub high_power_threshold_w: f64,
    /// Hours of lookahead when deciding to preserve.
    pub lookahead_h: usize,
}

/// Watches real load, learns the daily pattern, and steers the runtime.
#[derive(Debug, Clone)]
pub struct Autopilot {
    config: AutopilotConfig,
    predictor: UsagePredictor,
    /// Energy observed in the current hour bucket, joules.
    hour_energy_j: f64,
    /// Seconds elapsed in the current hour bucket.
    hour_elapsed_s: f64,
    /// Hour-of-day of the bucket being filled (0–23).
    current_hour: usize,
    /// Mean power per hour for the day in progress, watts.
    today_w: [f64; 24],
    /// Whether the preserve policy is currently installed.
    preserving: bool,
}

impl Autopilot {
    /// Creates an autopilot starting at hour 0 with no history.
    #[must_use]
    pub fn new(config: AutopilotConfig) -> Self {
        Self {
            config,
            predictor: UsagePredictor::new(),
            hour_energy_j: 0.0,
            hour_elapsed_s: 0.0,
            current_hour: 0,
            today_w: [0.0; 24],
            preserving: false,
        }
    }

    /// The learned predictor (for inspection).
    #[must_use]
    pub fn predictor(&self) -> &UsagePredictor {
        &self.predictor
    }

    /// Whether the autopilot currently has the preserve policy installed.
    #[must_use]
    pub fn preserving(&self) -> bool {
        self.preserving
    }

    /// Observes `dt_s` seconds of `load_w` and steers `runtime`. Call once
    /// per simulation step; hour and day boundaries are handled
    /// internally (days are 24 h of observed time).
    pub fn observe(&mut self, runtime: &mut SdbRuntime, load_w: f64, dt_s: f64) {
        debug_assert!(dt_s > 0.0 && load_w >= 0.0);
        // Apportion the observation across hour boundaries so a step
        // spanning several hours credits each hour its own share (a lump
        // attribution would teach the predictor phantom peaks).
        let mut remaining = dt_s;
        while remaining > 0.0 {
            let take = remaining.min(3600.0 - self.hour_elapsed_s);
            self.hour_energy_j += load_w * take;
            self.hour_elapsed_s += take;
            remaining -= take;
            if self.hour_elapsed_s >= 3600.0 - 1e-9 {
                self.today_w[self.current_hour] = self.hour_energy_j / 3600.0;
                self.hour_energy_j = 0.0;
                self.hour_elapsed_s = 0.0;
                self.current_hour += 1;
                if self.current_hour == 24 {
                    self.predictor.observe_day(&self.today_w);
                    self.today_w = [0.0; 24];
                    self.current_hour = 0;
                }
                self.steer(runtime);
            }
        }
    }

    /// Applies the predictor's advice for the current hour.
    fn steer(&mut self, runtime: &mut SdbRuntime) {
        if self.predictor.days() == 0 {
            // No history yet: neutral loss-minimizing behavior.
            runtime.set_discharge_directive(DischargeDirective::new(1.0));
            runtime.set_preserve(None);
            self.preserving = false;
            return;
        }
        let expect_high = self.predictor.high_power_expected(
            self.current_hour,
            self.config.lookahead_h,
            self.config.high_power_threshold_w,
        );
        // Also preserve *during* the predicted episode itself (the policy
        // routes high loads to the efficient cell).
        let in_episode =
            self.predictor.predicted_w(self.current_hour) >= self.config.high_power_threshold_w;
        if expect_high || in_episode {
            runtime.set_preserve(Some(PreservePolicy::new(
                self.config.efficient,
                self.config.inefficient,
                self.config.high_power_threshold_w,
            )));
            self.preserving = true;
        } else {
            runtime.set_preserve(None);
            runtime.set_discharge_directive(DischargeDirective::new(1.0));
            self.preserving = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyInput;
    use crate::scenarios::watch::{build_pack, high_power_threshold_w, BENDABLE, LI_ION};
    use sdb_workloads::traces::watch_day;

    fn config() -> AutopilotConfig {
        AutopilotConfig {
            efficient: LI_ION,
            inefficient: BENDABLE,
            high_power_threshold_w: high_power_threshold_w(),
            lookahead_h: 8,
        }
    }

    /// Simulates `days` consecutive watch days on fresh packs (recharged
    /// overnight), returning the battery life of the final day.
    fn run_days(autopilot: &mut Autopilot, days: u64) -> f64 {
        let mut last_life = 0.0;
        for day in 0..days {
            let mut micro = build_pack();
            let mut runtime = SdbRuntime::new(2);
            runtime.set_update_period(60.0);
            let trace = watch_day(100 + day, Some(9.0));
            let mut elapsed = 0.0;
            let mut first_brownout = None;
            for p in trace.resampled(60.0).points() {
                autopilot.observe(&mut runtime, p.load_w, p.dur_s);
                let input = PolicyInput::from_micro(&micro).with_load(p.load_w);
                runtime.tick(&mut micro, &input, p.dur_s).expect("accepted");
                let r = micro.step(p.load_w, 0.0, p.dur_s);
                elapsed += p.dur_s;
                if r.unmet_w > 1e-9 && first_brownout.is_none() {
                    first_brownout = Some(elapsed);
                }
            }
            last_life = first_brownout.unwrap_or(elapsed);
        }
        last_life
    }

    #[test]
    fn learns_to_preserve_after_a_few_days() {
        let mut ap = Autopilot::new(config());
        // Day 1: no history, the autopilot runs loss-optimal and the run
        // catches it off guard.
        let day1_life = run_days(&mut ap, 1);
        // Days 2..5: the run is in the profile; preserve kicks in.
        let day5_life = run_days(&mut ap, 4);
        assert!(ap.predictor().days() >= 4);
        assert!(
            day5_life > day1_life + 3600.0,
            "day1 {:.1} h vs day5 {:.1} h",
            day1_life / 3600.0,
            day5_life / 3600.0
        );
    }

    #[test]
    fn preserve_engages_before_the_run_and_releases_after() {
        let mut ap = Autopilot::new(config());
        run_days(&mut ap, 3);
        // Replay a day observing the preserve flag by hour.
        let mut micro = build_pack();
        let mut runtime = SdbRuntime::new(2);
        let trace = watch_day(7, Some(9.0));
        let mut by_hour = [false; 24];
        let mut elapsed = 0.0;
        for p in trace.resampled(60.0).points() {
            ap.observe(&mut runtime, p.load_w, p.dur_s);
            elapsed += p.dur_s;
            let hour = ((elapsed / 3600.0) as usize).min(23);
            by_hour[hour] = ap.preserving();
            let input = PolicyInput::from_micro(&micro).with_load(p.load_w);
            runtime.tick(&mut micro, &input, p.dur_s).expect("accepted");
            micro.step(p.load_w, 0.0, p.dur_s);
        }
        assert!(by_hour[7], "preserving in the hours before the run");
        assert!(by_hour[9], "preserving during the run hour");
        assert!(!by_hour[20], "released in the evening");
    }

    #[test]
    fn no_history_means_no_preserve() {
        let mut ap = Autopilot::new(config());
        let mut runtime = SdbRuntime::new(2);
        ap.observe(&mut runtime, 0.05, 3600.0);
        assert!(!ap.preserving());
    }
}
