//! Charging and discharging policies (Section 3.3).
//!
//! "It is possible to derive charging and discharging algorithms that (in
//! isolation!) optimize the CCB and the instantaneous RBL metric. We use
//! these four 'optimal' algorithms (CCB-Charge, RBL-Charge, CCB-Discharge,
//! and RBL-Discharge) and weigh them by means of two parameters — Charging
//! and Discharging Directive Parameter — handed to the SDB Runtime by the
//! rest of the OS."
//!
//! The RBL-Discharge allocation follows the paper's Lagrangian balance: it
//! splits the load current `y1..yN` so the *effective* marginal resistances
//! `R'i = Ri + δi·yi` are equalized (δi being the DCIR-vs-SoC slope,
//! discretized over a short planning horizon), which minimizes total
//! resistive loss for the instantaneous load.

use crate::error::SdbError;
use sdb_emulator::micro::Microcontroller;

/// Per-battery view the policies consume. Built either from ground truth
/// (emulation) or from gauge statuses + manufacturer curves (production).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryView {
    /// State of charge `[0, 1]`.
    pub soc: f64,
    /// Open-circuit voltage at this SoC, volts.
    pub ocv_v: f64,
    /// Ohmic + concentration resistance at this SoC, ohms.
    pub resistance_ohm: f64,
    /// Magnitude of the DCIR-vs-SoC slope at this SoC (the paper's `δi`),
    /// ohms per unit SoC.
    pub dcir_slope: f64,
    /// Wear ratio `λi = cci / χi`.
    pub wear: f64,
    /// Rated capacity, amp-hours.
    pub capacity_ah: f64,
    /// Maximum discharge current, amps.
    pub max_discharge_a: f64,
    /// Charge current the battery can accept right now (profile-limited),
    /// amps.
    pub charge_acceptance_a: f64,
    /// Whether the battery is empty.
    pub empty: bool,
    /// Whether the battery is full.
    pub full: bool,
}

/// Input snapshot for one policy decision.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyInput {
    /// Per-battery views.
    pub batteries: Vec<BatteryView>,
    /// Present system load estimate, watts.
    pub load_w: f64,
    /// External supply power available, watts.
    pub external_w: f64,
}

impl PolicyInput {
    /// Builds the snapshot from the emulated microcontroller's ground
    /// truth (the emulator stands in for gauge+curve lookups).
    #[must_use]
    pub fn from_micro(micro: &Microcontroller) -> Self {
        let mut input = Self {
            batteries: Vec::with_capacity(micro.battery_count()),
            load_w: 0.0,
            external_w: 0.0,
        };
        input.refill_from_micro(micro);
        input
    }

    /// Rebuilds the snapshot in place from `micro`, reusing the battery
    /// buffer (no allocation once capacity is established) — the rollout
    /// hot path. Load and external power are reset to zero, as in
    /// [`PolicyInput::from_micro`].
    pub fn refill_from_micro(&mut self, micro: &Microcontroller) {
        self.load_w = 0.0;
        self.external_w = 0.0;
        self.batteries.clear();
        self.batteries
            .extend(micro.cells().iter().enumerate().map(|(i, cell)| {
                // An absent battery (detached pack) is unusable in both
                // directions: report it empty and full so no policy routes
                // power to it.
                let present = micro.battery_present(i);
                // One curve walk yields both the DCIR value and its slope.
                let (r0, dcir_slope) = cell.resistance_and_dcir_slope();
                BatteryView {
                    soc: cell.soc(),
                    ocv_v: cell.ocv(),
                    resistance_ohm: r0 + cell.spec().concentration_r_ohm,
                    dcir_slope: dcir_slope.abs(),
                    wear: cell.wear_ratio(),
                    capacity_ah: cell.spec().capacity_ah,
                    max_discharge_a: cell.spec().max_discharge_a,
                    charge_acceptance_a: micro.charge_acceptance_a(i),
                    empty: cell.is_empty() || !present,
                    full: cell.is_full() || !present,
                }
            }));
    }

    /// Sets the load estimate (builder style).
    #[must_use]
    pub fn with_load(mut self, load_w: f64) -> Self {
        self.load_w = load_w;
        self
    }

    /// Sets the external power (builder style).
    #[must_use]
    pub fn with_external(mut self, external_w: f64) -> Self {
        self.external_w = external_w;
        self
    }
}

/// Normalizes non-negative weights into ratios. Returns `None` if every
/// weight is zero.
#[must_use]
pub fn normalize(weights: &[f64]) -> Option<Vec<f64>> {
    let mut out = weights.to_vec();
    normalize_in_place(&mut out).then_some(out)
}

/// In-place [`normalize`]: rewrites `weights` into ratios, returning
/// `false` (leaving the slice untouched) if every weight is zero.
pub fn normalize_in_place(weights: &mut [f64]) -> bool {
    let sum: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if sum <= 0.0 {
        return false;
    }
    for w in weights.iter_mut() {
        *w = if *w > 0.0 { *w / sum } else { 0.0 };
    }
    true
}

/// Reusable buffers for allocation-free policy evaluation
/// ([`DischargeDirective::ratios_into`] and friends). One instance per
/// runtime; rollout loops hit zero allocations once the buffers reach
/// pack size.
#[derive(Debug, Clone, Default)]
pub struct PolicyScratch {
    ccb: Vec<f64>,
    rbl: Vec<f64>,
    delta: Vec<f64>,
    currents: Vec<f64>,
    out: Vec<f64>,
}

impl PolicyScratch {
    /// Empty scratch (buffers grow to pack size on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The ratios produced by the most recent `*_into` evaluation.
    #[must_use]
    pub fn ratios(&self) -> &[f64] {
        &self.out
    }

    /// Mutable view of the most recent result (for post-processing such
    /// as guard-band widening).
    #[must_use]
    pub fn ratios_mut(&mut self) -> &mut [f64] {
        &mut self.out
    }
}

/// CCB-Discharge: route load toward the least-worn batteries so wear
/// equalizes (discharge drives the subsequent recharge, which is what
/// increments cycles).
///
/// # Errors
///
/// [`SdbError::Infeasible`] if every battery is empty.
pub fn ccb_discharge(input: &PolicyInput) -> Result<Vec<f64>, SdbError> {
    let mut out = Vec::with_capacity(input.batteries.len());
    ccb_discharge_into(input, &mut out)?;
    Ok(out)
}

/// [`ccb_discharge`] writing into a caller-owned buffer (no allocation
/// once `out` has pack capacity).
///
/// # Errors
///
/// [`SdbError::Infeasible`] if every battery is empty.
pub fn ccb_discharge_into(input: &PolicyInput, out: &mut Vec<f64>) -> Result<(), SdbError> {
    let max_wear = input
        .batteries
        .iter()
        .filter(|b| !b.empty)
        .map(|b| b.wear)
        .fold(f64::NEG_INFINITY, f64::max);
    out.clear();
    out.extend(input.batteries.iter().map(|b| {
        if b.empty {
            0.0
        } else {
            // Strictly positive for usable batteries; the lead term
            // biases toward the least worn.
            (max_wear - b.wear) + 0.02
        }
    }));
    if normalize_in_place(out) {
        Ok(())
    } else {
        Err(SdbError::Infeasible("all batteries empty"))
    }
}

/// CCB-Charge: route charge toward the least-worn batteries that can
/// accept it.
///
/// # Errors
///
/// [`SdbError::Infeasible`] if no battery can accept charge.
pub fn ccb_charge(input: &PolicyInput) -> Result<Vec<f64>, SdbError> {
    let mut out = Vec::with_capacity(input.batteries.len());
    ccb_charge_into(input, &mut out)?;
    Ok(out)
}

/// [`ccb_charge`] writing into a caller-owned buffer.
///
/// # Errors
///
/// [`SdbError::Infeasible`] if no battery can accept charge.
pub fn ccb_charge_into(input: &PolicyInput, out: &mut Vec<f64>) -> Result<(), SdbError> {
    let max_wear = input
        .batteries
        .iter()
        .filter(|b| !b.full)
        .map(|b| b.wear)
        .fold(f64::NEG_INFINITY, f64::max);
    out.clear();
    out.extend(input.batteries.iter().map(|b| {
        if b.full || b.charge_acceptance_a <= 0.0 {
            0.0
        } else {
            (max_wear - b.wear) + 0.02
        }
    }));
    if normalize_in_place(out) {
        Ok(())
    } else {
        Err(SdbError::Infeasible("no battery can accept charge"))
    }
}

/// Planning horizon used to discretize the paper's `δi` term: how far
/// ahead (in hours of sustained draw) the allocator charges each battery
/// for the resistance growth its share will cause.
const RBL_HORIZON_H: f64 = 0.25;

/// RBL-Discharge: the loss-minimizing current split. Iteratively solves
/// for currents `yi ∝ Vi / (Ri + δ'i·yi)` (effective-resistance balance),
/// where `δ'i` converts the DCIR slope into ohms-per-amp over the planning
/// horizon, then converts currents to power ratios.
///
/// # Errors
///
/// [`SdbError::Infeasible`] if every battery is empty.
pub fn rbl_discharge(input: &PolicyInput) -> Result<Vec<f64>, SdbError> {
    let n = input.batteries.len();
    let mut out = Vec::with_capacity(n);
    let mut delta = Vec::with_capacity(n);
    let mut currents = Vec::with_capacity(n);
    rbl_discharge_into(input, &mut out, &mut delta, &mut currents)?;
    Ok(out)
}

/// [`rbl_discharge`] writing into caller-owned buffers: `out` receives
/// the ratios; `delta` and `currents` are internal scratch (contents
/// overwritten). No allocation once all three have pack capacity.
///
/// # Errors
///
/// [`SdbError::Infeasible`] if every battery is empty.
pub fn rbl_discharge_into(
    input: &PolicyInput,
    out: &mut Vec<f64>,
    delta: &mut Vec<f64>,
    currents: &mut Vec<f64>,
) -> Result<(), SdbError> {
    let n = input.batteries.len();
    let total_i: f64 = {
        // Approximate pack current demand for the fixed point.
        let (usable, v_sum) = input
            .batteries
            .iter()
            .filter(|b| !b.empty)
            .fold((0usize, 0.0f64), |(k, s), b| (k + 1, s + b.ocv_v));
        if usable == 0 {
            return Err(SdbError::Infeasible("all batteries empty"));
        }
        let mean_v = v_sum / usable as f64;
        (input.load_w / mean_v).max(0.0)
    };
    // δ'i: ohms added per amp drawn for RBL_HORIZON_H hours.
    delta.clear();
    delta.extend(
        input
            .batteries
            .iter()
            .map(|b| b.dcir_slope * RBL_HORIZON_H / b.capacity_ah.max(1e-9)),
    );
    currents.clear();
    currents.resize(n, 0.0);
    // Initialize `out` with the parallel-resistor split weights.
    out.clear();
    out.extend(input.batteries.iter().map(|b| {
        if b.empty {
            0.0
        } else {
            b.ocv_v / b.resistance_ohm.max(1e-6)
        }
    }));
    for _ in 0..12 {
        let sum: f64 = out.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if sum <= 0.0 {
            return Err(SdbError::Infeasible("all batteries empty"));
        }
        for i in 0..n {
            currents[i] = if out[i] > 0.0 {
                out[i] / sum * total_i
            } else {
                0.0
            };
        }
        for i in 0..n {
            out[i] = if input.batteries[i].empty {
                0.0
            } else {
                let r_eff = input.batteries[i].resistance_ohm + delta[i] * currents[i];
                input.batteries[i].ocv_v / r_eff.max(1e-6)
            };
        }
    }
    // Cap at per-battery current limits, shifting the excess.
    if !normalize_in_place(out) {
        return Err(SdbError::Infeasible("all batteries empty"));
    }
    let ratios = out;
    if total_i > 0.0 {
        for _ in 0..n {
            let mut excess = 0.0;
            let mut headroom_sum = 0.0;
            for (i, b) in input.batteries.iter().enumerate() {
                let want = ratios[i] * total_i;
                if want > b.max_discharge_a {
                    excess += want - b.max_discharge_a;
                    ratios[i] = b.max_discharge_a / total_i;
                } else if !b.empty {
                    headroom_sum += b.max_discharge_a - want;
                }
            }
            if excess <= 1e-12 || headroom_sum <= 1e-12 {
                break;
            }
            for (i, b) in input.batteries.iter().enumerate() {
                let have = ratios[i] * total_i;
                if !b.empty && have < b.max_discharge_a {
                    let add = excess * (b.max_discharge_a - have) / headroom_sum;
                    ratios[i] = (have + add) / total_i;
                }
            }
        }
        // If demand exceeds the pack's combined current capability, plain
        // renormalization would push capped batteries back over their
        // limits; fall back to a cap-proportional split instead (the
        // hardware re-checks feasibility and reports any true shortfall).
        let total_cap: f64 = input
            .batteries
            .iter()
            .map(|b| if b.empty { 0.0 } else { b.max_discharge_a })
            .sum();
        if total_i > total_cap && total_cap > 0.0 {
            for (r, b) in ratios.iter_mut().zip(&input.batteries) {
                *r = if b.empty {
                    0.0
                } else {
                    b.max_discharge_a / total_cap
                };
            }
        } else {
            let sum: f64 = ratios.iter().sum();
            if sum > 0.0 {
                ratios.iter_mut().for_each(|r| *r /= sum);
            }
        }
    }
    Ok(())
}

/// RBL-Charge: maximize the rate of *useful* charge accumulation — fill
/// the batteries that accept the most power with the least loss. Weights
/// are each battery's acceptance power discounted by its resistive
/// charging inefficiency.
///
/// # Errors
///
/// [`SdbError::Infeasible`] if no battery can accept charge.
pub fn rbl_charge(input: &PolicyInput) -> Result<Vec<f64>, SdbError> {
    let mut out = Vec::with_capacity(input.batteries.len());
    rbl_charge_into(input, &mut out)?;
    Ok(out)
}

/// [`rbl_charge`] writing into a caller-owned buffer.
///
/// # Errors
///
/// [`SdbError::Infeasible`] if no battery can accept charge.
pub fn rbl_charge_into(input: &PolicyInput, out: &mut Vec<f64>) -> Result<(), SdbError> {
    out.clear();
    out.extend(input.batteries.iter().map(|b| {
        if b.full || b.charge_acceptance_a <= 0.0 {
            0.0
        } else {
            let p_accept = b.charge_acceptance_a * b.ocv_v;
            let eta = (1.0 - b.charge_acceptance_a * b.resistance_ohm / b.ocv_v.max(1e-6))
                .clamp(0.05, 1.0);
            p_accept * eta
        }
    }));
    if normalize_in_place(out) {
        Ok(())
    } else {
        Err(SdbError::Infeasible("no battery can accept charge"))
    }
}

/// The discharging directive parameter: 0 = pure CCB-Discharge (longevity),
/// 1 = pure RBL-Discharge (maximize remaining battery life now).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DischargeDirective(f64);

impl DischargeDirective {
    /// Creates a directive, clamping into `[0, 1]`.
    #[must_use]
    pub fn new(value: f64) -> Self {
        Self(value.clamp(0.0, 1.0))
    }

    /// Creates a directive, rejecting out-of-range values.
    ///
    /// # Errors
    ///
    /// [`SdbError::BadDirective`] outside `[0, 1]`.
    pub fn try_new(value: f64) -> Result<Self, SdbError> {
        if !(0.0..=1.0).contains(&value) || !value.is_finite() {
            return Err(SdbError::BadDirective(value));
        }
        Ok(Self(value))
    }

    /// The parameter value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Blended discharge ratios.
    ///
    /// # Errors
    ///
    /// Propagates infeasibility when every battery is empty.
    pub fn ratios(self, input: &PolicyInput) -> Result<Vec<f64>, SdbError> {
        let mut scratch = PolicyScratch::new();
        self.ratios_into(input, &mut scratch)?;
        Ok(scratch.out)
    }

    /// Allocation-free [`DischargeDirective::ratios`]: the result lands
    /// in [`PolicyScratch::ratios`].
    ///
    /// # Errors
    ///
    /// Propagates infeasibility when every battery is empty.
    pub fn ratios_into(
        self,
        input: &PolicyInput,
        scratch: &mut PolicyScratch,
    ) -> Result<(), SdbError> {
        ccb_discharge_into(input, &mut scratch.ccb)?;
        rbl_discharge_into(
            input,
            &mut scratch.rbl,
            &mut scratch.delta,
            &mut scratch.currents,
        )?;
        blend_into(self.0, &scratch.ccb, &scratch.rbl, &mut scratch.out)
    }
}

/// The charging directive parameter: 0 = pure CCB-Charge (no hurry,
/// balance wear — overnight), 1 = pure RBL-Charge (useful charge as fast
/// as possible — before boarding a plane).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeDirective(f64);

impl ChargeDirective {
    /// Creates a directive, clamping into `[0, 1]`.
    #[must_use]
    pub fn new(value: f64) -> Self {
        Self(value.clamp(0.0, 1.0))
    }

    /// Creates a directive, rejecting out-of-range values.
    ///
    /// # Errors
    ///
    /// [`SdbError::BadDirective`] outside `[0, 1]`.
    pub fn try_new(value: f64) -> Result<Self, SdbError> {
        if !(0.0..=1.0).contains(&value) || !value.is_finite() {
            return Err(SdbError::BadDirective(value));
        }
        Ok(Self(value))
    }

    /// The parameter value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Blended charge ratios.
    ///
    /// # Errors
    ///
    /// Propagates infeasibility when no battery can accept charge.
    pub fn ratios(self, input: &PolicyInput) -> Result<Vec<f64>, SdbError> {
        let mut scratch = PolicyScratch::new();
        self.ratios_into(input, &mut scratch)?;
        Ok(scratch.out)
    }

    /// Allocation-free [`ChargeDirective::ratios`]: the result lands in
    /// [`PolicyScratch::ratios`].
    ///
    /// # Errors
    ///
    /// Propagates infeasibility when no battery can accept charge.
    pub fn ratios_into(
        self,
        input: &PolicyInput,
        scratch: &mut PolicyScratch,
    ) -> Result<(), SdbError> {
        ccb_charge_into(input, &mut scratch.ccb)?;
        rbl_charge_into(input, &mut scratch.rbl)?;
        blend_into(self.0, &scratch.ccb, &scratch.rbl, &mut scratch.out)
    }
}

fn blend_into(d: f64, ccb: &[f64], rbl: &[f64], out: &mut Vec<f64>) -> Result<(), SdbError> {
    out.clear();
    out.extend(ccb.iter().zip(rbl).map(|(&c, &r)| (1.0 - d) * c + d * r));
    if normalize_in_place(out) {
        Ok(())
    } else {
        Err(SdbError::Infeasible("blend produced zero weights"))
    }
}

/// The workload-aware watch policy (Section 5.2, Figure 13's "Policy 2"):
/// at light loads it drains the *inefficient* battery preferentially,
/// preserving the efficient Li-ion for predicted high-power episodes; at
/// high loads it shifts to the efficient battery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreservePolicy {
    /// Index of the efficient battery being preserved.
    pub efficient: usize,
    /// Index of the inefficient (e.g. bendable) battery to drain first.
    pub inefficient: usize,
    /// Load at or above which the efficient battery takes over, watts.
    pub high_power_threshold_w: f64,
    /// Share still drawn from the efficient battery at light load (keeps
    /// the split strictly feasible when the inefficient cell sags).
    pub light_load_efficient_share: f64,
}

impl PreservePolicy {
    /// A watch policy preserving `efficient` and preferring `inefficient`
    /// under `threshold_w`.
    #[must_use]
    pub fn new(efficient: usize, inefficient: usize, threshold_w: f64) -> Self {
        Self {
            efficient,
            inefficient,
            high_power_threshold_w: threshold_w,
            light_load_efficient_share: 0.05,
        }
    }

    /// Discharge ratios for the current snapshot.
    ///
    /// # Errors
    ///
    /// [`SdbError::BadIndex`] for out-of-range battery indices;
    /// [`SdbError::Infeasible`] when every battery is empty.
    pub fn ratios(&self, input: &PolicyInput) -> Result<Vec<f64>, SdbError> {
        let mut out = Vec::with_capacity(input.batteries.len());
        self.ratios_into_buf(input, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`PreservePolicy::ratios`]: the result lands in
    /// [`PolicyScratch::ratios`].
    ///
    /// # Errors
    ///
    /// As [`PreservePolicy::ratios`].
    pub fn ratios_into(
        &self,
        input: &PolicyInput,
        scratch: &mut PolicyScratch,
    ) -> Result<(), SdbError> {
        self.ratios_into_buf(input, &mut scratch.out)
    }

    fn ratios_into_buf(&self, input: &PolicyInput, out: &mut Vec<f64>) -> Result<(), SdbError> {
        let n = input.batteries.len();
        if self.efficient >= n || self.inefficient >= n {
            return Err(SdbError::BadIndex {
                index: self.efficient.max(self.inefficient),
                count: n,
            });
        }
        let eff = &input.batteries[self.efficient];
        let ineff = &input.batteries[self.inefficient];
        out.clear();
        out.resize(n, 0.0);
        let weights = out;
        if input.load_w >= self.high_power_threshold_w {
            // High-power episode: this is what we saved the efficient
            // battery for. Draw from it primarily; let the inefficient cell
            // contribute a little if the efficient one is low.
            if !eff.empty {
                weights[self.efficient] = 0.9;
                if !ineff.empty {
                    weights[self.inefficient] = 0.1;
                }
            } else if !ineff.empty {
                weights[self.inefficient] = 1.0;
            }
        } else {
            // Light load: spend the inefficient battery.
            if !ineff.empty {
                weights[self.inefficient] = 1.0 - self.light_load_efficient_share;
                if !eff.empty {
                    weights[self.efficient] = self.light_load_efficient_share;
                }
            } else if !eff.empty {
                weights[self.efficient] = 1.0;
            }
        }
        if normalize_in_place(weights) {
            Ok(())
        } else {
            Err(SdbError::Infeasible("all batteries empty"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(soc: f64, r: f64, wear: f64) -> BatteryView {
        BatteryView {
            soc,
            ocv_v: 3.8,
            resistance_ohm: r,
            dcir_slope: 0.1,
            wear,
            capacity_ah: 2.0,
            max_discharge_a: 4.0,
            charge_acceptance_a: if soc >= 1.0 { 0.0 } else { 1.4 },
            empty: soc <= 0.0,
            full: soc >= 1.0,
        }
    }

    fn input(batteries: Vec<BatteryView>, load_w: f64) -> PolicyInput {
        PolicyInput {
            batteries,
            load_w,
            external_w: 0.0,
        }
    }

    #[test]
    fn normalize_handles_zeros() {
        assert_eq!(normalize(&[0.0, 0.0]), None);
        let r = normalize(&[1.0, 3.0]).unwrap();
        assert!((r[0] - 0.25).abs() < 1e-12 && (r[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ccb_discharge_prefers_less_worn() {
        let inp = input(vec![view(0.8, 0.05, 0.40), view(0.8, 0.05, 0.10)], 2.0);
        let r = ccb_discharge(&inp).unwrap();
        assert!(r[1] > r[0], "{r:?}");
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ccb_discharge_equal_wear_splits_evenly() {
        let inp = input(vec![view(0.8, 0.05, 0.2), view(0.8, 0.05, 0.2)], 2.0);
        let r = ccb_discharge(&inp).unwrap();
        assert!((r[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ccb_skips_empty_batteries() {
        let inp = input(vec![view(0.0, 0.05, 0.0), view(0.8, 0.05, 0.5)], 2.0);
        let r = ccb_discharge(&inp).unwrap();
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccb_all_empty_is_infeasible() {
        let inp = input(vec![view(0.0, 0.05, 0.1)], 2.0);
        assert!(matches!(ccb_discharge(&inp), Err(SdbError::Infeasible(_))));
    }

    #[test]
    fn rbl_discharge_prefers_low_resistance() {
        // Battery 1 has 4x the resistance: parallel split sends most load
        // to battery 0.
        let inp = input(vec![view(0.8, 0.05, 0.0), view(0.8, 0.20, 0.0)], 2.0);
        let r = rbl_discharge(&inp).unwrap();
        assert!(r[0] > 0.7, "{r:?}");
        assert!(r[1] > 0.0, "both still contribute");
    }

    #[test]
    fn rbl_discharge_equal_cells_split_evenly() {
        let inp = input(vec![view(0.8, 0.08, 0.0), view(0.8, 0.08, 0.0)], 2.0);
        let r = rbl_discharge(&inp).unwrap();
        assert!((r[0] - 0.5).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn rbl_discharge_respects_current_limits() {
        // Tiny battery 0 with a 0.5 A cap cannot take most of a 12 W load
        // (which the pack as a whole *can* supply within limits).
        let mut small = view(0.8, 0.02, 0.0);
        small.max_discharge_a = 0.5;
        let inp = input(vec![small, view(0.8, 0.10, 0.0)], 12.0);
        let r = rbl_discharge(&inp).unwrap();
        let total_i = 12.0 / 3.8;
        assert!(r[0] * total_i <= 0.5 + 1e-6, "{r:?}");
    }

    #[test]
    fn rbl_slope_term_shifts_load_away_from_steep_cells() {
        // Same resistance, but battery 1's DCIR climbs steeply as it
        // drains: the horizon-aware allocator sends it less.
        let mut steep = view(0.3, 0.08, 0.0);
        steep.dcir_slope = 3.0;
        let mut flat = view(0.3, 0.08, 0.0);
        flat.dcir_slope = 0.0;
        let inp = input(vec![flat, steep], 6.0);
        let r = rbl_discharge(&inp).unwrap();
        assert!(r[0] > r[1], "{r:?}");
    }

    #[test]
    fn rbl_charge_prefers_fast_acceptors() {
        let mut fast = view(0.3, 0.05, 0.0);
        fast.charge_acceptance_a = 4.0;
        let mut slow = view(0.3, 0.05, 0.0);
        slow.charge_acceptance_a = 1.0;
        let inp = input(vec![fast, slow], 0.0).with_external(20.0);
        let r = rbl_charge(&inp).unwrap();
        assert!(r[0] > 0.7, "{r:?}");
    }

    #[test]
    fn rbl_charge_skips_full() {
        let inp = input(vec![view(1.0, 0.05, 0.0), view(0.5, 0.05, 0.0)], 0.0);
        let r = rbl_charge(&inp).unwrap();
        assert_eq!(r[0], 0.0);
    }

    #[test]
    fn directives_clamp_and_validate() {
        assert_eq!(DischargeDirective::new(2.0).value(), 1.0);
        assert_eq!(ChargeDirective::new(-1.0).value(), 0.0);
        assert!(DischargeDirective::try_new(1.2).is_err());
        assert!(ChargeDirective::try_new(f64::NAN).is_err());
        assert!(ChargeDirective::try_new(0.5).is_ok());
    }

    #[test]
    fn blend_interpolates() {
        // Worn battery 0 (CCB avoids), high-resistance battery 1 (RBL
        // avoids): the directive slides the split between the two.
        let b0 = view(0.8, 0.02, 0.9);
        let b1 = view(0.8, 0.30, 0.0);
        let inp = input(vec![b0, b1], 2.0);
        let at_ccb = DischargeDirective::new(0.0).ratios(&inp).unwrap();
        let at_rbl = DischargeDirective::new(1.0).ratios(&inp).unwrap();
        let mid = DischargeDirective::new(0.5).ratios(&inp).unwrap();
        assert!(at_ccb[1] > at_rbl[1], "CCB favors the unworn battery 1");
        assert!(mid[1] < at_ccb[1] && mid[1] > at_rbl[1]);
    }

    #[test]
    fn preserve_policy_light_load_drains_inefficient() {
        let p = PreservePolicy::new(0, 1, 0.15);
        let inp = input(vec![view(0.9, 0.05, 0.0), view(0.9, 0.5, 0.0)], 0.05);
        let r = p.ratios(&inp).unwrap();
        assert!(r[1] > 0.9, "{r:?}");
    }

    #[test]
    fn preserve_policy_high_load_uses_efficient() {
        let p = PreservePolicy::new(0, 1, 0.15);
        let inp = input(vec![view(0.9, 0.05, 0.0), view(0.9, 0.5, 0.0)], 0.3);
        let r = p.ratios(&inp).unwrap();
        assert!(r[0] >= 0.9, "{r:?}");
    }

    #[test]
    fn preserve_policy_falls_back_when_preferred_empty() {
        let p = PreservePolicy::new(0, 1, 0.15);
        // Inefficient battery empty at light load → efficient takes all.
        let inp = input(vec![view(0.9, 0.05, 0.0), view(0.0, 0.5, 0.0)], 0.05);
        let r = p.ratios(&inp).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12);
        // Efficient empty at high load → inefficient takes all.
        let inp = input(vec![view(0.0, 0.05, 0.0), view(0.5, 0.5, 0.0)], 0.3);
        let r = p.ratios(&inp).unwrap();
        assert!((r[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preserve_policy_validates_indices() {
        let p = PreservePolicy::new(0, 5, 0.15);
        let inp = input(vec![view(0.9, 0.05, 0.0), view(0.9, 0.5, 0.0)], 0.05);
        assert!(matches!(p.ratios(&inp), Err(SdbError::BadIndex { .. })));
    }
}
