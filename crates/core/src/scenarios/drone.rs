//! The drone scenario (Section 8's future-work devices).
//!
//! "We are working on additional devices that would benefit from this
//! technology, such as drones, smart glasses, and electric vehicles
//! (EV). Each would require a different combination of battery
//! chemistries." A quadcopter is the sharpest case: climb and gust
//! rejection demand short bursts of very high power, while cruise wants
//! energy density. A pure high-energy pack cannot supply the bursts; a
//! pure high-power pack cannot fly long. SDB mixes the two and routes the
//! bursts to the power cell.

use crate::policy::{DischargeDirective, PolicyInput};
use crate::runtime::SdbRuntime;
use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;
use sdb_workloads::traces::Trace;

/// Pack composition for the drone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DroneConfig {
    /// High-energy (NMC) capacity, amp-hours.
    pub energy_ah: f64,
    /// High-power (LFP) capacity, amp-hours.
    pub power_ah: f64,
}

impl DroneConfig {
    /// Builds a configuration from a *volume* budget (liters) and the
    /// volume fraction given to the high-energy chemistry — airframes are
    /// volume- and mass-constrained, so that is the fair comparison basis
    /// (the paper frames the tablet tradeoff the same way, Section 5.1).
    #[must_use]
    pub fn from_volume(total_l: f64, energy_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&energy_fraction) && total_l > 0.0);
        let e_chem = Chemistry::OtherNmc;
        let p_chem = Chemistry::Type1LfpPower;
        let energy_l = total_l * energy_fraction;
        let power_l = total_l - energy_l;
        Self {
            energy_ah: energy_l * e_chem.energy_density_wh_per_l() / e_chem.nominal_voltage_v(),
            power_ah: power_l * p_chem.energy_density_wh_per_l() / p_chem.nominal_voltage_v(),
        }
    }

    /// The three packs compared at the same volume budget: pure
    /// high-energy, pure high-power, and the SDB mix (60 % energy volume).
    #[must_use]
    pub fn variants(total_l: f64) -> [(&'static str, DroneConfig); 3] {
        [
            ("all-energy", Self::from_volume(total_l, 1.0)),
            ("all-power", Self::from_volume(total_l, 0.0)),
            ("sdb-mix", Self::from_volume(total_l, 0.6)),
        ]
    }

    /// Builds the pack.
    ///
    /// # Panics
    ///
    /// Panics if both capacities are zero.
    #[must_use]
    pub fn build_pack(&self) -> Microcontroller {
        let mut b = PackBuilder::new();
        if self.energy_ah > 0.0 {
            b = b.battery_at(
                BatterySpec::from_chemistry(
                    "drone energy (NMC)",
                    Chemistry::OtherNmc,
                    self.energy_ah,
                ),
                1.0,
                ProfileKind::Standard,
            );
        }
        if self.power_ah > 0.0 {
            b = b.battery_at(
                BatterySpec::from_chemistry(
                    "drone power (LFP)",
                    Chemistry::Type1LfpPower,
                    self.power_ah,
                ),
                1.0,
                ProfileKind::Fast,
            );
        }
        b.build()
    }
}

/// A deterministic flight profile: takeoff climb, cruise legs with gust
/// bursts, and landing. Powers are scaled for a small quadcopter flying on
/// a ~4 Ah pack (cruise ≈ 25 W, bursts ≈ 55 W — beyond what a pure
/// high-energy pack of this size can source).
#[must_use]
pub fn flight_profile(legs: usize) -> Trace {
    let mut t = Trace::new();
    // Takeoff climb: 20 s at burst power.
    t.push(58.0, 0.0, 20.0);
    for _leg in 0..legs {
        // Cruise leg.
        t.push(25.0, 0.0, 120.0);
        // Gust rejection / maneuver burst: a few seconds of peak power.
        t.push(52.0, 0.0, 5.0);
    }
    // Landing: controlled descent.
    t.push(35.0, 0.0, 20.0);
    t
}

/// Outcome of one flight attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightOutcome {
    /// Whether every demanded watt was delivered (a brownout mid-flight is
    /// a crash).
    pub completed: bool,
    /// Time flown before the first brownout (or the full profile), seconds.
    pub flight_time_s: f64,
    /// Total losses, joules.
    pub losses_j: f64,
}

/// Flies the profile on a pack under the loss-optimal (RBL) policy.
#[must_use]
pub fn fly(micro: &mut Microcontroller, profile: &Trace) -> FlightOutcome {
    let mut runtime = SdbRuntime::new(micro.battery_count());
    runtime.set_discharge_directive(DischargeDirective::new(1.0));
    runtime.set_update_period(5.0);
    let mut elapsed = 0.0;
    let mut losses = 0.0;
    for p in profile.resampled(5.0).points() {
        let input = PolicyInput::from_micro(micro).with_load(p.load_w);
        runtime
            .tick(micro, &input, p.dur_s)
            .expect("runtime accepted");
        let report = micro.step(p.load_w, 0.0, p.dur_s);
        losses += (report.circuit_loss_w + report.cell_heat_w) * p.dur_s;
        if report.unmet_w > 1e-6 {
            return FlightOutcome {
                completed: false,
                flight_time_s: elapsed,
                losses_j: losses,
            };
        }
        elapsed += p.dur_s;
    }
    FlightOutcome {
        completed: true,
        flight_time_s: elapsed,
        losses_j: losses,
    }
}

/// Maximum number of cruise legs each configuration completes before a
/// brownout, searching incrementally.
#[must_use]
pub fn max_legs(config: &DroneConfig, cap: usize) -> usize {
    let mut best = 0;
    for legs in 1..=cap {
        let mut micro = config.build_pack();
        if fly(&mut micro, &flight_profile(legs)).completed {
            best = legs;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const VOLUME_L: f64 = 0.03;

    #[test]
    fn pure_energy_pack_cannot_take_off() {
        // The full-volume NMC pack (~4.5 Ah) maxes out around 55 W —
        // below the 58 W climb.
        let (_, cfg) = DroneConfig::variants(VOLUME_L)[0];
        let mut micro = cfg.build_pack();
        let outcome = fly(&mut micro, &flight_profile(2));
        assert!(!outcome.completed, "should brown out in the climb");
        assert!(outcome.flight_time_s < 21.0);
    }

    #[test]
    fn sdb_mix_flies_and_outlasts_pure_power() {
        let variants = DroneConfig::variants(VOLUME_L);
        let mix_legs = max_legs(&variants[2].1, 40);
        let power_legs = max_legs(&variants[1].1, 40);
        assert!(mix_legs > 0, "the mix must fly");
        // The all-power pack also flies (it can always supply bursts)...
        assert!(power_legs > 0);
        // ...but at the same volume the energy-dense mix flies longer.
        assert!(
            mix_legs > power_legs,
            "mix {mix_legs} legs vs power {power_legs} legs"
        );
    }

    #[test]
    fn bursts_route_to_the_power_cell() {
        let (_, cfg) = DroneConfig::variants(VOLUME_L)[2];
        let mut micro = cfg.build_pack();
        let mut runtime = SdbRuntime::new(2);
        runtime.set_discharge_directive(DischargeDirective::new(1.0));
        runtime.set_update_period(1.0);
        // Cruise step to settle ratios, then a burst step.
        let cruise_input = PolicyInput::from_micro(&micro).with_load(25.0);
        runtime.tick(&mut micro, &cruise_input, 2.0).unwrap();
        micro.step(25.0, 0.0, 5.0);
        let burst_input = PolicyInput::from_micro(&micro).with_load(55.0);
        runtime.tick(&mut micro, &burst_input, 2.0).unwrap();
        let report = micro.step(55.0, 0.0, 5.0);
        assert!(report.unmet_w < 1e-6, "burst must be served");
        // The ~1.1 Ah LFP cell carries an outsized share for its size: its
        // power far exceeds its capacity-proportional ~30 %.
        let p_power = report.batteries[1].current_a * report.batteries[1].terminal_v;
        assert!(
            p_power > 0.35 * 55.0,
            "power cell carried only {p_power} W of the burst"
        );
    }

    #[test]
    fn flight_profile_shape() {
        let t = flight_profile(5);
        assert!(t.peak_load_w() >= 55.0);
        assert!(t.mean_load_w() > 22.0 && t.mean_load_w() < 40.0);
        assert!((t.duration_s() - (20.0 + 5.0 * 125.0 + 20.0)).abs() < 1e-9);
    }
}
