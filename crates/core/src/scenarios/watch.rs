//! The bendable-battery smart-watch scenario (Section 5.2, Figure 13).
//!
//! A 200 mAh Li-ion cell in the watch body is augmented with a 200 mAh
//! bendable cell in the strap. The bendable cell is fine at low power but
//! very inefficient at high power, so the policy question is *when to
//! spend which battery*:
//!
//! * **Policy 1** minimizes instantaneous losses (pure RBL-Discharge) —
//!   which quietly drains the efficient Li-ion first, leaving the run to
//!   the lossy bendable cell.
//! * **Policy 2** preserves the Li-ion for the predicted run (the
//!   [`crate::policy::PreservePolicy`]).
//!
//! The paper's trace: message checking all day, a run at hour 9; Policy 1
//! empties the Li-ion by ~hour 9.5 and dies at ~hour 18, Policy 2 lasts
//! past hour 19 — over an hour more battery life.

use crate::policy::{DischargeDirective, PreservePolicy};
use crate::runtime::SdbRuntime;
use crate::scheduler::{run_trace, SimOptions, SimResult};
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;
use sdb_workloads::device::{Activity, DeviceClass, DevicePower};
use sdb_workloads::traces::watch_day;

/// Battery index of the Li-ion cell in the watch pack.
pub const LI_ION: usize = 0;
/// Battery index of the bendable cell in the watch pack.
pub const BENDABLE: usize = 1;

/// The two policies of Figure 13, plus the future-knowledge oracle the
/// paper hypothesizes ("if we had knowledge of the future workload, we
/// could improve upon the above instantaneously-optimal algorithms",
/// Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchPolicy {
    /// Policy 1: minimize instantaneous losses (pure RBL-Discharge).
    MinimizeInstantaneousLosses,
    /// Policy 2: preserve the Li-ion for high-power episodes.
    PreserveLiIon,
    /// Oracle: knows the run window exactly — preserves the Li-ion only
    /// until the run completes, then reverts to loss-optimal splitting.
    Oracle,
}

impl WatchPolicy {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::MinimizeInstantaneousLosses => "Policy 1 (minimize instantaneous losses)",
            Self::PreserveLiIon => "Policy 2 (preserve Li-ion)",
            Self::Oracle => "Oracle (exact future knowledge)",
        }
    }
}

/// Outcome of one watch-day simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchOutcome {
    /// Which policy ran.
    pub policy: WatchPolicy,
    /// Battery life: time to first unserved load, seconds (full day if the
    /// pack survived).
    pub life_s: f64,
    /// When the Li-ion cell emptied, if it did.
    pub li_ion_empty_s: Option<f64>,
    /// When the bendable cell emptied, if it did.
    pub bendable_empty_s: Option<f64>,
    /// Per-hour losses (cell heat + circuit), joules.
    pub hourly_loss_j: Vec<f64>,
    /// Per-hour load energy, joules.
    pub hourly_load_j: Vec<f64>,
    /// Total losses over the run, joules.
    pub total_loss_j: f64,
    /// Raw simulation result.
    pub sim: SimResult,
}

/// Builds the watch pack: 200 mAh Li-ion + 200 mAh bendable.
#[must_use]
pub fn build_pack() -> Microcontroller {
    PackBuilder::new()
        .battery_at(
            sdb_battery_model::library::watch_li_ion().spec().clone(),
            1.0,
            ProfileKind::Standard,
        )
        .battery_at(
            sdb_battery_model::library::watch_bendable().spec().clone(),
            1.0,
            ProfileKind::Gentle,
        )
        .build()
}

/// The load above which the watch is in a "high-power episode" (the run):
/// halfway between interactive and GPS-tracking draw.
#[must_use]
pub fn high_power_threshold_w() -> f64 {
    let dev = DevicePower::for_class(DeviceClass::Watch);
    0.5 * (dev.draw_w(Activity::Interactive) + dev.draw_w(Activity::GpsTracking))
}

/// Runs one watch day under a policy. `run_hour` is the hour the user goes
/// running (`None` = no run that day); `seed` selects the trace.
#[must_use]
pub fn watch_scenario(policy: WatchPolicy, run_hour: Option<f64>, seed: u64) -> WatchOutcome {
    let mut micro = build_pack();
    let mut runtime = SdbRuntime::new(2);
    runtime.set_update_period(60.0);
    let opts = SimOptions {
        max_dt_s: 60.0,
        stop_on_brownout: false,
    };
    let trace = watch_day(seed, run_hour);

    let sim = match policy {
        WatchPolicy::MinimizeInstantaneousLosses => {
            runtime.set_discharge_directive(DischargeDirective::new(1.0));
            run_trace(&mut micro, &mut runtime, &trace, &opts)
        }
        WatchPolicy::PreserveLiIon => {
            runtime.set_preserve(Some(PreservePolicy::new(
                LI_ION,
                BENDABLE,
                high_power_threshold_w(),
            )));
            run_trace(&mut micro, &mut runtime, &trace, &opts)
        }
        WatchPolicy::Oracle => {
            // Exact future knowledge: preserve only until the run is over
            // (or not at all if no run is coming), then run loss-optimal.
            match run_hour {
                None => {
                    runtime.set_discharge_directive(DischargeDirective::new(1.0));
                    run_trace(&mut micro, &mut runtime, &trace, &opts)
                }
                Some(rh) => {
                    let switch_s = (rh + 1.0) * 3600.0;
                    let (before, after) = split_trace(&trace, switch_s);
                    runtime.set_preserve(Some(PreservePolicy::new(
                        LI_ION,
                        BENDABLE,
                        high_power_threshold_w(),
                    )));
                    let first = run_trace(&mut micro, &mut runtime, &before, &opts);
                    runtime.set_preserve(None);
                    runtime.set_discharge_directive(DischargeDirective::new(1.0));
                    let second = run_trace(&mut micro, &mut runtime, &after, &opts);
                    merge_sims(first, second)
                }
            }
        }
    };
    WatchOutcome {
        policy,
        life_s: sim.battery_life_s(),
        li_ion_empty_s: sim.battery_empty_s[LI_ION],
        bendable_empty_s: sim.battery_empty_s[BENDABLE],
        hourly_loss_j: sim.hourly_loss_j.clone(),
        hourly_load_j: sim.hourly_load_j.clone(),
        total_loss_j: sim.total_loss_j(),
        sim,
    }
}

/// Splits a trace at `at_s` into (before, after).
fn split_trace(
    trace: &sdb_workloads::traces::Trace,
    at_s: f64,
) -> (sdb_workloads::traces::Trace, sdb_workloads::traces::Trace) {
    let mut before = sdb_workloads::traces::Trace::new();
    let mut after = sdb_workloads::traces::Trace::new();
    let mut t = 0.0;
    for p in trace.points() {
        if t + p.dur_s <= at_s + 1e-9 {
            before.push(p.load_w, p.external_w, p.dur_s);
        } else if t >= at_s - 1e-9 {
            after.push(p.load_w, p.external_w, p.dur_s);
        } else {
            // Segment straddles the boundary.
            before.push(p.load_w, p.external_w, at_s - t);
            after.push(p.load_w, p.external_w, p.dur_s - (at_s - t));
        }
        t += p.dur_s;
    }
    (before, after)
}

/// Merges two back-to-back simulation results into one timeline.
fn merge_sims(first: SimResult, second: SimResult) -> SimResult {
    let offset = first.simulated_s;
    let shift = |t: Option<f64>| t.map(|v| v + offset);
    let mut hourly_loss = first.hourly_loss_j.clone();
    let mut hourly_load = first.hourly_load_j.clone();
    // The split is hour-aligned in practice; append with index offset.
    let hour_offset = (offset / 3600.0).round() as usize;
    for (k, (&loss, &load)) in second
        .hourly_loss_j
        .iter()
        .zip(&second.hourly_load_j)
        .enumerate()
    {
        let idx = hour_offset + k;
        if hourly_loss.len() <= idx {
            hourly_loss.resize(idx + 1, 0.0);
            hourly_load.resize(idx + 1, 0.0);
        }
        hourly_loss[idx] += loss;
        hourly_load[idx] += load;
    }
    SimResult {
        simulated_s: first.simulated_s + second.simulated_s,
        supplied_j: first.supplied_j + second.supplied_j,
        unmet_j: first.unmet_j + second.unmet_j,
        circuit_loss_j: first.circuit_loss_j + second.circuit_loss_j,
        cell_heat_j: first.cell_heat_j + second.cell_heat_j,
        external_j: first.external_j + second.external_j,
        first_brownout_s: first
            .first_brownout_s
            .or_else(|| shift(second.first_brownout_s)),
        battery_empty_s: first
            .battery_empty_s
            .iter()
            .zip(&second.battery_empty_s)
            .map(|(&a, &b)| a.or_else(|| shift(b)))
            .collect(),
        hourly_loss_j: hourly_loss,
        hourly_load_j: hourly_load,
        final_soc: second.final_soc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 13;

    #[test]
    fn figure_13_policy_comparison() {
        let p1 = watch_scenario(WatchPolicy::MinimizeInstantaneousLosses, Some(9.0), SEED);
        let p2 = watch_scenario(WatchPolicy::PreserveLiIon, Some(9.0), SEED);

        // Policy 1 drains the efficient Li-ion early (paper: ~hour 9.5).
        let li1 = p1.li_ion_empty_s.expect("policy 1 empties the Li-ion") / 3600.0;
        assert!(li1 < 12.0, "policy 1 Li-ion died at hour {li1}");
        // Policy 2 holds the Li-ion until (at least) the run.
        if let Some(t) = p2.li_ion_empty_s {
            assert!(t / 3600.0 > 9.0, "policy 2 kept Li-ion for the run")
        }

        // Headline: the preserve policy buys over an hour of battery life.
        let gain_h = (p2.life_s - p1.life_s) / 3600.0;
        assert!(
            gain_h > 1.0,
            "gain = {gain_h} h (p1 {}, p2 {})",
            p1.life_s / 3600.0,
            p2.life_s / 3600.0
        );

        // And lower total losses.
        assert!(p2.total_loss_j < p1.total_loss_j);
    }

    #[test]
    fn without_a_run_instantaneous_policy_wins() {
        // Paper: "if the user had not gone for a run then the first policy
        // would have given better battery life."
        let p1 = watch_scenario(WatchPolicy::MinimizeInstantaneousLosses, None, SEED);
        let p2 = watch_scenario(WatchPolicy::PreserveLiIon, None, SEED);
        // Both should survive further; compare by total losses since the
        // day may not kill either pack.
        assert!(
            p1.total_loss_j <= p2.total_loss_j,
            "p1 {} vs p2 {}",
            p1.total_loss_j,
            p2.total_loss_j
        );
        assert!(p1.life_s >= p2.life_s - 1800.0);
    }

    #[test]
    fn run_hour_dominates_losses_under_policy_1() {
        let p1 = watch_scenario(WatchPolicy::MinimizeInstantaneousLosses, Some(9.0), SEED);
        // Hour 9 (the run) should show the largest hourly loss while the
        // pack is alive — the bendable cell burns hard once the Li-ion is
        // nearly gone.
        let alive_hours = (p1.life_s / 3600.0).floor() as usize;
        let h9 = p1.hourly_loss_j[9];
        let max_other = p1
            .hourly_loss_j
            .iter()
            .take(alive_hours.min(p1.hourly_loss_j.len()))
            .enumerate()
            .filter(|(h, _)| *h != 9)
            .map(|(_, &l)| l)
            .fold(0.0, f64::max);
        assert!(h9 > max_other * 0.8, "h9 = {h9}, max other = {max_other}");
    }

    #[test]
    fn oracle_dominates_both_fixed_policies() {
        // With a run: the oracle beats the instantaneous policy by hours
        // and lands within minutes of the preserve policy. (Interestingly
        // it does not strictly dominate preserve: reverting to the
        // loss-greedy split after the run spends the efficient cell into
        // the tail, where the near-empty bendable cell's resistance
        // explodes — echoing the paper's warning that instantaneous
        // optimality is not global optimality, even with future
        // knowledge of *load* but not of resistance trajectories.)
        let p1 = watch_scenario(WatchPolicy::MinimizeInstantaneousLosses, Some(9.0), SEED);
        let p2 = watch_scenario(WatchPolicy::PreserveLiIon, Some(9.0), SEED);
        let oracle = watch_scenario(WatchPolicy::Oracle, Some(9.0), SEED);
        assert!(
            (oracle.life_s - p2.life_s).abs() < 0.5 * 3600.0,
            "oracle {} vs preserve {}",
            oracle.life_s / 3600.0,
            p2.life_s / 3600.0
        );
        assert!(oracle.life_s > p1.life_s + 3600.0);
        // Without a run: the oracle matches the instantaneous policy (it
        // knows there is nothing to preserve for).
        let p1_norun = watch_scenario(WatchPolicy::MinimizeInstantaneousLosses, None, SEED);
        let oracle_norun = watch_scenario(WatchPolicy::Oracle, None, SEED);
        assert_eq!(oracle_norun.total_loss_j, p1_norun.total_loss_j);
    }

    #[test]
    fn threshold_separates_activities() {
        let dev = DevicePower::for_class(DeviceClass::Watch);
        let th = high_power_threshold_w();
        assert!(dev.draw_w(Activity::Interactive) < th);
        assert!(dev.draw_w(Activity::GpsTracking) > th);
    }
}
