//! The CPU performance-priority scenario (Section 5.1, Figure 12).
//!
//! A 2-in-1 pack combines a high energy-density battery with a high
//! power-density battery. The OS exposes three performance priority
//! levels; each maps to a battery configuration and a CPU power cap:
//!
//! * **Low** — the high power-density battery is disabled and the CPU is
//!   informed of the reduced power capacity.
//! * **Medium** — both batteries enabled, the CPU may draw the high-energy
//!   battery's peak from each.
//! * **High** — the CPU may draw the maximum possible power from both.
//!
//! The figure compares latency and energy (including battery losses) for a
//! network-bottlenecked and a CPU/GPU-bottlenecked user at each level,
//! normalized to Low.

use crate::policy::{rbl_discharge, PolicyInput};
use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_workloads::cpu::{PowerLevel, Task, TurboCpu};

/// One bar of Figure 12.
#[derive(Debug, Clone, PartialEq)]
pub struct TurboRow {
    /// Workload profile label ("Network Bottlenecked" / "CPU/GPU
    /// Bottlenecked").
    pub profile: &'static str,
    /// Performance priority level.
    pub level: PowerLevel,
    /// Latency normalized to the Low level.
    pub latency_ratio: f64,
    /// Total energy (device + battery losses) normalized to Low.
    pub energy_ratio: f64,
}

/// Builds the scenario pack: a 4 Ah high-energy cell plus a 4 Ah
/// high-power cell.
#[must_use]
pub fn build_pack() -> Microcontroller {
    PackBuilder::new()
        .battery(BatterySpec::from_chemistry(
            "high-energy",
            Chemistry::Type2CoStandard,
            4.0,
        ))
        .battery(BatterySpec::from_chemistry(
            "high-power",
            Chemistry::Type3CoPower,
            4.0,
        ))
        .build()
}

/// Total chemical energy a task consumes at one level: device energy plus
/// the battery heat and circuit losses incurred supplying it.
fn chemical_energy_j(cpu: &TurboCpu, task: Task, level: PowerLevel) -> f64 {
    let mut micro = build_pack();
    // Ratios per level: Low disables the power cell entirely; Medium splits
    // evenly; High uses the loss-optimal split at full power.
    let ratios = match level {
        PowerLevel::Low => vec![1.0, 0.0],
        PowerLevel::Medium => vec![0.5, 0.5],
        PowerLevel::High => {
            let input = PolicyInput::from_micro(&micro).with_load(cpu.power_w(level) + cpu.rest_w);
            rbl_discharge(&input).expect("fresh pack is dischargeable")
        }
    };
    micro.set_discharge_ratios(&ratios).expect("valid ratios");

    let outcome = cpu.run(task, level);
    let compute_s = task.compute_ref_s / cpu.speedup(level);
    // Two phases: compute at the level's package power, then network waits.
    if compute_s > 0.0 {
        let p = cpu.power_w(level) + cpu.rest_w;
        micro.step(p, 0.0, compute_s);
    }
    if task.network_s > 0.0 {
        let p = cpu.wait_power_w(level) + cpu.rest_w;
        micro.step(p, 0.0, task.network_s);
    }
    let (delivered, circuit_loss, cell_heat, unmet, _) = micro.energy_totals_j();
    assert!(unmet < 1e-6, "scenario pack must sustain the level");
    // Sanity: the device-side energy matches what the pack delivered.
    debug_assert!((delivered - outcome.energy_j).abs() / outcome.energy_j < 0.05);
    delivered + circuit_loss + cell_heat
}

/// Runs the full Figure 12 comparison: both user profiles at all three
/// levels, normalized to the Low level.
#[must_use]
pub fn turbo_comparison() -> Vec<TurboRow> {
    let cpu = TurboCpu::tablet();
    let profiles: [(&'static str, Task); 2] = [
        ("Network Bottlenecked", Task::network_bound(600.0)),
        ("CPU/GPU Bottlenecked", Task::compute_bound(600.0)),
    ];
    let mut rows = Vec::with_capacity(6);
    for (name, task) in profiles {
        let base_latency = cpu.run(task, PowerLevel::Low).latency_s;
        let base_energy = chemical_energy_j(&cpu, task, PowerLevel::Low);
        for level in PowerLevel::ALL {
            let latency = cpu.run(task, level).latency_s;
            let energy = chemical_energy_j(&cpu, task, level);
            rows.push(TurboRow {
                profile: name,
                level,
                latency_ratio: latency / base_latency,
                energy_ratio: energy / base_energy,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [TurboRow], profile: &str, level: PowerLevel) -> &'a TurboRow {
        rows.iter()
            .find(|r| r.profile == profile && r.level == level)
            .expect("row exists")
    }

    #[test]
    fn figure_12_shapes() {
        let rows = turbo_comparison();
        assert_eq!(rows.len(), 6);

        // Network-bottlenecked: no meaningful latency gain, energy grows
        // with the level (paper: up to ~20.6 % more energy).
        let net_high = row(&rows, "Network Bottlenecked", PowerLevel::High);
        assert!(net_high.latency_ratio > 0.90, "{}", net_high.latency_ratio);
        assert!(
            net_high.energy_ratio > 1.10 && net_high.energy_ratio < 1.35,
            "network high energy = {}",
            net_high.energy_ratio
        );
        let net_med = row(&rows, "Network Bottlenecked", PowerLevel::Medium);
        assert!(net_med.energy_ratio > 1.0 && net_med.energy_ratio < net_high.energy_ratio);

        // CPU-bottlenecked: real latency gains (paper: up to 26 % better).
        let cpu_high = row(&rows, "CPU/GPU Bottlenecked", PowerLevel::High);
        assert!(
            cpu_high.latency_ratio < 0.80 && cpu_high.latency_ratio > 0.65,
            "cpu high latency = {}",
            cpu_high.latency_ratio
        );
        let cpu_med = row(&rows, "CPU/GPU Bottlenecked", PowerLevel::Medium);
        assert!(cpu_med.latency_ratio < 1.0 && cpu_med.latency_ratio > cpu_high.latency_ratio);

        // Low rows are the 1.0 baselines.
        for profile in ["Network Bottlenecked", "CPU/GPU Bottlenecked"] {
            let low = row(&rows, profile, PowerLevel::Low);
            assert!((low.latency_ratio - 1.0).abs() < 1e-9);
            assert!((low.energy_ratio - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn battery_losses_amplify_high_power_cost() {
        // The chemical energy ratio at High must exceed the device-only
        // ratio: higher current means superlinear battery losses.
        let cpu = TurboCpu::tablet();
        let task = Task::compute_bound(600.0);
        let device_ratio = {
            let base = cpu.run(task, PowerLevel::Low).energy_j;
            cpu.run(task, PowerLevel::High).energy_j / base
        };
        let chem_ratio = chemical_energy_j(&cpu, task, PowerLevel::High)
            / chemical_energy_j(&cpu, task, PowerLevel::Low);
        assert!(
            chem_ratio > device_ratio * 0.98,
            "{chem_ratio} vs {device_ratio}"
        );
    }

    #[test]
    fn low_level_single_battery_sustains_load() {
        let cpu = TurboCpu::tablet();
        let mut micro = build_pack();
        micro.set_discharge_ratios(&[1.0, 0.0]).unwrap();
        let report = micro.step(cpu.power_w(PowerLevel::Low) + cpu.rest_w, 0.0, 60.0);
        assert!(report.unmet_w < 1e-9);
        assert!(micro.cells()[1].is_full(), "power cell untouched at Low");
    }
}
