//! The Section 5 applications of SDB.
//!
//! Each submodule reproduces one scenario end-to-end on the emulated
//! hardware and returns structured results the figure harness, benches,
//! examples, and integration tests all share:
//!
//! * [`hybrid`] — high power-density + high energy-density packs: energy
//!   density, charge speed, and longevity tradeoffs (Figure 11).
//! * [`turbo`] — CPU performance priority levels on a hybrid pack
//!   (Figure 12).
//! * [`watch`] — the bendable-strap smart-watch and the preserve policy
//!   (Figure 13).
//! * [`two_in_one`] — 2-in-1 internal/external battery management
//!   (Figure 14).
//! * [`drone`] — the Section 8 future-work quadcopter: burst power vs
//!   flight time (extension).

pub mod drone;
pub mod hybrid;
pub mod turbo;
pub mod two_in_one;
pub mod watch;
