//! The 2-in-1 battery-management scenario (Section 5.3, Figure 14).
//!
//! 2-in-1 devices keep a second battery under the detachable keyboard and
//! traditionally use it "solely to charge the battery in the tablet" —
//! paying conversion losses twice. SDB instead draws power simultaneously
//! from both batteries: "the internal losses are proportional to the
//! square of the current (resistive losses = I²R). Splitting the power
//! draw across the two batteries, therefore, reduces the internal losses"
//! — up to 22 % more battery life.

use crate::policy::{DischargeDirective, PolicyInput};
use crate::runtime::SdbRuntime;
use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;
use sdb_workloads::traces::{two_in_one_workloads, Trace};

/// Battery index of the internal (tablet) cell.
pub const INTERNAL: usize = 0;
/// Battery index of the external (keyboard-base) cell.
pub const EXTERNAL: usize = 1;

/// The two management strategies of Figure 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// SDB: draw power simultaneously from both batteries (loss-optimal
    /// split).
    SimultaneousDraw,
    /// Traditional: run the system from the internal battery only, while
    /// the external battery charges it through the conversion chain.
    ChargeThrough,
}

/// One bar of Figure 14.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoInOneRow {
    /// Workload name.
    pub workload: &'static str,
    /// Battery life under simultaneous draw, seconds.
    pub simultaneous_life_s: f64,
    /// Battery life under charge-through, seconds.
    pub charge_through_life_s: f64,
}

impl TwoInOneRow {
    /// Battery-life improvement of simultaneous draw over charge-through,
    /// percent.
    #[must_use]
    pub fn improvement_pct(&self) -> f64 {
        (self.simultaneous_life_s / self.charge_through_life_s - 1.0) * 100.0
    }
}

/// Builds the 2-in-1 pack: two equal Type 2 cells (Section 5.3: "two equal
/// sized traditional Li-ion batteries").
#[must_use]
pub fn build_pack(capacity_ah: f64) -> Microcontroller {
    PackBuilder::new()
        .battery_at(
            BatterySpec::from_chemistry("internal", Chemistry::Type2CoStandard, capacity_ah),
            1.0,
            ProfileKind::Standard,
        )
        .battery_at(
            BatterySpec::from_chemistry("external", Chemistry::Type2CoStandard, capacity_ah),
            1.0,
            ProfileKind::Standard,
        )
        .build()
}

/// Runs one workload to exhaustion under a strategy and returns battery
/// life in seconds. The trace is repeated until the pack browns out (or
/// `cap_s` elapses).
#[must_use]
pub fn battery_life_s(strategy: Strategy, workload: &Trace, capacity_ah: f64, cap_s: f64) -> f64 {
    let mut micro = build_pack(capacity_ah);
    let dt = 30.0;
    let mut elapsed = 0.0;
    let mut runtime = SdbRuntime::new(2);
    runtime.set_discharge_directive(DischargeDirective::new(1.0));
    runtime.set_update_period(60.0);
    if strategy == Strategy::ChargeThrough {
        // The system load always comes from the internal battery.
        micro
            .set_discharge_ratios(&[1.0, 0.0])
            .expect("valid ratios");
    }
    let resampled = workload.resampled(dt);
    'outer: loop {
        for p in resampled.points() {
            match strategy {
                Strategy::SimultaneousDraw => {
                    let input = PolicyInput::from_micro(&micro).with_load(p.load_w);
                    runtime
                        .tick(&mut micro, &input, p.dur_s)
                        .expect("runtime push accepted");
                }
                Strategy::ChargeThrough => {
                    // Keep a transfer running: the external battery
                    // continuously recharges the internal one at the
                    // internal cell's acceptance power.
                    if !micro.transfer_active()
                        && !micro.cells()[EXTERNAL].is_empty()
                        && micro.cells()[INTERNAL].soc() < 0.95
                    {
                        let accept_w = micro.charge_acceptance_a(INTERNAL)
                            * micro.cells()[INTERNAL].terminal_voltage(0.0);
                        if accept_w > 0.1 {
                            micro
                                .charge_one_from_another(EXTERNAL, INTERNAL, accept_w, 600.0)
                                .expect("valid transfer");
                        }
                    }
                }
            }
            let report = micro.step(p.load_w, 0.0, p.dur_s);
            elapsed += p.dur_s;
            if report.unmet_w > 1e-9 || elapsed >= cap_s {
                break 'outer;
            }
        }
    }
    elapsed
}

/// Like [`battery_life_s`], but the keyboard base (the external battery)
/// is repeatedly undocked: `docked_s` seconds attached, then `undocked_s`
/// detached, alternating. The paper notes the simultaneous-draw gain "is
/// not realizable for a user who only keeps the base ... plugged in for
/// short periods of time".
#[must_use]
pub fn battery_life_with_detach(
    strategy: Strategy,
    workload: &Trace,
    capacity_ah: f64,
    cap_s: f64,
    docked_s: f64,
    undocked_s: f64,
) -> f64 {
    assert!(docked_s > 0.0 && undocked_s >= 0.0);
    let mut micro = build_pack(capacity_ah);
    let dt = 30.0;
    let mut elapsed = 0.0;
    let mut runtime = SdbRuntime::new(2);
    runtime.set_discharge_directive(DischargeDirective::new(1.0));
    runtime.set_update_period(60.0);
    if strategy == Strategy::ChargeThrough {
        micro
            .set_discharge_ratios(&[1.0, 0.0])
            .expect("valid ratios");
    }
    let resampled = workload.resampled(dt);
    let period = docked_s + undocked_s;
    'outer: loop {
        for p in resampled.points() {
            let docked = period == 0.0 || (elapsed % period) < docked_s;
            if micro.battery_present(EXTERNAL) != docked {
                micro
                    .set_battery_present(EXTERNAL, docked)
                    .expect("valid index");
            }
            match strategy {
                Strategy::SimultaneousDraw => {
                    let input = PolicyInput::from_micro(&micro).with_load(p.load_w);
                    runtime
                        .tick(&mut micro, &input, p.dur_s)
                        .expect("runtime push accepted");
                }
                Strategy::ChargeThrough => {
                    if docked
                        && !micro.transfer_active()
                        && !micro.cells()[EXTERNAL].is_empty()
                        && micro.cells()[INTERNAL].soc() < 0.95
                    {
                        let accept_w = micro.charge_acceptance_a(INTERNAL)
                            * micro.cells()[INTERNAL].terminal_voltage(0.0);
                        if accept_w > 0.1 {
                            micro
                                .charge_one_from_another(EXTERNAL, INTERNAL, accept_w, 600.0)
                                .expect("valid transfer");
                        }
                    }
                }
            }
            let report = micro.step(p.load_w, 0.0, p.dur_s);
            elapsed += p.dur_s;
            if report.unmet_w > 1e-9 || elapsed >= cap_s {
                break 'outer;
            }
        }
    }
    elapsed
}

/// Runs the full Figure 14 comparison across the named workloads.
#[must_use]
pub fn two_in_one_comparison(seed: u64, capacity_ah: f64) -> Vec<TwoInOneRow> {
    two_in_one_workloads(seed)
        .into_iter()
        .map(|(name, trace)| {
            let cap_s = 48.0 * 3600.0;
            TwoInOneRow {
                workload: name,
                simultaneous_life_s: battery_life_s(
                    Strategy::SimultaneousDraw,
                    &trace,
                    capacity_ah,
                    cap_s,
                ),
                charge_through_life_s: battery_life_s(
                    Strategy::ChargeThrough,
                    &trace,
                    capacity_ah,
                    cap_s,
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_workloads::device::Activity;
    use sdb_workloads::traces::tablet_session;

    #[test]
    fn simultaneous_draw_beats_charge_through() {
        // One representative workload is enough for the unit test (the
        // full sweep runs in the figure harness).
        let trace = tablet_session(5, &[Activity::Network, Activity::Compute], 300.0, 3600.0);
        let sim = battery_life_s(Strategy::SimultaneousDraw, &trace, 4.0, 24.0 * 3600.0);
        let ct = battery_life_s(Strategy::ChargeThrough, &trace, 4.0, 24.0 * 3600.0);
        let improvement = (sim / ct - 1.0) * 100.0;
        assert!(
            improvement > 5.0 && improvement < 40.0,
            "improvement = {improvement}% (sim {sim}, ct {ct})"
        );
    }

    #[test]
    fn mostly_undocked_usage_shrinks_the_gain() {
        let trace = tablet_session(5, &[Activity::Network, Activity::Compute], 300.0, 3600.0);
        let cap = 24.0 * 3600.0;
        // Always docked vs docked only 10 minutes per hour.
        let sim_docked = battery_life_s(Strategy::SimultaneousDraw, &trace, 4.0, cap);
        let sim_undocked =
            battery_life_with_detach(Strategy::SimultaneousDraw, &trace, 4.0, cap, 600.0, 3000.0);
        // Undocking removes the second battery most of the time: life
        // drops substantially (the internal cell carries the day alone).
        assert!(
            sim_undocked < 0.8 * sim_docked,
            "undocked {sim_undocked} vs docked {sim_docked}"
        );
        // But the device keeps running through every dock/undock
        // transition (no panics, load served until genuine exhaustion).
        assert!(sim_undocked > 0.25 * sim_docked);
    }

    #[test]
    fn detach_while_transfer_active_is_safe() {
        let trace = tablet_session(5, &[Activity::Compute], 300.0, 1800.0);
        // Charge-through with rapid dock cycling: transfers abort cleanly.
        let life = battery_life_with_detach(
            Strategy::ChargeThrough,
            &trace,
            4.0,
            24.0 * 3600.0,
            300.0,
            300.0,
        );
        assert!(life > 3600.0, "life = {life}");
    }

    #[test]
    fn both_strategies_use_both_batteries_eventually() {
        let trace = tablet_session(5, &[Activity::Compute], 300.0, 3600.0);
        // Charge-through still extracts energy from the external cell (via
        // transfer); its life must far exceed a single-battery life.
        let single = {
            let mut micro = build_pack(4.0);
            micro.set_discharge_ratios(&[1.0, 0.0]).unwrap();
            // No transfer: internal battery only.
            let mut elapsed = 0.0;
            let resampled = trace.resampled(30.0);
            'outer: loop {
                for p in resampled.points() {
                    let report = micro.step(p.load_w, 0.0, p.dur_s);
                    elapsed += p.dur_s;
                    if report.unmet_w > 1e-9 {
                        break 'outer;
                    }
                }
            }
            elapsed
        };
        let ct = battery_life_s(Strategy::ChargeThrough, &trace, 4.0, 24.0 * 3600.0);
        assert!(ct > 1.5 * single, "ct {ct} vs single {single}");
    }
}
