//! The fast-charging hybrid pack scenario (Section 5.1, Figure 11).
//!
//! "We meet the total capacity requirement of the device, of 8000 mAh,
//! using 0 %, 50 %, and 100 % from a high energy density battery" —
//! i.e. pure high-energy (Type 2), a 50/50 SDB mix, and pure fast-charging
//! (Type 3) packs. The scenario computes the three panels:
//!
//! * **Figure 11a** — pack energy density vs fast-charging fraction.
//! * **Figure 11b** — time to reach each charge percentage.
//! * **Figure 11c** — longevity after 1000 cycles.

use crate::policy::ChargeDirective;
use crate::runtime::SdbRuntime;
use crate::scheduler::run_charge_session;
use sdb_battery_model::aging::FadeModel;
use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;

/// A hybrid pack configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// Fraction of the capacity budget given to the fast-charging (Type 3)
    /// battery, `[0, 1]`.
    pub fast_fraction: f64,
    /// Total pack capacity budget, amp-hours (the paper uses 8.0).
    pub total_capacity_ah: f64,
}

impl HybridConfig {
    /// The paper's three configurations over the 8000 mAh budget.
    #[must_use]
    pub fn paper_configs() -> [HybridConfig; 3] {
        [
            HybridConfig {
                fast_fraction: 0.0,
                total_capacity_ah: 8.0,
            },
            HybridConfig {
                fast_fraction: 0.5,
                total_capacity_ah: 8.0,
            },
            HybridConfig {
                fast_fraction: 1.0,
                total_capacity_ah: 8.0,
            },
        ]
    }

    /// Display label matching the paper's x-axis.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{:.0}%", self.fast_fraction * 100.0)
    }

    /// Builds the pack at `initial_soc`, fast cell on its fast profile.
    ///
    /// # Panics
    ///
    /// Panics if `fast_fraction` is outside `[0, 1]` or the budget is not
    /// positive.
    #[must_use]
    pub fn build_pack(&self, initial_soc: f64) -> Microcontroller {
        assert!((0.0..=1.0).contains(&self.fast_fraction), "bad fraction");
        assert!(self.total_capacity_ah > 0.0, "bad capacity");
        let fast_ah = self.fast_fraction * self.total_capacity_ah;
        let energy_ah = self.total_capacity_ah - fast_ah;
        let mut b = PackBuilder::new();
        if energy_ah > 0.0 {
            b = b.battery_at(
                BatterySpec::from_chemistry("high-energy", Chemistry::Type2CoStandard, energy_ah),
                initial_soc,
                ProfileKind::Standard,
            );
        }
        if fast_ah > 0.0 {
            b = b.battery_at(
                BatterySpec::from_chemistry("fast-charge", Chemistry::Type3CoPower, fast_ah),
                initial_soc,
                ProfileKind::Fast,
            );
        }
        b.build()
    }

    /// Figure 11a: effective pack energy density, Wh/l. The fast-charging
    /// cell's density already accounts for high-current swelling
    /// (Section 5.1: effective 500–510 Wh/l vs 590–600 for high-energy).
    #[must_use]
    pub fn energy_density_wh_per_l(&self) -> f64 {
        let v_e = Chemistry::Type2CoStandard.nominal_voltage_v();
        let v_f = Chemistry::Type3CoPower.nominal_voltage_v();
        let e_wh = (1.0 - self.fast_fraction) * self.total_capacity_ah * v_e;
        let f_wh = self.fast_fraction * self.total_capacity_ah * v_f;
        let e_l = e_wh / Chemistry::Type2CoStandard.effective_energy_density_wh_per_l();
        let f_l = f_wh / Chemistry::Type3CoPower.effective_energy_density_wh_per_l();
        (e_wh + f_wh) / (e_l + f_l)
    }

    /// Figure 11c: pack capacity retained after `cycles` charge cycles
    /// under this configuration's charging regime (each cell fades at its
    /// own profile's C-rate), capacity-weighted, percent.
    #[must_use]
    pub fn longevity_after_cycles(&self, cycles: u32) -> f64 {
        let mut weighted = 0.0;
        let fast_ah = self.fast_fraction * self.total_capacity_ah;
        let energy_ah = self.total_capacity_ah - fast_ah;
        if energy_ah > 0.0 {
            let spec = BatterySpec::from_chemistry("e", Chemistry::Type2CoStandard, energy_ah);
            let profile =
                sdb_emulator::profile::ChargingProfile::for_spec(ProfileKind::Standard, &spec);
            let c_rate = profile.cc_current_a / energy_ah;
            weighted += FadeModel::for_spec(&spec).capacity_after(cycles, c_rate)
                * (energy_ah / self.total_capacity_ah);
        }
        if fast_ah > 0.0 {
            let spec = BatterySpec::from_chemistry("f", Chemistry::Type3CoPower, fast_ah);
            let profile =
                sdb_emulator::profile::ChargingProfile::for_spec(ProfileKind::Fast, &spec);
            let c_rate = profile.cc_current_a / fast_ah;
            weighted += FadeModel::for_spec(&spec).capacity_after(cycles, c_rate)
                * (fast_ah / self.total_capacity_ah);
        }
        weighted * 100.0
    }
}

/// Figure 11b: minutes to reach each percentage of total pack charge,
/// charging from empty with `external_w` of supply under an urgent
/// (RBL-weighted) charging directive.
#[derive(Debug, Clone, PartialEq)]
pub struct ChargeCurve {
    /// Target pack charge percentages.
    pub targets_pct: Vec<f64>,
    /// Minutes to reach each target (`None` = not reached within the cap).
    pub minutes: Vec<Option<f64>>,
}

impl ChargeCurve {
    /// Minutes to reach `pct` (the nearest computed target at or above).
    #[must_use]
    pub fn minutes_to(&self, pct: f64) -> Option<f64> {
        self.targets_pct
            .iter()
            .position(|&t| t >= pct - 1e-9)
            .and_then(|i| self.minutes[i])
    }
}

/// Runs the Figure 11b charging experiment for one configuration.
#[must_use]
pub fn charge_time_curve(config: &HybridConfig, external_w: f64) -> ChargeCurve {
    let targets_pct: Vec<f64> = (3..=17).map(|k| k as f64 * 5.0).collect(); // 15..85 %
    let targets: Vec<f64> = targets_pct.iter().map(|p| p / 100.0).collect();
    let mut micro = config.build_pack(0.0);
    let mut runtime = SdbRuntime::new(micro.battery_count());
    runtime.set_charge_directive(ChargeDirective::new(1.0));
    runtime.set_update_period(30.0);
    let times = run_charge_session(
        &mut micro,
        &mut runtime,
        external_w,
        &targets,
        6.0 * 3600.0,
        15.0,
    );
    ChargeCurve {
        targets_pct,
        minutes: times.iter().map(|t| t.map(|s| s / 60.0)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_11a_energy_density_ordering() {
        let [no_fast, half, all_fast] = HybridConfig::paper_configs();
        let d0 = no_fast.energy_density_wh_per_l();
        let d50 = half.energy_density_wh_per_l();
        let d100 = all_fast.energy_density_wh_per_l();
        assert!(d0 > d50 && d50 > d100, "{d0} > {d50} > {d100}");
        // Paper: ~595 / ~550 / ~505 Wh/l.
        assert!((d0 - 595.0).abs() < 10.0, "d0 = {d0}");
        assert!((545.0..=560.0).contains(&d50), "d50 = {d50}");
        assert!((500.0..=510.0).contains(&d100), "d100 = {d100}");
        // The SDB mix loses < 9 % density vs pure high-energy (the paper
        // quotes "less than 7 %" for *energy capacity* at its chosen cells;
        // our library's density spread is slightly wider).
        assert!((d0 - d50) / d0 < 0.09);
    }

    #[test]
    fn figure_11b_fast_configs_charge_faster() {
        let [no_fast, half, all_fast] = HybridConfig::paper_configs();
        let c0 = charge_time_curve(&no_fast, 60.0);
        let c50 = charge_time_curve(&half, 60.0);
        let c100 = charge_time_curve(&all_fast, 60.0);
        let t0 = c0.minutes_to(40.0).expect("traditional reaches 40 %");
        let t50 = c50.minutes_to(40.0).expect("SDB reaches 40 %");
        let t100 = c100.minutes_to(40.0).expect("fast reaches 40 %");
        assert!(t100 < t50 && t50 < t0, "{t100} < {t50} < {t0}");
        // Paper: SDB reaches 40 % about 3× faster than traditional.
        let speedup = t0 / t50;
        assert!(speedup > 1.8, "speedup = {speedup}");
    }

    #[test]
    fn figure_11c_longevity_ordering() {
        let [no_fast, half, all_fast] = HybridConfig::paper_configs();
        let l0 = no_fast.longevity_after_cycles(1000);
        let l50 = half.longevity_after_cycles(1000);
        let l100 = all_fast.longevity_after_cycles(1000);
        assert!(l0 > l50 && l50 > l100, "{l0} > {l50} > {l100}");
        // Paper: pure high-energy loses ~10 %, pure fast ~22 %.
        assert!((88.0..=94.0).contains(&l0), "l0 = {l0}");
        assert!((74.0..=82.0).contains(&l100), "l100 = {l100}");
        // SDB is a genuine middle ground.
        assert!(l50 > l100 + 3.0 && l50 < l0 - 3.0);
    }

    #[test]
    fn pack_composition_matches_fraction() {
        let half = HybridConfig {
            fast_fraction: 0.5,
            total_capacity_ah: 8.0,
        };
        let pack = half.build_pack(0.5);
        assert_eq!(pack.battery_count(), 2);
        let caps: Vec<f64> = pack.cells().iter().map(|c| c.spec().capacity_ah).collect();
        assert!((caps[0] - 4.0).abs() < 1e-12 && (caps[1] - 4.0).abs() < 1e-12);
        let pure = HybridConfig {
            fast_fraction: 0.0,
            total_capacity_ah: 8.0,
        };
        assert_eq!(pure.build_pack(1.0).battery_count(), 1);
    }
}
