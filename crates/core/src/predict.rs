//! Usage prediction → directive parameters.
//!
//! The paper's future-work direction (Section 8): "we are tying personal
//! assistants like Siri, Cortana, and Google Now with SDB. These assistants
//! understand user behavior and the user's schedule and by using this
//! information, an OS can perform better parameter selection." We
//! reproduce the mechanism with a simple statistical predictor: an
//! exponentially weighted profile of hourly power demand, learned across
//! days, from which the runtime derives directive parameters and preserve
//! decisions.

/// Learns a 24-bucket daily power profile by exponential averaging.
#[derive(Debug, Clone, PartialEq)]
pub struct UsagePredictor {
    /// EWMA of mean power per hour-of-day, watts.
    hourly_w: [f64; 24],
    /// Number of full days observed.
    days: u32,
    /// EWMA smoothing factor per day.
    alpha: f64,
}

impl UsagePredictor {
    /// A fresh predictor (no history).
    #[must_use]
    pub fn new() -> Self {
        Self {
            hourly_w: [0.0; 24],
            days: 0,
            alpha: 0.3,
        }
    }

    /// Ingests one observed day of hourly mean powers.
    ///
    /// # Panics
    ///
    /// Panics if `hourly_w` has fewer than 24 entries.
    pub fn observe_day(&mut self, hourly_w: &[f64]) {
        assert!(hourly_w.len() >= 24, "need 24 hourly buckets");
        for (learned, &observed) in self.hourly_w.iter_mut().zip(hourly_w) {
            if self.days == 0 {
                *learned = observed;
            } else {
                *learned = self.alpha * observed + (1.0 - self.alpha) * *learned;
            }
        }
        self.days += 1;
    }

    /// Predicted mean power for an hour of the day, watts.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    #[must_use]
    pub fn predicted_w(&self, hour: usize) -> f64 {
        assert!(hour < 24);
        self.hourly_w[hour]
    }

    /// Whether a high-power episode (≥ `threshold_w`) is expected within
    /// the next `horizon_h` hours after `now_hour`.
    #[must_use]
    pub fn high_power_expected(&self, now_hour: usize, horizon_h: usize, threshold_w: f64) -> bool {
        (1..=horizon_h).any(|k| self.hourly_w[(now_hour + k) % 24] >= threshold_w)
    }

    /// Maps the prediction to a discharging directive parameter: when a
    /// demanding episode is coming, lean toward preservation (low value —
    /// the runtime pairs this with a preserve policy); otherwise maximize
    /// instantaneous battery life (high value).
    #[must_use]
    pub fn discharge_directive(&self, now_hour: usize, threshold_w: f64) -> f64 {
        if self.days == 0 {
            // No history: neutral.
            0.5
        } else if self.high_power_expected(now_hour, 6, threshold_w) {
            0.1
        } else {
            0.9
        }
    }

    /// Maps a charging context to a charging directive parameter: overnight
    /// charging (device expected idle for many hours) can take its time
    /// (low value → CCB); a short window before predicted heavy use should
    /// charge usefully fast (high value → RBL).
    #[must_use]
    pub fn charge_directive(&self, now_hour: usize, plugged_expected_h: f64) -> f64 {
        if plugged_expected_h >= 4.0 {
            0.05
        } else if self.high_power_expected(now_hour, 3, self.peak_w() * 0.7) {
            0.95
        } else {
            0.5
        }
    }

    /// The learned daily peak, watts.
    #[must_use]
    pub fn peak_w(&self) -> f64 {
        self.hourly_w.iter().cloned().fold(0.0, f64::max)
    }

    /// Days of history ingested.
    #[must_use]
    pub fn days(&self) -> u32 {
        self.days
    }
}

impl Default for UsagePredictor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day_with_run(run_hour: usize) -> Vec<f64> {
        let mut d = vec![0.05; 24];
        d[run_hour] = 0.3;
        d
    }

    #[test]
    fn learns_daily_pattern() {
        let mut p = UsagePredictor::new();
        for _ in 0..5 {
            p.observe_day(&day_with_run(9));
        }
        assert!(p.predicted_w(9) > 0.25);
        assert!(p.predicted_w(3) < 0.1);
        assert_eq!(p.days(), 5);
    }

    #[test]
    fn detects_upcoming_high_power() {
        let mut p = UsagePredictor::new();
        p.observe_day(&day_with_run(9));
        assert!(p.high_power_expected(7, 3, 0.2));
        assert!(!p.high_power_expected(11, 3, 0.2));
        // Wraps around midnight.
        assert!(p.high_power_expected(23, 12, 0.2));
    }

    #[test]
    fn directive_low_before_run_high_after() {
        let mut p = UsagePredictor::new();
        for _ in 0..3 {
            p.observe_day(&day_with_run(9));
        }
        assert!(
            p.discharge_directive(7, 0.2) < 0.3,
            "preserve before the run"
        );
        assert!(p.discharge_directive(12, 0.2) > 0.7, "spend freely after");
    }

    #[test]
    fn neutral_without_history() {
        let p = UsagePredictor::new();
        assert!((p.discharge_directive(7, 0.2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overnight_charging_is_gentle() {
        let mut p = UsagePredictor::new();
        p.observe_day(&day_with_run(9));
        assert!(p.charge_directive(23, 8.0) < 0.1);
        assert!(
            p.charge_directive(7, 0.5) > 0.9,
            "fast charge before the run"
        );
    }

    #[test]
    fn ewma_adapts_to_schedule_change() {
        let mut p = UsagePredictor::new();
        for _ in 0..5 {
            p.observe_day(&day_with_run(9));
        }
        for _ in 0..12 {
            p.observe_day(&day_with_run(18));
        }
        assert!(p.predicted_w(18) > p.predicted_w(9));
    }
}
