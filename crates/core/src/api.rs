//! The four SDB APIs (Section 3.3).
//!
//! "The runtime communicates with the SDB microcontroller using the
//! following four APIs: `Charge(c1, ..., cN)`, `Discharge(d1, ..., dN)`,
//! `ChargeOneFromAnother(X, Y, W, T)`, and `QueryBatteryStatus()`."
//!
//! [`SdbApi`] abstracts that boundary so the runtime can drive the real
//! emulated microcontroller, the lossy link, or a mock in tests.

use crate::error::SdbError;
use sdb_emulator::link::{Command, Link};
use sdb_emulator::micro::Microcontroller;
use sdb_fuel_gauge::gauge::BatteryStatus;

/// The OS-facing SDB hardware interface.
pub trait SdbApi {
    /// Number of batteries behind this interface.
    fn battery_count(&self) -> usize;

    /// `Charge(c1, ..., cN)`: set charging power ratios (must sum to 1).
    ///
    /// # Errors
    ///
    /// [`SdbError::BadRatios`] / [`SdbError::HardwareRejected`] on
    /// malformed tuples or firmware rejection.
    fn charge(&mut self, ratios: &[f64]) -> Result<(), SdbError>;

    /// `Discharge(d1, ..., dN)`: set discharging power ratios.
    ///
    /// # Errors
    ///
    /// As [`SdbApi::charge`].
    fn discharge(&mut self, ratios: &[f64]) -> Result<(), SdbError>;

    /// `ChargeOneFromAnother(X, Y, W, T)`.
    ///
    /// # Errors
    ///
    /// [`SdbError::BadIndex`] / [`SdbError::HardwareRejected`].
    fn charge_one_from_another(
        &mut self,
        from: usize,
        to: usize,
        power_w: f64,
        duration_s: f64,
    ) -> Result<(), SdbError>;

    /// `QueryBatteryStatus()`: per-battery gauge rows.
    fn query_battery_status(&mut self) -> Vec<BatteryStatus>;
}

impl SdbApi for Microcontroller {
    fn battery_count(&self) -> usize {
        Microcontroller::battery_count(self)
    }

    fn charge(&mut self, ratios: &[f64]) -> Result<(), SdbError> {
        self.set_charge_ratios(ratios)
            .map_err(|e| SdbError::HardwareRejected(e.to_string()))
    }

    fn discharge(&mut self, ratios: &[f64]) -> Result<(), SdbError> {
        self.set_discharge_ratios(ratios)
            .map_err(|e| SdbError::HardwareRejected(e.to_string()))
    }

    fn charge_one_from_another(
        &mut self,
        from: usize,
        to: usize,
        power_w: f64,
        duration_s: f64,
    ) -> Result<(), SdbError> {
        Microcontroller::charge_one_from_another(self, from, to, power_w, duration_s)
            .map_err(|e| SdbError::HardwareRejected(e.to_string()))
    }

    fn query_battery_status(&mut self) -> Vec<BatteryStatus> {
        Microcontroller::query_battery_status(self)
    }
}

/// The link implementation fires commands into the transport; delivery (and
/// therefore any Nack) is asynchronous, so command methods always succeed
/// locally — matching the prototype's Bluetooth boundary.
impl SdbApi for Link {
    fn battery_count(&self) -> usize {
        self.micro().battery_count()
    }

    fn charge(&mut self, ratios: &[f64]) -> Result<(), SdbError> {
        self.send(Command::Charge(ratios.to_vec()));
        Ok(())
    }

    fn discharge(&mut self, ratios: &[f64]) -> Result<(), SdbError> {
        self.send(Command::Discharge(ratios.to_vec()));
        Ok(())
    }

    fn charge_one_from_another(
        &mut self,
        from: usize,
        to: usize,
        power_w: f64,
        duration_s: f64,
    ) -> Result<(), SdbError> {
        self.send(Command::ChargeOneFromAnother {
            from,
            to,
            power_w,
            duration_s,
        });
        Ok(())
    }

    fn query_battery_status(&mut self) -> Vec<BatteryStatus> {
        // The link's gauges are queried synchronously in the emulator; a
        // production driver would await the serial round-trip. Routing
        // through the link (not straight to the firmware) keeps injected
        // stale-status faults effective on this path too.
        self.query_battery_status_now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_emulator::pack::PackBuilder;

    fn micro() -> Microcontroller {
        PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .battery(BatterySpec::from_chemistry(
                "b",
                Chemistry::Type3CoPower,
                2.0,
            ))
            .build()
    }

    #[test]
    fn micro_implements_api() {
        let mut m = micro();
        let api: &mut dyn SdbApi = &mut m;
        assert_eq!(api.battery_count(), 2);
        api.discharge(&[0.3, 0.7]).unwrap();
        api.charge(&[0.5, 0.5]).unwrap();
        assert_eq!(api.query_battery_status().len(), 2);
        assert!(api.discharge(&[0.9, 0.9]).is_err());
        assert!(api.charge_one_from_another(0, 0, 5.0, 10.0).is_err());
    }

    #[test]
    fn link_implements_api_asynchronously() {
        let mut link = Link::ideal(micro());
        let api: &mut dyn SdbApi = &mut link;
        // Malformed ratios are accepted locally (Nack arrives later).
        api.discharge(&[0.9, 0.9]).unwrap();
        api.discharge(&[1.0, 0.0]).unwrap();
        link.step(2.0, 0.0, 60.0);
        let responses = link.take_responses();
        assert_eq!(responses.len(), 2);
    }
}
