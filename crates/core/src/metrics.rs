//! The two SDB policy metrics (Section 3.3).
//!
//! * **Wear ratio** `λi = cci / χi`: the fraction of battery *i*'s
//!   tolerable recharge cycles already consumed.
//! * **Cycle Count Balance** `CCB = maxi λi / minj λj`: "the ratio between
//!   the most and least worn-out battery, normalized to each battery's
//!   total tolerable cycle count. A device's longevity is maximized by
//!   balancing CCB" (driving it toward 1).
//! * **Remaining Battery Lifetime (RBL)**: "the amount of useful charge in
//!   the batteries", assuming no further charging.

use sdb_battery_model::spec::BatterySpec;

/// Computes wear ratios `λi = cci / χi` from cycle counts and specs.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn wear_ratios(cycle_counts: &[u32], specs: &[&BatterySpec]) -> Vec<f64> {
    assert_eq!(cycle_counts.len(), specs.len(), "length mismatch");
    cycle_counts
        .iter()
        .zip(specs)
        .map(|(&cc, spec)| f64::from(cc) / f64::from(spec.tolerable_cycles.max(1)))
        .collect()
}

/// Cycle Count Balance: `max λ / min λ`, smoothed by one cycle's worth of
/// wear so a brand-new pack (all zeros) reports a perfectly balanced 1.0
/// rather than 0/0.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn ccb(wear: &[f64]) -> f64 {
    assert!(!wear.is_empty(), "need at least one battery");
    // Smoothing: one cycle on a χ=1000 battery.
    const EPS: f64 = 1e-3;
    let max = wear.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = wear.iter().cloned().fold(f64::INFINITY, f64::min);
    (max + EPS) / (min + EPS)
}

/// Remaining Battery Lifetime as deliverable energy, watt-hours: the OCV
/// integral of each battery's remaining charge, discounted by the
/// resistive loss it would incur supplying `typical_power_w` split
/// loss-optimally across the pack.
///
/// This is the metric the RBL policies maximize; the loss discount is what
/// distinguishes a watt-hour in a high-resistance bendable cell from one in
/// an efficient Li-ion cell.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn rbl_wh(socs: &[f64], specs: &[&BatterySpec], typical_power_w: f64) -> f64 {
    assert_eq!(socs.len(), specs.len(), "length mismatch");
    let mut total = 0.0;
    for (&soc, spec) in socs.iter().zip(specs) {
        if soc <= 0.0 {
            continue;
        }
        // OCV integral from 0 to soc.
        let n = 24;
        let step = soc / n as f64;
        let mut wh = 0.0;
        for k in 0..n {
            let mid = (k as f64 + 0.5) * step;
            wh += spec.ocp.eval(mid) * step * spec.capacity_ah;
        }
        // Loss discount at the battery's proportional share of the typical
        // load: η = 1 − I·R/OCV at mid-remaining SoC.
        let mid_soc = soc * 0.5;
        let ocv = spec.ocp.eval(mid_soc);
        let r = spec.dcir.eval(mid_soc) + spec.concentration_r_ohm;
        // Load is shared only among cells that still hold charge.
        let usable_cap: f64 = socs
            .iter()
            .zip(specs)
            .filter(|(&s, _)| s > 0.0)
            .map(|(_, sp)| sp.capacity_ah)
            .sum();
        let share_w = typical_power_w * (spec.capacity_ah / usable_cap.max(f64::EPSILON));
        let i = (share_w / ocv).min(spec.max_discharge_a);
        let eta = (1.0 - i * r / ocv).clamp(0.0, 1.0);
        total += wh * eta;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_battery_model::chemistry::Chemistry;

    fn spec(chem: Chemistry, cap: f64) -> BatterySpec {
        BatterySpec::from_chemistry("m", chem, cap)
    }

    #[test]
    fn wear_ratio_definition() {
        let s1 = spec(Chemistry::Type2CoStandard, 2.0); // χ = 800
        let s2 = spec(Chemistry::Type3CoPower, 2.0); // χ = 1800
        let w = wear_ratios(&[80, 180], &[&s1, &s2]);
        assert!((w[0] - 0.1).abs() < 1e-12);
        assert!((w[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ccb_balanced_pack_is_one() {
        assert!((ccb(&[0.1, 0.1]) - 1.0).abs() < 1e-9);
        assert!((ccb(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccb_grows_with_imbalance() {
        let balanced = ccb(&[0.2, 0.2]);
        let skewed = ccb(&[0.4, 0.1]);
        let worse = ccb(&[0.4, 0.05]);
        assert!(skewed > balanced);
        assert!(worse > skewed);
        assert!(ccb(&[0.5, 0.25]) > 1.9);
    }

    #[test]
    fn ccb_at_least_one() {
        assert!(ccb(&[0.3]) >= 1.0 - 1e-12);
        assert!(ccb(&[0.1, 0.9, 0.5]) >= 1.0);
    }

    #[test]
    fn rbl_scales_with_soc() {
        let s = spec(Chemistry::Type2CoStandard, 2.0);
        let full = rbl_wh(&[1.0], &[&s], 2.0);
        let half = rbl_wh(&[0.5], &[&s], 2.0);
        let empty = rbl_wh(&[0.0], &[&s], 2.0);
        assert!(full > 1.9 * half);
        assert_eq!(empty, 0.0);
        // Full 2 Ah Type 2 holds roughly 7.6 Wh.
        assert!(full > 6.0 && full < 8.5, "full = {full}");
    }

    #[test]
    fn rbl_discounts_inefficient_chemistry() {
        let li = spec(Chemistry::Type2CoStandard, 0.2);
        let flex = spec(Chemistry::Type4Bendable, 0.2);
        // Same nominal charge, but the bendable cell's watt-hours are worth
        // less under load.
        let at_low = rbl_wh(&[1.0], &[&flex], 0.05);
        let at_high = rbl_wh(&[1.0], &[&flex], 0.5);
        assert!(at_high < at_low, "loss discount grows with load");
        let li_high = rbl_wh(&[1.0], &[&li], 0.5);
        assert!(li_high > at_high, "Li-ion Wh are worth more at high power");
    }

    #[test]
    fn rbl_additive_over_pack() {
        let a = spec(Chemistry::Type2CoStandard, 2.0);
        let b = spec(Chemistry::Type3CoPower, 2.0);
        let both = rbl_wh(&[1.0, 1.0], &[&a, &b], 4.0);
        let alone_a = rbl_wh(&[1.0], &[&a], 2.0);
        let alone_b = rbl_wh(&[1.0], &[&b], 2.0);
        assert!((both - (alone_a + alone_b)).abs() / both < 0.05);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wear_rejects_mismatched_lengths() {
        let s = spec(Chemistry::Type2CoStandard, 2.0);
        let _ = wear_ratios(&[1, 2], &[&s]);
    }
}
