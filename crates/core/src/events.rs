//! OS events → directive parameters.
//!
//! In the paper's software architecture (Figure 5), "Other OS Components"
//! convey power requirements and user context to the SDB Runtime, which
//! maps them onto the charging/discharging directive parameters. This
//! module defines that event vocabulary and the mapping — the concrete
//! version of the paper's examples ("charging at night", "just before
//! boarding an airplane", calendar-aware assistants from Section 7/8).

use crate::policy::{ChargeDirective, DischargeDirective};
use crate::runtime::SdbRuntime;

/// Events the rest of the OS can report to the SDB Runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OsEvent {
    /// External power attached; the OS expects it to stay for about this
    /// long (overnight = hours; a quick top-up = minutes).
    PluggedIn {
        /// Expected plug duration, seconds.
        expected_s: f64,
    },
    /// External power removed.
    Unplugged,
    /// The user is about to be away from power for a long stretch (the
    /// paper's "just before boarding an airplane"): charge as usefully as
    /// possible, immediately.
    PowerScarcityImminent,
    /// A latency-critical interactive session started (gaming, rendering):
    /// maximize deliverable power and instantaneous battery life.
    PerformanceSession {
        /// Whether the session is active (false = ended).
        active: bool,
    },
    /// The device is idle and expected to stay idle (overnight on the
    /// nightstand): favor longevity everywhere.
    IdlePeriod,
    /// The calendar/assistant predicts a high-power episode within this
    /// many seconds (the watch run, a navigation session).
    HighPowerExpected {
        /// Seconds until the episode.
        in_s: f64,
    },
}

/// Applies an event to the runtime's directive parameters. Returns the
/// `(charge, discharge)` directive values now in force.
pub fn apply_event(runtime: &mut SdbRuntime, event: OsEvent) -> (f64, f64) {
    match event {
        OsEvent::PluggedIn { expected_s } => {
            // Long plug → no hurry → balance wear (CCB). Short plug →
            // useful charge fast (RBL), scaled by how short.
            let urgency = (1.0 - (expected_s / (4.0 * 3600.0))).clamp(0.0, 1.0);
            runtime.set_charge_directive(ChargeDirective::new(urgency));
        }
        OsEvent::Unplugged => {
            // Neutral charging stance for whenever power returns.
            runtime.set_charge_directive(ChargeDirective::new(0.5));
        }
        OsEvent::PowerScarcityImminent => {
            runtime.set_charge_directive(ChargeDirective::new(1.0));
            // Also spend batteries loss-optimally while power lasts.
            runtime.set_discharge_directive(DischargeDirective::new(1.0));
        }
        OsEvent::PerformanceSession { active } => {
            runtime.set_discharge_directive(DischargeDirective::new(if active {
                1.0
            } else {
                0.5
            }));
        }
        OsEvent::IdlePeriod => {
            runtime.set_charge_directive(ChargeDirective::new(0.0));
            runtime.set_discharge_directive(DischargeDirective::new(0.0));
        }
        OsEvent::HighPowerExpected { in_s } => {
            // The closer the episode, the harder we preserve (lower
            // discharge directive → CCB/conservative; pairing with a
            // PreservePolicy is the caller's choice).
            let closeness = (1.0 - in_s / (6.0 * 3600.0)).clamp(0.0, 1.0);
            runtime.set_discharge_directive(DischargeDirective::new(1.0 - closeness));
        }
    }
    (
        runtime.charge_directive().value(),
        runtime.discharge_directive().value(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> SdbRuntime {
        SdbRuntime::new(2)
    }

    #[test]
    fn overnight_plug_is_gentle() {
        let mut r = rt();
        let (charge, _) = apply_event(
            &mut r,
            OsEvent::PluggedIn {
                expected_s: 8.0 * 3600.0,
            },
        );
        assert!(charge < 0.1, "charge = {charge}");
    }

    #[test]
    fn quick_topup_is_urgent() {
        let mut r = rt();
        let (charge, _) = apply_event(
            &mut r,
            OsEvent::PluggedIn {
                expected_s: 15.0 * 60.0,
            },
        );
        assert!(charge > 0.9, "charge = {charge}");
    }

    #[test]
    fn airplane_boarding_maxes_everything() {
        let mut r = rt();
        let (charge, discharge) = apply_event(&mut r, OsEvent::PowerScarcityImminent);
        assert_eq!(charge, 1.0);
        assert_eq!(discharge, 1.0);
    }

    #[test]
    fn performance_session_toggles() {
        let mut r = rt();
        let (_, d_on) = apply_event(&mut r, OsEvent::PerformanceSession { active: true });
        assert_eq!(d_on, 1.0);
        let (_, d_off) = apply_event(&mut r, OsEvent::PerformanceSession { active: false });
        assert_eq!(d_off, 0.5);
    }

    #[test]
    fn idle_period_favors_longevity() {
        let mut r = rt();
        let (charge, discharge) = apply_event(&mut r, OsEvent::IdlePeriod);
        assert_eq!(charge, 0.0);
        assert_eq!(discharge, 0.0);
    }

    #[test]
    fn imminent_high_power_preserves_harder() {
        let mut r = rt();
        let (_, far) = apply_event(&mut r, OsEvent::HighPowerExpected { in_s: 5.0 * 3600.0 });
        let (_, near) = apply_event(&mut r, OsEvent::HighPowerExpected { in_s: 10.0 * 60.0 });
        assert!(near < far, "near {near} vs far {far}");
        assert!(near < 0.1);
    }

    #[test]
    fn unplug_resets_to_neutral() {
        let mut r = rt();
        apply_event(&mut r, OsEvent::PowerScarcityImminent);
        let (charge, _) = apply_event(&mut r, OsEvent::Unplugged);
        assert!((charge - 0.5).abs() < 1e-12);
    }

    /// Every `OsEvent` variant, applied to a fresh runtime (both
    /// directives at the neutral 0.5), against the exact directive pair it
    /// must leave in force.
    #[test]
    fn every_variant_maps_to_expected_directives() {
        let table: Vec<(OsEvent, f64, f64)> = vec![
            // (event, expected charge directive, expected discharge directive)
            (
                OsEvent::PluggedIn {
                    expected_s: 8.0 * 3600.0,
                },
                0.0,
                0.5,
            ),
            (
                OsEvent::PluggedIn {
                    expected_s: 2.0 * 3600.0,
                },
                0.5,
                0.5,
            ),
            (OsEvent::PluggedIn { expected_s: 0.0 }, 1.0, 0.5),
            (OsEvent::Unplugged, 0.5, 0.5),
            (OsEvent::PowerScarcityImminent, 1.0, 1.0),
            (OsEvent::PerformanceSession { active: true }, 0.5, 1.0),
            (OsEvent::PerformanceSession { active: false }, 0.5, 0.5),
            (OsEvent::IdlePeriod, 0.0, 0.0),
            (OsEvent::HighPowerExpected { in_s: 0.0 }, 0.5, 0.0),
            (OsEvent::HighPowerExpected { in_s: 3.0 * 3600.0 }, 0.5, 0.5),
            (OsEvent::HighPowerExpected { in_s: 6.0 * 3600.0 }, 0.5, 1.0),
        ];
        // Compile-time exhaustiveness: adding an OsEvent variant breaks
        // this match, reminding the author to extend the table above.
        for (event, _, _) in &table {
            match event {
                OsEvent::PluggedIn { .. }
                | OsEvent::Unplugged
                | OsEvent::PowerScarcityImminent
                | OsEvent::PerformanceSession { .. }
                | OsEvent::IdlePeriod
                | OsEvent::HighPowerExpected { .. } => {}
            }
        }
        for (event, want_charge, want_discharge) in table {
            let mut r = rt();
            let (charge, discharge) = apply_event(&mut r, event);
            assert!(
                (charge - want_charge).abs() < 1e-12,
                "{event:?}: charge {charge} want {want_charge}"
            );
            assert!(
                (discharge - want_discharge).abs() < 1e-12,
                "{event:?}: discharge {discharge} want {want_discharge}"
            );
            // apply_event's return value mirrors the runtime state.
            assert_eq!(charge, r.charge_directive().value());
            assert_eq!(discharge, r.discharge_directive().value());
        }
    }
}
