//! The SDB Runtime — the paper's primary contribution.
//!
//! "An SDB Runtime encapsulates the SDB microcontroller from the rest of
//! the OS. The SDB Runtime is responsible for all scheduling decisions
//! affecting the charging and discharging of batteries" (Section 3.3).
//!
//! This crate implements:
//!
//! * [`api`] — the four paper APIs as a trait ([`api::SdbApi`]), with
//!   implementations for the emulated microcontroller and its lossy link.
//! * [`metrics`] — the two policy metrics: **Cycle Count Balance** (CCB,
//!   the max/min ratio of per-battery wear `λi = cci/χi`) and **Remaining
//!   Battery Lifetime** (RBL, useful charge).
//! * [`policy`] — the four "instantaneously optimal" algorithms
//!   (CCB-Charge, RBL-Charge, CCB-Discharge, RBL-Discharge), directive-
//!   parameter blending, and the workload-aware preserve policy used in the
//!   watch scenario.
//! * [`runtime`] — the runtime loop: samples gauges, consults policies at
//!   coarse time steps, pushes ratio updates through the API.
//! * [`scheduler`] — the simulation driver coupling runtime + emulator +
//!   workload traces, with energy and depletion bookkeeping and an
//!   observer hook.
//! * [`telemetry`] — per-step time-series capture with CSV export; also
//!   works as an `sdb_observe` event sink on the shared event bus.
//! * [`scenarios`] — the Section 5 applications: fast-charging hybrid packs
//!   (Figure 11), turbo support (Figure 12), the bendable-battery watch
//!   (Figure 13), and 2-in-1 battery management (Figure 14).
//! * [`predict`] — a simple usage predictor that maps learned daily
//!   patterns to directive parameters (the paper's Section 8 assistant
//!   integration, reproduced as an extension).
//! * [`autopilot`] — the closed §8 loop: observe load, learn the daily
//!   pattern, steer the directives hands-free.
//! * [`optimal`] — offline-optimal discharge planning by dynamic
//!   programming: the quantitative version of the paper's "knowledge of
//!   the future workload" observation.
//! * [`lookahead`] — the planner seam: the [`lookahead::LookaheadPolicy`]
//!   trait and [`lookahead::PlanUpdate`] let forecast-driven planners
//!   (the `sdb-policy` crate) steer the runtime through the same
//!   directive vocabulary the greedy policies use.
//! * [`events`] — the OS-event vocabulary (plug/unplug, performance
//!   sessions, predicted episodes) and its mapping onto directive
//!   parameters (Figure 5's "Other OS Components" arrows).
//! * [`hints`] — route/schedule hints for EV-style planning (Section 8).
//!
//! # Quickstart
//!
//! ```
//! use sdb_battery_model::{BatterySpec, Chemistry};
//! use sdb_core::policy::{DischargeDirective, PolicyInput};
//! use sdb_core::runtime::SdbRuntime;
//! use sdb_core::scheduler::{run_trace, SimOptions};
//! use sdb_emulator::PackBuilder;
//! use sdb_workloads::Trace;
//!
//! // A hybrid pack: one high-energy cell, one high-power cell.
//! let mut micro = PackBuilder::new()
//!     .battery(BatterySpec::from_chemistry("energy", Chemistry::Type2CoStandard, 2.0))
//!     .battery(BatterySpec::from_chemistry("power", Chemistry::Type3CoPower, 2.0))
//!     .build();
//! let mut runtime = SdbRuntime::new(2);
//! runtime.set_discharge_directive(DischargeDirective::new(0.8));
//!
//! // Run a one-hour 4 W workload.
//! let result = run_trace(
//!     &mut micro,
//!     &mut runtime,
//!     &Trace::constant(4.0, 3600.0),
//!     &SimOptions::default(),
//! );
//! assert!(result.unmet_j < 1e-6);
//! let _ = PolicyInput::from_micro(&micro);
//! ```

pub mod api;
pub mod autopilot;
pub mod error;
pub mod events;
pub mod hints;
pub mod lookahead;
pub mod metrics;
pub mod optimal;
pub mod policy;
pub mod predict;
pub mod runtime;
pub mod scenarios;
pub mod scheduler;
pub mod telemetry;

pub use api::SdbApi;
pub use autopilot::{Autopilot, AutopilotConfig};
pub use error::SdbError;
pub use events::{apply_event, OsEvent};
pub use lookahead::{LookaheadPolicy, PlanUpdate};
pub use metrics::{ccb, rbl_wh, wear_ratios};
pub use policy::{ChargeDirective, DischargeDirective, PolicyInput, PolicyScratch, PreservePolicy};
pub use predict::UsagePredictor;
pub use runtime::{ResilienceConfig, SdbRuntime};
pub use scheduler::{
    run_trace, run_trace_linked, run_trace_planned, run_trace_prepared, LinkedSimOptions,
    PreparedResult, SimOptions, SimResult,
};

/// Compile-time guarantee that the whole simulation stack can be moved
/// across threads. The sdb-fleet engine runs one `(Microcontroller,
/// SdbRuntime)` pair per device on scoped worker threads; if any of these
/// types ever grows a non-`Send` member (an `Rc`, a raw pointer, a
/// thread-local handle), this module stops the build right here rather
/// than erroring deep inside the fleet crate.
mod send_assertions {
    const fn assert_send<T: Send>() {}
    const _: () = assert_send::<crate::runtime::SdbRuntime>();
    const _: () = assert_send::<crate::scheduler::SimResult>();
    const _: () = assert_send::<crate::scheduler::SimOptions>();
    const _: () = assert_send::<crate::policy::PolicyInput>();
    const _: () = assert_send::<sdb_emulator::micro::Microcontroller>();
    const _: () = assert_send::<sdb_workloads::Trace>();
}
