//! Simulation driver: runtime + emulator + workload traces.
//!
//! This is the equivalent of the paper's emulator harness (Section 4.3):
//! measured power traces are fed into the battery emulation while the SDB
//! Runtime adjusts ratios, and the driver books energy, losses, and
//! depletion times for the Section 5 analyses.

use crate::lookahead::LookaheadPolicy;
use crate::policy::PolicyInput;
use crate::runtime::SdbRuntime;
use sdb_emulator::link::{Command, Link};
use sdb_emulator::micro::Microcontroller;
use sdb_workloads::traces::{Trace, TracePoint};

/// Options for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Maximum simulation step, seconds.
    pub max_dt_s: f64,
    /// Stop as soon as load goes unserved.
    pub stop_on_brownout: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            max_dt_s: 60.0,
            stop_on_brownout: false,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Wall-clock simulated, seconds.
    pub simulated_s: f64,
    /// Energy delivered to the load, joules.
    pub supplied_j: f64,
    /// Load energy that went unserved, joules.
    pub unmet_j: f64,
    /// Circuit losses, joules.
    pub circuit_loss_j: f64,
    /// Cell resistive heat, joules.
    pub cell_heat_j: f64,
    /// External energy consumed, joules.
    pub external_j: f64,
    /// Time of first unserved load, if any, seconds.
    pub first_brownout_s: Option<f64>,
    /// Per-battery time of first emptiness, seconds.
    pub battery_empty_s: Vec<Option<f64>>,
    /// Per-hour total losses (circuit + cell heat), joules.
    pub hourly_loss_j: Vec<f64>,
    /// Per-hour load energy, joules.
    pub hourly_load_j: Vec<f64>,
    /// Final per-battery SoC.
    pub final_soc: Vec<f64>,
}

impl SimResult {
    /// Total losses, joules.
    #[must_use]
    pub fn total_loss_j(&self) -> f64 {
        self.circuit_loss_j + self.cell_heat_j
    }

    /// Effective battery life: time until the first brownout, or the full
    /// simulated span if the load was always served, seconds.
    #[must_use]
    pub fn battery_life_s(&self) -> f64 {
        self.first_brownout_s.unwrap_or(self.simulated_s)
    }
}

/// Runs `trace` against the pack, letting `runtime` steer the ratios.
#[must_use]
pub fn run_trace(
    micro: &mut Microcontroller,
    runtime: &mut SdbRuntime,
    trace: &Trace,
    opts: &SimOptions,
) -> SimResult {
    run_trace_observed(micro, runtime, trace, opts, |_, _| {})
}

/// As [`run_trace`], additionally invoking `observer` after every step
/// with the elapsed time and the step report (telemetry capture, live
/// plotting, custom bookkeeping).
pub fn run_trace_observed<F>(
    micro: &mut Microcontroller,
    runtime: &mut SdbRuntime,
    trace: &Trace,
    opts: &SimOptions,
    observer: F,
) -> SimResult
where
    F: FnMut(f64, &sdb_emulator::micro::StepReport),
{
    run_trace_inner(micro, runtime, trace, opts, None, observer)
}

/// As [`run_trace`], with a [`LookaheadPolicy`] in the loop: before every
/// trace point the policy may commit a [`crate::lookahead::PlanUpdate`]
/// (applied via [`SdbRuntime::commit_plan`], which forces the runtime to
/// re-evaluate immediately), and after every step the realized load is
/// fed back through [`LookaheadPolicy::observe_step`]. With a policy that
/// never plans this is byte-identical to [`run_trace`].
#[must_use]
pub fn run_trace_planned(
    micro: &mut Microcontroller,
    runtime: &mut SdbRuntime,
    trace: &Trace,
    opts: &SimOptions,
    policy: &mut dyn LookaheadPolicy,
) -> SimResult {
    run_trace_inner(micro, runtime, trace, opts, Some(policy), |_, _| {})
}

/// Shared driver body: the greedy path (`policy == None`) executes exactly
/// the instruction sequence the pre-planner driver did, preserving
/// bit-identical results for every existing caller.
fn run_trace_inner<F>(
    micro: &mut Microcontroller,
    runtime: &mut SdbRuntime,
    trace: &Trace,
    opts: &SimOptions,
    mut policy: Option<&mut dyn LookaheadPolicy>,
    mut observer: F,
) -> SimResult
where
    F: FnMut(f64, &sdb_emulator::micro::StepReport),
{
    let n = micro.battery_count();
    let start = micro.time_s();
    let (d0, cl0, ch0, u0, e0) = micro.energy_totals_j();
    // Clone of the runtime's observer handle for span timing (shares the
    // same registry; cheap `Option<Arc>` clone).
    let obs = runtime.observer().clone();

    let mut first_brownout = None;
    let mut battery_empty: Vec<Option<f64>> = vec![None; n];
    let mut hourly_loss = Vec::new();
    let mut hourly_load = Vec::new();
    let mut elapsed = 0.0f64;

    let resampled = trace.resampled(opts.max_dt_s);
    'outer: for p in resampled.points() {
        let _span = obs.span(sdb_observe::SpanName::TraceStep);
        // The scheduler step is the profiler's sampling gate: it advances
        // the per-device tick, and the plan/tick sub-phases plus the
        // nested micro step inherit its hot/cold decision.
        let _prof = sdb_prof::step(sdb_prof::Phase::TraceStep);
        let input = PolicyInput::from_micro(micro)
            .with_load(p.load_w)
            .with_external(p.external_w);
        if let Some(policy) = policy.as_deref_mut() {
            let _prof = sdb_prof::sub(sdb_prof::Phase::PolicyPlan);
            if let Some(plan) = policy.plan(elapsed, micro, &input) {
                runtime.commit_plan(&plan);
            }
        }
        {
            // Runtime failures (hardware rejection) are fatal in
            // simulation.
            let _prof = sdb_prof::sub(sdb_prof::Phase::RuntimeTick);
            runtime
                .tick(micro, &input, p.dur_s)
                .expect("runtime push rejected by emulated hardware");
        }
        let report = micro.step(p.load_w, p.external_w, p.dur_s);
        if let Some(policy) = policy.as_deref_mut() {
            policy.observe_step(elapsed + p.dur_s, p.dur_s, p.load_w);
        }

        // Apportion the step's energy across hour buckets it straddles.
        let loss_w = report.circuit_loss_w + report.cell_heat_w;
        let mut t = elapsed;
        let mut remaining = p.dur_s;
        while remaining > 1e-9 {
            let hour = (t / 3600.0) as usize;
            let take = remaining.min((hour + 1) as f64 * 3600.0 - t);
            if hourly_loss.len() <= hour {
                hourly_loss.resize(hour + 1, 0.0);
                hourly_load.resize(hour + 1, 0.0);
            }
            hourly_loss[hour] += loss_w * take;
            hourly_load[hour] += report.load_w * take;
            t += take;
            remaining -= take;
        }

        elapsed += p.dur_s;
        observer(elapsed, &report);
        for (i, cell) in micro.cells().iter().enumerate() {
            if battery_empty[i].is_none() && cell.is_empty() {
                battery_empty[i] = Some(elapsed);
            }
        }
        if report.unmet_w > 1e-9 && first_brownout.is_none() {
            first_brownout = Some(elapsed);
            if opts.stop_on_brownout {
                break 'outer;
            }
        }
    }

    let (d1, cl1, ch1, u1, e1) = micro.energy_totals_j();
    SimResult {
        simulated_s: micro.time_s() - start,
        supplied_j: d1 - d0,
        unmet_j: u1 - u0,
        circuit_loss_j: cl1 - cl0,
        cell_heat_j: ch1 - ch0,
        external_j: e1 - e0,
        first_brownout_s: first_brownout,
        battery_empty_s: battery_empty,
        hourly_loss_j: hourly_loss,
        hourly_load_j: hourly_load,
        final_soc: micro.cells().iter().map(|c| c.soc()).collect(),
    }
}

/// The scalar subset of [`SimResult`] that rollout scoring consumes —
/// `Copy`, so [`run_trace_prepared`] returns without heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PreparedResult {
    /// Wall-clock simulated, seconds.
    pub simulated_s: f64,
    /// Energy delivered to the load, joules.
    pub supplied_j: f64,
    /// Load energy that went unserved, joules.
    pub unmet_j: f64,
    /// Circuit losses, joules.
    pub circuit_loss_j: f64,
    /// Cell resistive heat, joules.
    pub cell_heat_j: f64,
    /// External energy consumed, joules.
    pub external_j: f64,
    /// Time of first unserved load, if any, seconds.
    pub first_brownout_s: Option<f64>,
}

impl PreparedResult {
    /// Total losses, joules.
    #[must_use]
    pub fn total_loss_j(&self) -> f64 {
        self.circuit_loss_j + self.cell_heat_j
    }

    /// As [`SimResult::battery_life_s`].
    #[must_use]
    pub fn battery_life_s(&self) -> f64 {
        self.first_brownout_s.unwrap_or(self.simulated_s)
    }
}

/// The allocation-free rollout driver: runs pre-resampled `points`
/// against the pack, reusing the caller's [`PolicyInput`] buffer.
///
/// Planner rollouts call this thousands of times per plan cycle; it
/// executes the same `tick → step` instruction sequence as [`run_trace`]
/// (so scores are bit-identical to a [`run_trace`] rollout over the same
/// resampled points) but skips the per-call trace resample and all
/// per-run bookkeeping vectors. The caller resamples once with
/// `trace.resampled(opts.max_dt_s)` and reuses the points across
/// candidates.
///
/// # Panics
///
/// Panics if the emulated hardware rejects a runtime push (fatal in
/// simulation, as in [`run_trace`]).
pub fn run_trace_prepared(
    micro: &mut Microcontroller,
    runtime: &mut SdbRuntime,
    points: &[TracePoint],
    opts: &SimOptions,
    input: &mut PolicyInput,
) -> PreparedResult {
    let start = micro.time_s();
    let (d0, cl0, ch0, u0, e0) = micro.energy_totals_j();
    let mut first_brownout = None;
    let mut elapsed = 0.0f64;
    for p in points {
        let _prof = sdb_prof::step(sdb_prof::Phase::TraceStep);
        input.refill_from_micro(micro);
        input.load_w = p.load_w;
        input.external_w = p.external_w;
        {
            let _prof = sdb_prof::sub(sdb_prof::Phase::RuntimeTick);
            runtime
                .tick(micro, input, p.dur_s)
                .expect("runtime push rejected by emulated hardware");
        }
        let report = micro.step(p.load_w, p.external_w, p.dur_s);
        elapsed += p.dur_s;
        if report.unmet_w > 1e-9 && first_brownout.is_none() {
            first_brownout = Some(elapsed);
            if opts.stop_on_brownout {
                break;
            }
        }
    }
    let (d1, cl1, ch1, u1, e1) = micro.energy_totals_j();
    PreparedResult {
        simulated_s: micro.time_s() - start,
        supplied_j: d1 - d0,
        unmet_j: u1 - u0,
        circuit_loss_j: cl1 - cl0,
        cell_heat_j: ch1 - ch0,
        external_j: e1 - e0,
        first_brownout_s: first_brownout,
    }
}

/// Options for a linked (lossy-transport) simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkedSimOptions {
    /// The underlying simulation options.
    pub sim: SimOptions,
    /// Period of the status heartbeat (`QueryBatteryStatus`) the driver
    /// sends over the link — the responses feed the runtime's watchdog and
    /// stuck-gauge detector, seconds.
    pub status_period_s: f64,
}

impl Default for LinkedSimOptions {
    fn default() -> Self {
        Self {
            sim: SimOptions::default(),
            status_period_s: 30.0,
        }
    }
}

/// As [`run_trace`], but driving the pack through the lossy [`Link`]
/// instead of touching the firmware directly: commands can be dropped,
/// delayed, or duplicated, responses arrive asynchronously and are fed
/// back into the runtime's graceful-degradation layer
/// ([`SdbRuntime::observe_responses`] / [`SdbRuntime::supervise`]).
#[must_use]
pub fn run_trace_linked(
    link: &mut Link,
    runtime: &mut SdbRuntime,
    trace: &Trace,
    opts: &LinkedSimOptions,
) -> SimResult {
    run_trace_linked_with(link, runtime, trace, opts, |_, _| {}, |_, _, _| {})
}

/// As [`run_trace_linked`], with two hooks: `pre_step` runs before each
/// point (fault-plan application gets mutable link access), `on_step`
/// after it with ground-truth link access (telemetry capture, invariant
/// checking over the step report).
pub fn run_trace_linked_with<P, F>(
    link: &mut Link,
    runtime: &mut SdbRuntime,
    trace: &Trace,
    opts: &LinkedSimOptions,
    pre_step: P,
    on_step: F,
) -> SimResult
where
    P: FnMut(f64, &mut Link),
    F: FnMut(f64, &Link, &sdb_emulator::micro::StepReport),
{
    run_trace_linked_inner(link, runtime, trace, opts, None, pre_step, on_step)
}

/// As [`run_trace_linked_with`], with a [`LookaheadPolicy`] in the loop —
/// the linked counterpart of [`run_trace_planned`], so planner-steered
/// runtimes can be exercised under lossy transport and fault injection
/// (planner-aware chaos). Before every point the policy may commit a plan
/// (committed host-side via [`SdbRuntime::commit_plan`]; the resulting
/// directive still travels over the lossy link like any other push), and
/// after every step the realized load is fed back through
/// [`LookaheadPolicy::observe_step`]. With `policy == None` semantics this
/// driver is [`run_trace_linked_with`]: the no-policy instruction sequence
/// is preserved bit-for-bit.
pub fn run_trace_linked_planned_with<P, F>(
    link: &mut Link,
    runtime: &mut SdbRuntime,
    trace: &Trace,
    opts: &LinkedSimOptions,
    policy: &mut dyn LookaheadPolicy,
    pre_step: P,
    on_step: F,
) -> SimResult
where
    P: FnMut(f64, &mut Link),
    F: FnMut(f64, &Link, &sdb_emulator::micro::StepReport),
{
    run_trace_linked_inner(link, runtime, trace, opts, Some(policy), pre_step, on_step)
}

/// Shared linked-driver body. With `policy == None` this executes exactly
/// the instruction sequence the pre-planner linked driver did (the policy
/// input is a pure read of the micro, so hoisting its construction above
/// the response drain does not change its value), preserving bit-identical
/// results for every existing caller.
fn run_trace_linked_inner<P, F>(
    link: &mut Link,
    runtime: &mut SdbRuntime,
    trace: &Trace,
    opts: &LinkedSimOptions,
    mut policy: Option<&mut dyn LookaheadPolicy>,
    mut pre_step: P,
    mut on_step: F,
) -> SimResult
where
    P: FnMut(f64, &mut Link),
    F: FnMut(f64, &Link, &sdb_emulator::micro::StepReport),
{
    let n = link.micro().battery_count();
    let start = link.micro().time_s();
    let (d0, cl0, ch0, u0, e0) = link.micro().energy_totals_j();
    let obs = runtime.observer().clone();

    let mut first_brownout = None;
    let mut battery_empty: Vec<Option<f64>> = vec![None; n];
    let mut hourly_loss = Vec::new();
    let mut hourly_load = Vec::new();
    let mut elapsed = 0.0f64;
    // Force a status heartbeat on the very first point.
    let mut since_status_s = f64::INFINITY;

    let resampled = trace.resampled(opts.sim.max_dt_s);
    'outer: for p in resampled.points() {
        let _span = obs.span(sdb_observe::SpanName::TraceStep);
        let _prof = sdb_prof::step(sdb_prof::Phase::TraceStep);
        pre_step(elapsed, link);
        let input = PolicyInput::from_micro(link.micro())
            .with_load(p.load_w)
            .with_external(p.external_w);
        if let Some(policy) = policy.as_deref_mut() {
            let _prof = sdb_prof::sub(sdb_prof::Phase::PolicyPlan);
            if let Some(plan) = policy.plan(elapsed, link.micro(), &input) {
                runtime.commit_plan(&plan);
            }
        }
        {
            // Link traffic: response drain, runtime tick + supervision
            // over the lossy transport, and the status heartbeat.
            let _prof = sdb_prof::sub(sdb_prof::Phase::LinkStep);
            runtime.observe_responses(&link.take_responses());
            runtime
                .tick(link, &input, p.dur_s)
                .expect("link send is local and infallible");
            runtime
                .supervise(link, p.dur_s)
                .expect("link send is local and infallible");
            since_status_s += p.dur_s;
            if since_status_s >= opts.status_period_s {
                since_status_s = 0.0;
                link.send(Command::QueryBatteryStatus);
                runtime.note_command_sent();
            }
        }
        let report = link.step(p.load_w, p.external_w, p.dur_s);
        if let Some(policy) = policy.as_deref_mut() {
            policy.observe_step(elapsed + p.dur_s, p.dur_s, p.load_w);
        }

        let loss_w = report.circuit_loss_w + report.cell_heat_w;
        let mut t = elapsed;
        let mut remaining = p.dur_s;
        while remaining > 1e-9 {
            let hour = (t / 3600.0) as usize;
            let take = remaining.min((hour + 1) as f64 * 3600.0 - t);
            if hourly_loss.len() <= hour {
                hourly_loss.resize(hour + 1, 0.0);
                hourly_load.resize(hour + 1, 0.0);
            }
            hourly_loss[hour] += loss_w * take;
            hourly_load[hour] += report.load_w * take;
            t += take;
            remaining -= take;
        }

        elapsed += p.dur_s;
        on_step(elapsed, &*link, &report);
        for (i, cell) in link.micro().cells().iter().enumerate() {
            if battery_empty[i].is_none() && cell.is_empty() {
                battery_empty[i] = Some(elapsed);
            }
        }
        if report.unmet_w > 1e-9 && first_brownout.is_none() {
            first_brownout = Some(elapsed);
            if opts.sim.stop_on_brownout {
                break 'outer;
            }
        }
    }
    runtime.observe_responses(&link.take_responses());

    let (d1, cl1, ch1, u1, e1) = link.micro().energy_totals_j();
    SimResult {
        simulated_s: link.micro().time_s() - start,
        supplied_j: d1 - d0,
        unmet_j: u1 - u0,
        circuit_loss_j: cl1 - cl0,
        cell_heat_j: ch1 - ch0,
        external_j: e1 - e0,
        first_brownout_s: first_brownout,
        battery_empty_s: battery_empty,
        hourly_loss_j: hourly_loss,
        hourly_load_j: hourly_load,
        final_soc: link.micro().cells().iter().map(|c| c.soc()).collect(),
    }
}

/// Charges the pack from `external_w` at idle until the pack's total
/// stored charge reaches each fraction in `targets` (of total rated
/// capacity), or `max_s` elapses. Returns the time each target was reached.
///
/// # Panics
///
/// Panics if `targets` is not sorted ascending.
#[must_use]
pub fn run_charge_session(
    micro: &mut Microcontroller,
    runtime: &mut SdbRuntime,
    external_w: f64,
    targets: &[f64],
    max_s: f64,
    dt_s: f64,
) -> Vec<Option<f64>> {
    assert!(
        targets.windows(2).all(|w| w[0] <= w[1]),
        "targets must be ascending"
    );
    let total_cap_ah: f64 = micro.cells().iter().map(|c| c.spec().capacity_ah).sum();
    let mut reached: Vec<Option<f64>> = vec![None; targets.len()];
    let mut elapsed = 0.0;
    while elapsed < max_s {
        let input = PolicyInput::from_micro(micro).with_external(external_w);
        runtime
            .tick(micro, &input, dt_s)
            .expect("runtime push rejected by emulated hardware");
        micro.step(0.0, external_w, dt_s);
        elapsed += dt_s;
        let stored_ah: f64 = micro
            .cells()
            .iter()
            .map(|c| c.soc() * c.spec().capacity_ah)
            .sum();
        let frac = stored_ah / total_cap_ah;
        for (i, &t) in targets.iter().enumerate() {
            if reached[i].is_none() && frac >= t {
                reached[i] = Some(elapsed);
            }
        }
        if reached.last().is_some_and(Option::is_some) {
            break;
        }
    }
    reached
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DischargeDirective;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_emulator::pack::PackBuilder;
    use sdb_emulator::profile::ProfileKind;

    fn pack(soc: f64) -> Microcontroller {
        PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 2.0),
                soc,
                ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("b", Chemistry::Type3CoPower, 2.0),
                soc,
                ProfileKind::Fast,
            )
            .build()
    }

    #[test]
    fn constant_load_served() {
        let mut m = pack(1.0);
        let mut rt = SdbRuntime::new(2);
        let result = run_trace(
            &mut m,
            &mut rt,
            &Trace::constant(4.0, 3600.0),
            &SimOptions::default(),
        );
        assert!((result.simulated_s - 3600.0).abs() < 1e-6);
        assert!(result.unmet_j < 1e-6);
        assert!((result.supplied_j - 4.0 * 3600.0).abs() / (4.0 * 3600.0) < 0.01);
        assert!(result.first_brownout_s.is_none());
        assert_eq!(result.hourly_load_j.len(), 1);
    }

    #[test]
    fn depletion_detected() {
        // Two 2 Ah cells ≈ 15 Wh total; a 20 W load kills them in ~40 min.
        let mut m = pack(1.0);
        let mut rt = SdbRuntime::new(2);
        rt.set_discharge_directive(DischargeDirective::new(1.0));
        let result = run_trace(
            &mut m,
            &mut rt,
            &Trace::constant(20.0, 4.0 * 3600.0),
            &SimOptions::default(),
        );
        let life = result.battery_life_s();
        assert!(result.first_brownout_s.is_some());
        assert!(life > 30.0 * 60.0 && life < 80.0 * 60.0, "life = {life}");
        // Brownout occurs when the pack can no longer *supply the power*,
        // which can precede exact coulomb-emptiness; both cells must be
        // nearly drained though.
        assert!(
            result.final_soc.iter().all(|&s| s < 0.10),
            "{:?}",
            result.final_soc
        );
        assert!(result.unmet_j > 0.0);
    }

    #[test]
    fn stop_on_brownout_truncates() {
        let mut m = pack(0.05);
        let mut rt = SdbRuntime::new(2);
        let result = run_trace(
            &mut m,
            &mut rt,
            &Trace::constant(10.0, 3600.0),
            &SimOptions {
                stop_on_brownout: true,
                ..SimOptions::default()
            },
        );
        assert!(result.simulated_s < 3600.0);
        assert!(result.first_brownout_s.is_some());
    }

    #[test]
    fn hourly_bookkeeping_sums_to_totals() {
        let mut m = pack(1.0);
        let mut rt = SdbRuntime::new(2);
        let result = run_trace(
            &mut m,
            &mut rt,
            &Trace::constant(5.0, 2.5 * 3600.0),
            &SimOptions::default(),
        );
        assert_eq!(result.hourly_load_j.len(), 3);
        let hourly_sum: f64 = result.hourly_loss_j.iter().sum();
        assert!((hourly_sum - result.total_loss_j()).abs() / result.total_loss_j() < 0.01);
    }

    #[test]
    fn prepared_matches_run_trace_bit_exactly() {
        let trace = Trace::constant(6.0, 2.0 * 3600.0);
        let opts = SimOptions {
            stop_on_brownout: true,
            ..SimOptions::default()
        };
        let mut m1 = pack(0.6);
        let mut rt1 = SdbRuntime::new(2);
        let full = run_trace(&mut m1, &mut rt1, &trace, &opts);

        let mut m2 = pack(0.6);
        let mut rt2 = SdbRuntime::new(2);
        let resampled = trace.resampled(opts.max_dt_s);
        let mut input = PolicyInput::from_micro(&m2);
        let lean = run_trace_prepared(&mut m2, &mut rt2, resampled.points(), &opts, &mut input);

        assert_eq!(full.simulated_s.to_bits(), lean.simulated_s.to_bits());
        assert_eq!(full.supplied_j.to_bits(), lean.supplied_j.to_bits());
        assert_eq!(full.unmet_j.to_bits(), lean.unmet_j.to_bits());
        assert_eq!(full.circuit_loss_j.to_bits(), lean.circuit_loss_j.to_bits());
        assert_eq!(full.cell_heat_j.to_bits(), lean.cell_heat_j.to_bits());
        assert_eq!(full.first_brownout_s, lean.first_brownout_s);
        // The packs themselves evolved identically.
        assert_eq!(
            m1.cells()
                .iter()
                .map(|c| c.soc().to_bits())
                .collect::<Vec<_>>(),
            m2.cells()
                .iter()
                .map(|c| c.soc().to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn linked_ideal_matches_direct() {
        let mut m = pack(1.0);
        let mut rt = SdbRuntime::new(2);
        let trace = Trace::constant(4.0, 3600.0);
        let direct = run_trace(&mut m, &mut rt, &trace, &SimOptions::default());

        let mut link = Link::ideal(pack(1.0));
        let mut rt2 = SdbRuntime::new(2);
        let linked = run_trace_linked(&mut link, &mut rt2, &trace, &LinkedSimOptions::default());
        // A perfect zero-latency link is physically equivalent to driving
        // the firmware directly.
        assert!((direct.supplied_j - linked.supplied_j).abs() < 1e-9);
        assert!((direct.total_loss_j() - linked.total_loss_j()).abs() < 1e-9);
        assert_eq!(direct.final_soc, linked.final_soc);
    }

    #[test]
    fn linked_survives_lossy_link() {
        use crate::runtime::ResilienceConfig;
        let mut link = Link::ideal(pack(1.0));
        link.seed_faults(11);
        link.set_fault_drop_per_mille(300);
        let mut rt = SdbRuntime::new(2);
        rt.enable_resilience(ResilienceConfig::default());
        let result = run_trace_linked(
            &mut link,
            &mut rt,
            &Trace::constant(4.0, 3600.0),
            &LinkedSimOptions::default(),
        );
        assert!((result.simulated_s - 3600.0).abs() < 1e-6);
        assert!(
            result.unmet_j < 1e-6,
            "load went unserved: {}",
            result.unmet_j
        );
        assert!(link.stats().dropped > 0);
    }

    #[test]
    fn linked_planned_with_inert_policy_matches_plain_linked() {
        use crate::lookahead::{LookaheadPolicy, PlanUpdate};
        struct Never;
        impl LookaheadPolicy for Never {
            fn plan(
                &mut self,
                _t_s: f64,
                _micro: &Microcontroller,
                _input: &crate::policy::PolicyInput,
            ) -> Option<PlanUpdate> {
                None
            }
            fn observe_step(&mut self, _t_s: f64, _dt_s: f64, _load_w: f64) {}
        }
        let trace = Trace::constant(4.0, 3600.0);
        let mut link = Link::ideal(pack(1.0));
        let mut rt = SdbRuntime::new(2);
        let plain = run_trace_linked(&mut link, &mut rt, &trace, &LinkedSimOptions::default());

        let mut link2 = Link::ideal(pack(1.0));
        let mut rt2 = SdbRuntime::new(2);
        let mut policy = Never;
        let planned = run_trace_linked_planned_with(
            &mut link2,
            &mut rt2,
            &trace,
            &LinkedSimOptions::default(),
            &mut policy,
            |_, _| {},
            |_, _, _| {},
        );
        // A policy that never plans leaves the linked instruction sequence
        // untouched: bit-identical results.
        assert_eq!(plain, planned);
    }

    #[test]
    fn charge_session_reaches_targets_in_order() {
        let mut m = pack(0.0);
        let mut rt = SdbRuntime::new(2);
        rt.set_update_period(30.0);
        let times = run_charge_session(&mut m, &mut rt, 30.0, &[0.2, 0.5, 0.8], 8.0 * 3600.0, 30.0);
        assert!(times.iter().all(Option::is_some), "{times:?}");
        assert!(times[0].unwrap() < times[1].unwrap());
        assert!(times[1].unwrap() < times[2].unwrap());
    }

    #[test]
    fn charge_session_times_out_gracefully() {
        let mut m = pack(0.0);
        let mut rt = SdbRuntime::new(2);
        // 1 W external cannot reach 80 % in one simulated hour.
        let times = run_charge_session(&mut m, &mut rt, 1.0, &[0.8], 3600.0, 60.0);
        assert_eq!(times, vec![None]);
    }
}
