//! Time-series telemetry capture for simulation runs.
//!
//! The paper's devices are "instrumented to obtain fine grained (100 Hz)
//! power-draw measurements" (Section 4.3); this module is the equivalent
//! instrumentation for the emulation: a [`Telemetry`] recorder captures
//! per-step rows — power, losses, per-battery SoC — exportable as CSV for
//! plotting. It plugs in two ways: as the observer callback for
//! [`crate::scheduler::run_trace_observed`], or as an
//! [`sdb_observe::EventSink`] on the event bus (it records the
//! [`ObsEvent::StepSample`] events the microcontroller emits and ignores
//! everything else).

use sdb_emulator::micro::StepReport;
use sdb_observe::{EventSink, ObsEvent};
use std::fmt::Write as _;

/// One recorded step.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRow {
    /// Elapsed simulation time, seconds.
    pub t_s: f64,
    /// Requested load, watts.
    pub load_w: f64,
    /// Load served, watts.
    pub supplied_w: f64,
    /// Total losses this step (circuit + cell heat), watts.
    pub loss_w: f64,
    /// Per-battery state of charge after the step.
    pub soc: Vec<f64>,
    /// Per-battery current (positive = discharge), amps.
    pub current_a: Vec<f64>,
}

/// A telemetry recorder with optional down-sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    rows: Vec<TelemetryRow>,
    /// Minimum spacing between recorded rows, seconds (0 = every step).
    min_interval_s: f64,
    last_t_s: f64,
}

impl Telemetry {
    /// Records every step.
    #[must_use]
    pub fn new() -> Self {
        Self::with_interval(0.0)
    }

    /// Records at most one row per `min_interval_s` of simulated time.
    #[must_use]
    pub fn with_interval(min_interval_s: f64) -> Self {
        Self {
            rows: Vec::new(),
            min_interval_s,
            last_t_s: f64::NEG_INFINITY,
        }
    }

    /// A shared recorder ready to attach to an
    /// [`sdb_observe::Observer`] as an event sink: attach a clone with
    /// `observer.add_sink(Box::new(telemetry.clone()))`, keep the original
    /// for reading the rows afterwards.
    #[must_use]
    pub fn shared(min_interval_s: f64) -> std::sync::Arc<std::sync::Mutex<Self>> {
        std::sync::Arc::new(std::sync::Mutex::new(Self::with_interval(min_interval_s)))
    }

    /// The observer callback to hand to
    /// [`crate::scheduler::run_trace_observed`].
    pub fn observe(&mut self, t_s: f64, report: &StepReport) {
        if t_s - self.last_t_s < self.min_interval_s {
            return;
        }
        self.push_row(
            t_s,
            report.load_w,
            report.supplied_w,
            report.circuit_loss_w + report.cell_heat_w,
            report.batteries.iter().map(|b| b.soc).collect(),
            report.batteries.iter().map(|b| b.current_a).collect(),
        );
    }

    fn push_row(
        &mut self,
        t_s: f64,
        load_w: f64,
        supplied_w: f64,
        loss_w: f64,
        soc: Vec<f64>,
        current_a: Vec<f64>,
    ) {
        if t_s - self.last_t_s < self.min_interval_s {
            return;
        }
        self.last_t_s = t_s;
        self.rows.push(TelemetryRow {
            t_s,
            load_w,
            supplied_w,
            loss_w,
            soc,
            current_a,
        });
    }

    /// Recorded rows.
    #[must_use]
    pub fn rows(&self) -> &[TelemetryRow] {
        &self.rows
    }

    /// Exports the series as CSV
    /// (`t_s,load_w,supplied_w,loss_w,soc_0..,i_0..`). Floats are written
    /// with full round-trip precision.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let n = self.rows.first().map_or(0, |r| r.soc.len());
        // Preallocate: ~24 bytes per float field plus separators covers
        // full round-trip precision without reallocating mid-export.
        let fields = 4 + 2 * n;
        let mut out = String::with_capacity(16 + 8 * fields + self.rows.len() * 24 * fields);
        out.push_str("t_s,load_w,supplied_w,loss_w");
        for i in 0..n {
            let _ = write!(out, ",soc_{i}");
        }
        for i in 0..n {
            let _ = write!(out, ",i_{i}");
        }
        out.push('\n');
        for r in &self.rows {
            let _ = write!(
                out,
                "{:?},{:?},{:?},{:?}",
                r.t_s, r.load_w, r.supplied_w, r.loss_w
            );
            for s in &r.soc {
                let _ = write!(out, ",{s:?}");
            }
            for i in &r.current_a {
                let _ = write!(out, ",{i:?}");
            }
            out.push('\n');
        }
        out
    }
}

impl EventSink for Telemetry {
    /// Records [`ObsEvent::StepSample`] events as telemetry rows; all other
    /// events are ignored.
    fn record(&mut self, t_s: f64, event: &ObsEvent) {
        if let ObsEvent::StepSample {
            load_w,
            supplied_w,
            loss_w,
            soc,
            current_a,
        } = event
        {
            self.push_row(
                t_s,
                *load_w,
                *supplied_w,
                *loss_w,
                soc.clone(),
                current_a.clone(),
            );
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::SdbRuntime;
    use crate::scheduler::{run_trace_observed, SimOptions};
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_emulator::pack::PackBuilder;
    use sdb_workloads::traces::Trace;

    fn record(interval_s: f64) -> Telemetry {
        let mut micro = PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .battery(BatterySpec::from_chemistry(
                "b",
                Chemistry::Type3CoPower,
                2.0,
            ))
            .build();
        let mut runtime = SdbRuntime::new(2);
        let mut telemetry = Telemetry::with_interval(interval_s);
        let _ = run_trace_observed(
            &mut micro,
            &mut runtime,
            &Trace::constant(4.0, 1800.0),
            &SimOptions::default(),
            |t, report| telemetry.observe(t, report),
        );
        telemetry
    }

    #[test]
    fn records_every_step_by_default() {
        let t = record(0.0);
        // 1800 s at 60 s steps = 30 rows.
        assert_eq!(t.rows().len(), 30);
        let first = &t.rows()[0];
        assert_eq!(first.soc.len(), 2);
        assert!((first.load_w - 4.0).abs() < 1e-12);
        // SoC declines monotonically under constant discharge.
        for w in t.rows().windows(2) {
            assert!(w[1].soc[0] <= w[0].soc[0] + 1e-12);
        }
    }

    #[test]
    fn downsampling_respects_interval() {
        let t = record(300.0);
        assert!(t.rows().len() <= 7, "{} rows", t.rows().len());
        assert!(t.rows().len() >= 5);
    }

    #[test]
    fn csv_shape() {
        let t = record(0.0);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header, "t_s,load_w,supplied_w,loss_w,soc_0,soc_1,i_0,i_1");
        let cols = header.split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), cols);
        }
    }

    #[test]
    fn empty_recorder_yields_header_only_csv() {
        let t = Telemetry::new();
        assert_eq!(t.to_csv(), "t_s,load_w,supplied_w,loss_w\n");
    }

    #[test]
    fn csv_floats_round_trip() {
        let mut t = Telemetry::new();
        let third = 1.0 / 3.0;
        t.push_row(third, third, third, third, vec![third], vec![third]);
        let csv = t.to_csv();
        let data = csv.lines().nth(1).unwrap();
        for field in data.split(',') {
            let parsed: f64 = field.parse().unwrap();
            assert_eq!(parsed, third, "field {field} lost precision");
        }
    }

    #[test]
    fn telemetry_works_as_event_sink() {
        use sdb_observe::Observer;
        let mut micro = PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .build();
        let obs = Observer::new();
        let telemetry = Telemetry::shared(0.0);
        obs.add_sink(Box::new(telemetry.clone()));
        micro.set_observer(obs);
        for _ in 0..5 {
            micro.step(3.0, 0.0, 60.0);
        }
        let t = telemetry.lock().unwrap();
        assert_eq!(t.rows().len(), 5);
        assert_eq!(t.rows()[0].soc.len(), 1);
        assert!((t.rows()[0].load_w - 3.0).abs() < 1e-12);
        // Non-sample events are ignored.
        let mut solo = Telemetry::new();
        solo.record(
            1.0,
            &ObsEvent::BatteryPresence {
                battery: 0,
                present: false,
            },
        );
        assert!(solo.rows().is_empty());
    }
}
