//! Time-series telemetry capture for simulation runs.
//!
//! The paper's devices are "instrumented to obtain fine grained (100 Hz)
//! power-draw measurements" (Section 4.3); this module is the equivalent
//! instrumentation for the emulation: a [`Telemetry`] recorder plugs into
//! [`crate::scheduler::run_trace_observed`] and captures per-step rows —
//! power, losses, per-battery SoC — exportable as CSV for plotting.

use sdb_emulator::micro::StepReport;

/// One recorded step.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRow {
    /// Elapsed simulation time, seconds.
    pub t_s: f64,
    /// Requested load, watts.
    pub load_w: f64,
    /// Load served, watts.
    pub supplied_w: f64,
    /// Total losses this step (circuit + cell heat), watts.
    pub loss_w: f64,
    /// Per-battery state of charge after the step.
    pub soc: Vec<f64>,
    /// Per-battery current (positive = discharge), amps.
    pub current_a: Vec<f64>,
}

/// A telemetry recorder with optional down-sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    rows: Vec<TelemetryRow>,
    /// Minimum spacing between recorded rows, seconds (0 = every step).
    min_interval_s: f64,
    last_t_s: f64,
}

impl Telemetry {
    /// Records every step.
    #[must_use]
    pub fn new() -> Self {
        Self::with_interval(0.0)
    }

    /// Records at most one row per `min_interval_s` of simulated time.
    #[must_use]
    pub fn with_interval(min_interval_s: f64) -> Self {
        Self {
            rows: Vec::new(),
            min_interval_s,
            last_t_s: f64::NEG_INFINITY,
        }
    }

    /// The observer callback to hand to
    /// [`crate::scheduler::run_trace_observed`].
    pub fn observe(&mut self, t_s: f64, report: &StepReport) {
        if t_s - self.last_t_s < self.min_interval_s {
            return;
        }
        self.last_t_s = t_s;
        self.rows.push(TelemetryRow {
            t_s,
            load_w: report.load_w,
            supplied_w: report.supplied_w,
            loss_w: report.circuit_loss_w + report.cell_heat_w,
            soc: report.batteries.iter().map(|b| b.soc).collect(),
            current_a: report.batteries.iter().map(|b| b.current_a).collect(),
        });
    }

    /// Recorded rows.
    #[must_use]
    pub fn rows(&self) -> &[TelemetryRow] {
        &self.rows
    }

    /// Exports the series as CSV
    /// (`t_s,load_w,supplied_w,loss_w,soc_0..,i_0..`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let n = self.rows.first().map_or(0, |r| r.soc.len());
        let mut out = String::from("t_s,load_w,supplied_w,loss_w");
        for i in 0..n {
            out.push_str(&format!(",soc_{i}"));
        }
        for i in 0..n {
            out.push_str(&format!(",i_{i}"));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{}",
                r.t_s, r.load_w, r.supplied_w, r.loss_w
            ));
            for s in &r.soc {
                out.push_str(&format!(",{s}"));
            }
            for i in &r.current_a {
                out.push_str(&format!(",{i}"));
            }
            out.push('\n');
        }
        out
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::SdbRuntime;
    use crate::scheduler::{run_trace_observed, SimOptions};
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_emulator::pack::PackBuilder;
    use sdb_workloads::traces::Trace;

    fn record(interval_s: f64) -> Telemetry {
        let mut micro = PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .battery(BatterySpec::from_chemistry(
                "b",
                Chemistry::Type3CoPower,
                2.0,
            ))
            .build();
        let mut runtime = SdbRuntime::new(2);
        let mut telemetry = Telemetry::with_interval(interval_s);
        let _ = run_trace_observed(
            &mut micro,
            &mut runtime,
            &Trace::constant(4.0, 1800.0),
            &SimOptions::default(),
            |t, report| telemetry.observe(t, report),
        );
        telemetry
    }

    #[test]
    fn records_every_step_by_default() {
        let t = record(0.0);
        // 1800 s at 60 s steps = 30 rows.
        assert_eq!(t.rows().len(), 30);
        let first = &t.rows()[0];
        assert_eq!(first.soc.len(), 2);
        assert!((first.load_w - 4.0).abs() < 1e-12);
        // SoC declines monotonically under constant discharge.
        for w in t.rows().windows(2) {
            assert!(w[1].soc[0] <= w[0].soc[0] + 1e-12);
        }
    }

    #[test]
    fn downsampling_respects_interval() {
        let t = record(300.0);
        assert!(t.rows().len() <= 7, "{} rows", t.rows().len());
        assert!(t.rows().len() >= 5);
    }

    #[test]
    fn csv_shape() {
        let t = record(0.0);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header, "t_s,load_w,supplied_w,loss_w,soc_0,soc_1,i_0,i_1");
        let cols = header.split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), cols);
        }
    }

    #[test]
    fn empty_recorder_yields_header_only_csv() {
        let t = Telemetry::new();
        assert_eq!(t.to_csv(), "t_s,load_w,supplied_w,loss_w\n");
    }
}
