//! The SDB Runtime loop.
//!
//! "The SDB runtime calculates these power values at coarse granular time
//! steps and updates the ratios" (Section 3.3). The runtime holds the two
//! directive parameters set by the rest of the OS, consults the policies,
//! and pushes ratio changes through the [`crate::api::SdbApi`] only when
//! they changed materially (avoiding needless bus traffic).

use crate::api::SdbApi;
use crate::error::SdbError;
use crate::policy::{
    ChargeDirective, DischargeDirective, PolicyInput, PolicyScratch, PreservePolicy,
};
use sdb_emulator::link::Response;
use sdb_fuel_gauge::gauge::BatteryStatus;
use sdb_observe::{Counter, Gauge, ObsEvent, Observer, SpanName};

/// Configuration of the runtime's graceful-degradation layer
/// ([`SdbRuntime::enable_resilience`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Time to wait for any link response before re-sending the last
    /// pushed ratios, seconds.
    pub ack_timeout_s: f64,
    /// Retries before recovery is left to the watchdog.
    pub max_retries: u32,
    /// Exponential growth factor of the retry backoff.
    pub backoff_factor: f64,
    /// Silent-link time (commands outstanding, no responses) after which
    /// the watchdog engages and falls back to safe uniform ratios, seconds.
    pub watchdog_timeout_s: f64,
    /// Blend weight toward the uniform split applied to policy ratios
    /// while any gauge is flagged degraded (guard-band widening), `[0, 1]`.
    pub guard_widen: f64,
    /// Consecutive bit-identical SoC samples under load before a gauge is
    /// flagged stuck.
    pub stuck_samples: u32,
    /// Minimum reported |current| for stuck detection to apply, amps (a
    /// resting cell's frozen SoC is legitimate).
    pub stuck_current_a: f64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            ack_timeout_s: 10.0,
            max_retries: 3,
            backoff_factor: 2.0,
            watchdog_timeout_s: 120.0,
            guard_widen: 0.5,
            stuck_samples: 5,
            stuck_current_a: 0.05,
        }
    }
}

/// Mutable state of the graceful-degradation layer.
#[derive(Debug, Clone)]
struct ResilienceState {
    cfg: ResilienceConfig,
    /// Commands sent whose responses have not yet been observed.
    outstanding: u64,
    /// Time since the last send (or last response), for retry pacing.
    since_send_s: f64,
    /// Time the link has been silent with commands outstanding.
    silent_s: f64,
    /// Retries already spent on the current silence.
    retries: u32,
    /// Whether the watchdog is currently engaged.
    engaged: bool,
    /// Time since the last uniform fallback push while engaged.
    since_fallback_s: f64,
    /// Per-battery bit pattern of the last reported SoC.
    last_soc_bits: Vec<Option<u64>>,
    /// Per-battery count of consecutive identical SoC reports under load.
    stuck_counts: Vec<u32>,
    /// Per-battery degraded flags.
    degraded: Vec<bool>,
}

impl ResilienceState {
    fn new(cfg: ResilienceConfig) -> Self {
        Self {
            cfg,
            outstanding: 0,
            since_send_s: 0.0,
            silent_s: 0.0,
            retries: 0,
            engaged: false,
            since_fallback_s: 0.0,
            last_soc_bits: Vec::new(),
            stuck_counts: Vec::new(),
            degraded: Vec::new(),
        }
    }
}

/// Metric handles the tick path updates without touching the registry
/// lock (registered once in [`SdbRuntime::set_observer`]).
#[derive(Debug, Clone)]
struct RuntimeMetrics {
    policy_evals: Counter,
    pushes: Counter,
    charge_directive: Gauge,
    discharge_directive: Gauge,
}

/// The SDB Runtime.
#[derive(Debug, Clone)]
pub struct SdbRuntime {
    n: usize,
    charge_directive: ChargeDirective,
    discharge_directive: DischargeDirective,
    /// Optional workload-aware override for discharge (the watch policy).
    preserve: Option<PreservePolicy>,
    /// Seconds between policy re-evaluations.
    update_period_s: f64,
    since_update_s: f64,
    last_discharge: Vec<f64>,
    last_charge: Vec<f64>,
    /// Ratio pushes actually sent to the hardware.
    pushes: u64,
    /// Observability hook (no-op unless an observer is installed).
    observer: Observer,
    /// Cached metric handles (present only when the observer has a
    /// registry).
    metrics: Option<RuntimeMetrics>,
    /// Graceful-degradation layer (absent until
    /// [`SdbRuntime::enable_resilience`]).
    resilience: Option<ResilienceState>,
    /// Reusable policy-evaluation buffers, keeping the tick path
    /// allocation-free (planner rollouts hammer this).
    scratch: PolicyScratch,
}

impl SdbRuntime {
    /// A runtime for an `n`-battery pack with neutral directives and a
    /// 60-second update period.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one battery");
        let mut rt = Self {
            n,
            charge_directive: ChargeDirective::new(0.5),
            discharge_directive: DischargeDirective::new(0.5),
            preserve: None,
            update_period_s: 60.0,
            since_update_s: f64::INFINITY, // force an update on first call
            last_discharge: Vec::new(),
            last_charge: Vec::new(),
            pushes: 0,
            observer: Observer::disabled(),
            metrics: None,
            resilience: None,
            scratch: PolicyScratch::new(),
        };
        rt.set_observer(sdb_observe::global());
        rt
    }

    /// Installs the observability hook. Pass [`Observer::disabled`] to turn
    /// instrumentation off again. New runtimes default to
    /// [`sdb_observe::global`].
    pub fn set_observer(&mut self, observer: Observer) {
        self.metrics = observer.registry().map(|reg| {
            let m = RuntimeMetrics {
                policy_evals: reg.counter("sdb_policy_evals_total", &[]),
                pushes: reg.counter("sdb_runtime_ratio_pushes_total", &[]),
                charge_directive: reg.gauge("sdb_charge_directive", &[]),
                discharge_directive: reg.gauge("sdb_discharge_directive", &[]),
            };
            m.charge_directive.set(self.charge_directive.value());
            m.discharge_directive.set(self.discharge_directive.value());
            m
        });
        self.observer = observer;
    }

    /// The installed observability hook.
    #[must_use]
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Sets the charging directive parameter (0 = longevity, 1 = fast
    /// useful charge).
    pub fn set_charge_directive(&mut self, d: ChargeDirective) {
        self.charge_directive = d;
        if let Some(m) = &self.metrics {
            m.charge_directive.set(d.value());
        }
    }

    /// Sets the discharging directive parameter (0 = longevity, 1 =
    /// maximize instantaneous battery life).
    pub fn set_discharge_directive(&mut self, d: DischargeDirective) {
        self.discharge_directive = d;
        if let Some(m) = &self.metrics {
            m.discharge_directive.set(d.value());
        }
    }

    /// Installs (or clears) the workload-aware preserve policy.
    pub fn set_preserve(&mut self, p: Option<PreservePolicy>) {
        self.preserve = p;
    }

    /// Sets the policy re-evaluation period.
    ///
    /// # Panics
    ///
    /// Panics if `period_s` is not positive.
    pub fn set_update_period(&mut self, period_s: f64) {
        assert!(period_s > 0.0, "period must be positive");
        self.update_period_s = period_s;
    }

    /// The charging directive currently in force.
    #[must_use]
    pub fn charge_directive(&self) -> ChargeDirective {
        self.charge_directive
    }

    /// The discharging directive currently in force.
    #[must_use]
    pub fn discharge_directive(&self) -> DischargeDirective {
        self.discharge_directive
    }

    /// Number of ratio updates pushed to the hardware.
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Forces the next [`SdbRuntime::tick`] to re-evaluate policies and
    /// push fresh ratios regardless of the update-period rate limit (the
    /// same reset the watchdog performs on link recovery). Lookahead
    /// planners call this through [`SdbRuntime::commit_plan`] so a new
    /// plan takes effect immediately instead of waiting out the period.
    pub fn force_policy_refresh(&mut self) {
        self.since_update_s = f64::INFINITY;
        self.last_discharge.clear();
        self.last_charge.clear();
    }

    /// Applies a plan committed by a [`crate::lookahead::LookaheadPolicy`]:
    /// installs the plan's directives, forces an immediate policy refresh,
    /// publishes the forecast error as the `sdb_policy_forecast_mae`
    /// gauge (plus a `sdb_policy_replans_total` counter), and emits a
    /// [`ObsEvent::PlanCommit`] so traces and health rules see the
    /// re-plan.
    pub fn commit_plan(&mut self, plan: &crate::lookahead::PlanUpdate) {
        self.set_discharge_directive(plan.discharge);
        if let Some(c) = plan.charge {
            self.set_charge_directive(c);
        }
        self.force_policy_refresh();
        if let Some(reg) = self.observer.registry() {
            reg.gauge("sdb_policy_forecast_mae", &[])
                .set(plan.forecast_mae_w);
            reg.counter("sdb_policy_replans_total", &[]).inc();
        }
        self.observer.emit(ObsEvent::PlanCommit {
            discharge_directive: plan.discharge.value(),
            horizon_s: plan.horizon_s,
            forecast_mae_w: plan.forecast_mae_w,
        });
    }

    /// Turns on the graceful-degradation layer: command retry with
    /// exponential backoff ([`SdbRuntime::supervise`]), a watchdog that
    /// falls back to safe uniform ratios when the link goes dark, and
    /// stuck-gauge detection that widens the policy guard bands.
    pub fn enable_resilience(&mut self, cfg: ResilienceConfig) {
        let mut st = ResilienceState::new(cfg);
        st.last_soc_bits = vec![None; self.n];
        st.stuck_counts = vec![0; self.n];
        st.degraded = vec![false; self.n];
        self.resilience = Some(st);
    }

    /// Whether the link watchdog is currently engaged (safe uniform
    /// fallback ratios in force).
    #[must_use]
    pub fn watchdog_engaged(&self) -> bool {
        self.resilience.as_ref().is_some_and(|r| r.engaged)
    }

    /// Whether battery `i`'s gauge is currently flagged degraded.
    #[must_use]
    pub fn gauge_degraded(&self, i: usize) -> bool {
        self.resilience
            .as_ref()
            .is_some_and(|r| r.degraded.get(i).copied().unwrap_or(false))
    }

    /// Notes a command sent to the link outside [`SdbRuntime::tick`] (for
    /// example a status heartbeat), so the watchdog expects its response.
    pub fn note_command_sent(&mut self) {
        if let Some(r) = &mut self.resilience {
            r.outstanding += 1;
            r.since_send_s = 0.0;
        }
    }

    /// Feeds link responses back into the degradation layer. Any response
    /// proves the link is alive — retries reset, and an engaged watchdog
    /// disengages (forcing a policy re-push on the next tick). Status rows
    /// additionally feed the stuck-gauge detector.
    pub fn observe_responses(&mut self, responses: &[Response]) {
        if responses.is_empty() || self.resilience.is_none() {
            return;
        }
        for response in responses {
            if let Response::Status(rows) = response {
                self.observe_status(rows);
            }
        }
        let observer = self.observer.clone();
        let res = self.resilience.as_mut().expect("checked above");
        res.outstanding = res.outstanding.saturating_sub(responses.len() as u64);
        res.retries = 0;
        res.since_send_s = 0.0;
        let silent_s = res.silent_s;
        res.silent_s = 0.0;
        if res.engaged {
            res.engaged = false;
            observer.emit(ObsEvent::WatchdogTransition {
                engaged: false,
                silent_s,
            });
            // The fallback ratios are on the wire; force the next tick to
            // re-evaluate policies and push fresh ratios immediately.
            self.force_policy_refresh();
        }
    }

    /// Feeds gauge status rows to the stuck-gauge detector: a SoC estimate
    /// that stays bit-identical across [`ResilienceConfig::stuck_samples`]
    /// consecutive reports while meaningful current flows marks the gauge
    /// degraded; any change in the estimate clears the flag.
    pub fn observe_status(&mut self, rows: &[BatteryStatus]) {
        let Some(res) = &mut self.resilience else {
            return;
        };
        let observer = self.observer.clone();
        for (i, row) in rows.iter().enumerate().take(res.last_soc_bits.len()) {
            let bits = row.soc.to_bits();
            let under_load = row.current_a.abs() >= res.cfg.stuck_current_a;
            if res.last_soc_bits[i] == Some(bits) {
                if under_load {
                    res.stuck_counts[i] = res.stuck_counts[i].saturating_add(1);
                    if res.stuck_counts[i] >= res.cfg.stuck_samples && !res.degraded[i] {
                        res.degraded[i] = true;
                        observer.emit(ObsEvent::GaugeDegraded {
                            battery: i,
                            degraded: true,
                            reason: "stuck-soc",
                        });
                    }
                }
                // A resting cell neither accumulates suspicion nor clears
                // it — a frozen SoC at rest is legitimate.
            } else {
                res.last_soc_bits[i] = Some(bits);
                res.stuck_counts[i] = 0;
                if res.degraded[i] {
                    res.degraded[i] = false;
                    observer.emit(ObsEvent::GaugeDegraded {
                        battery: i,
                        degraded: false,
                        reason: "stuck-soc",
                    });
                }
            }
        }
    }

    /// Advances the degradation layer's clocks and performs recovery
    /// actions: re-sends the last ratios with exponential backoff while the
    /// link is silent, and past
    /// [`ResilienceConfig::watchdog_timeout_s`] engages the watchdog,
    /// pushing safe uniform ratios until a response arrives.
    ///
    /// No-op unless [`SdbRuntime::enable_resilience`] was called.
    ///
    /// # Errors
    ///
    /// Propagates hardware rejections from the API.
    pub fn supervise(&mut self, api: &mut dyn SdbApi, dt_s: f64) -> Result<(), SdbError> {
        let observer = self.observer.clone();
        let Some(res) = &mut self.resilience else {
            return Ok(());
        };
        if res.outstanding == 0 && !res.engaged {
            res.silent_s = 0.0;
            return Ok(());
        }
        res.silent_s += dt_s;
        res.since_send_s += dt_s;
        if res.engaged {
            // Keep re-asserting the safe split in case pushes are lost.
            res.since_fallback_s += dt_s;
            if res.since_fallback_s >= res.cfg.ack_timeout_s {
                res.since_fallback_s = 0.0;
                let uniform = vec![1.0 / self.n as f64; self.n];
                api.discharge(&uniform)?;
                api.charge(&uniform)?;
                res.outstanding += 2;
            }
            return Ok(());
        }
        if res.silent_s >= res.cfg.watchdog_timeout_s {
            res.engaged = true;
            // First fallback push happens immediately.
            res.since_fallback_s = f64::INFINITY;
            observer.emit(ObsEvent::WatchdogTransition {
                engaged: true,
                silent_s: res.silent_s,
            });
            return self.supervise(api, 0.0);
        }
        if res.retries < res.cfg.max_retries {
            let backoff_s = res.cfg.ack_timeout_s * res.cfg.backoff_factor.powi(res.retries as i32);
            if res.since_send_s >= backoff_s {
                res.retries += 1;
                res.since_send_s = 0.0;
                let attempt = res.retries;
                observer.emit(ObsEvent::CommandRetry { attempt, backoff_s });
                let last_discharge = self.last_discharge.clone();
                let last_charge = self.last_charge.clone();
                let res = self.resilience.as_mut().expect("still enabled");
                if !last_discharge.is_empty() {
                    api.discharge(&last_discharge)?;
                    res.outstanding += 1;
                }
                if !last_charge.is_empty() {
                    api.charge(&last_charge)?;
                    res.outstanding += 1;
                }
            }
        }
        Ok(())
    }

    /// Runs one runtime tick: if the update period has elapsed, re-evaluate
    /// policies on `input` and push changed ratios through `api`. Returns
    /// whether anything was pushed.
    ///
    /// Infeasible allocations (all batteries empty / full) are not errors
    /// at this level — the runtime simply leaves the previous ratios in
    /// force, as the hardware must keep operating.
    ///
    /// # Errors
    ///
    /// Propagates hardware rejections from the API.
    pub fn tick(
        &mut self,
        api: &mut dyn SdbApi,
        input: &PolicyInput,
        dt_s: f64,
    ) -> Result<bool, SdbError> {
        self.since_update_s += dt_s;
        if self.since_update_s < self.update_period_s {
            return Ok(false);
        }
        if self.watchdog_engaged() {
            // The watchdog owns the wire: policy pushes are suppressed
            // until a response proves the link is alive again (the ratios
            // re-push immediately on disengagement).
            return Ok(false);
        }
        self.since_update_s = 0.0;
        let _span = self.observer.span(SpanName::PolicyEval);
        if let Some(m) = &self.metrics {
            m.policy_evals.inc();
        }
        // Guard-band widening: while any gauge is degraded its SoC data is
        // suspect, so blend the policy output toward the safe uniform split
        // over the batteries still usable for that direction.
        let widen = self
            .resilience
            .as_ref()
            .and_then(|r| (r.degraded.iter().any(|d| *d)).then_some(r.cfg.guard_widen));
        let mut pushed = false;

        // Both directions evaluate into the reusable scratch buffers and
        // copy into `last_*` on push, so a steady-state tick (and every
        // planner rollout tick) allocates nothing.
        let discharge_ok = match &self.preserve {
            Some(p) => p.ratios_into(input, &mut self.scratch).is_ok(),
            None => self
                .discharge_directive
                .ratios_into(input, &mut self.scratch)
                .is_ok(),
        };
        if discharge_ok {
            if let Some(g) = widen {
                let usable: Vec<bool> = input.batteries.iter().map(|b| !b.empty).collect();
                widen_toward_uniform(self.scratch.ratios_mut(), &usable, g);
            }
            if materially_different(self.scratch.ratios(), &self.last_discharge) {
                api.discharge(self.scratch.ratios())?;
                self.last_discharge.clear();
                self.last_discharge.extend_from_slice(self.scratch.ratios());
                self.pushes += 1;
                if let Some(m) = &self.metrics {
                    m.pushes.inc();
                }
                if let Some(r) = &mut self.resilience {
                    r.outstanding += 1;
                    r.since_send_s = 0.0;
                }
                pushed = true;
            }
        }

        if self
            .charge_directive
            .ratios_into(input, &mut self.scratch)
            .is_ok()
        {
            if let Some(g) = widen {
                let usable: Vec<bool> = input
                    .batteries
                    .iter()
                    .map(|b| !b.full && b.charge_acceptance_a > 0.0)
                    .collect();
                widen_toward_uniform(self.scratch.ratios_mut(), &usable, g);
            }
            if materially_different(self.scratch.ratios(), &self.last_charge) {
                api.charge(self.scratch.ratios())?;
                self.last_charge.clear();
                self.last_charge.extend_from_slice(self.scratch.ratios());
                self.pushes += 1;
                if let Some(m) = &self.metrics {
                    m.pushes.inc();
                }
                if let Some(r) = &mut self.resilience {
                    r.outstanding += 1;
                    r.since_send_s = 0.0;
                }
                pushed = true;
            }
        }
        self.observer.emit(ObsEvent::PolicyEvaluation {
            pushed,
            charge_directive: self.charge_directive.value(),
            discharge_directive: self.discharge_directive.value(),
        });
        Ok(pushed)
    }

    /// Number of batteries this runtime manages.
    #[must_use]
    pub fn battery_count(&self) -> usize {
        self.n
    }

    /// Accounts for `ticks` runtime ticks of `dt_s` that the SoA engine
    /// fast-forwarded past without calling [`SdbRuntime::tick`]: replays
    /// the update-period clock exactly and credits the skipped policy
    /// evaluations to the metrics, keeping counters engine-invariant.
    /// (The quiescence classifier guarantees those evaluations could not
    /// have pushed new ratios.) Returns the number of evaluations
    /// credited.
    pub fn note_fast_forward(&mut self, dt_s: f64, ticks: u64) -> u64 {
        let mut evals = 0u64;
        for _ in 0..ticks {
            self.since_update_s += dt_s;
            if self.since_update_s >= self.update_period_s {
                self.since_update_s = 0.0;
                evals += 1;
            }
        }
        if evals > 0 {
            if let Some(m) = &self.metrics {
                m.policy_evals.add(evals);
            }
        }
        evals
    }
}

/// Blends `ratios` toward the uniform split over `usable` batteries with
/// weight `g`, renormalizing so the result still sums to 1.
fn widen_toward_uniform(ratios: &mut [f64], usable: &[bool], g: f64) {
    let g = g.clamp(0.0, 1.0);
    let n_usable = usable.iter().filter(|u| **u).count();
    let mut sum = 0.0;
    for (i, r) in ratios.iter_mut().enumerate() {
        let uniform = if n_usable > 0 {
            if usable.get(i).copied().unwrap_or(false) {
                1.0 / n_usable as f64
            } else {
                0.0
            }
        } else {
            1.0 / usable.len().max(1) as f64
        };
        *r = (1.0 - g) * *r + g * uniform;
        sum += *r;
    }
    if sum > 0.0 {
        for r in ratios.iter_mut() {
            *r /= sum;
        }
    }
}

/// Ratios differ materially if any component moved by more than one
/// percentage point.
fn materially_different(a: &[f64], b: &[f64]) -> bool {
    if a.len() != b.len() {
        return true;
    }
    a.iter().zip(b).any(|(x, y)| (x - y).abs() > 0.01)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyInput;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_emulator::micro::Microcontroller;
    use sdb_emulator::pack::PackBuilder;

    fn micro() -> Microcontroller {
        PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .battery(BatterySpec::from_chemistry(
                "b",
                Chemistry::Type3CoPower,
                2.0,
            ))
            .build()
    }

    #[test]
    fn first_tick_pushes() {
        let mut m = micro();
        let mut rt = SdbRuntime::new(2);
        let input = PolicyInput::from_micro(&m).with_load(4.0);
        let pushed = rt.tick(&mut m, &input, 1.0).unwrap();
        assert!(pushed);
        assert!(rt.pushes() >= 1);
    }

    #[test]
    fn updates_rate_limited() {
        let mut m = micro();
        let mut rt = SdbRuntime::new(2);
        rt.set_update_period(60.0);
        let input = PolicyInput::from_micro(&m).with_load(4.0);
        rt.tick(&mut m, &input, 1.0).unwrap();
        let pushes_after_first = rt.pushes();
        // 30 seconds of ticks: no re-evaluation.
        for _ in 0..30 {
            assert!(!rt.tick(&mut m, &input, 1.0).unwrap());
        }
        assert_eq!(rt.pushes(), pushes_after_first);
    }

    #[test]
    fn unchanged_ratios_not_repushed() {
        let mut m = micro();
        let mut rt = SdbRuntime::new(2);
        rt.set_update_period(1.0);
        let input = PolicyInput::from_micro(&m).with_load(4.0);
        rt.tick(&mut m, &input, 2.0).unwrap();
        let pushes = rt.pushes();
        // Same input again after the period: ratios identical, no push.
        assert!(!rt.tick(&mut m, &input, 2.0).unwrap());
        assert_eq!(rt.pushes(), pushes);
    }

    #[test]
    fn preserve_policy_overrides_discharge() {
        let mut m = micro();
        let mut rt = SdbRuntime::new(2);
        rt.set_preserve(Some(crate::policy::PreservePolicy::new(0, 1, 1.0)));
        let input = PolicyInput::from_micro(&m).with_load(0.2);
        rt.tick(&mut m, &input, 1.0).unwrap();
        // Light load: battery 1 (inefficient) carries nearly everything.
        assert!(m.discharge_ratios()[1] > 0.9);
    }

    fn status_row(soc: f64, current_a: f64) -> BatteryStatus {
        BatteryStatus {
            soc,
            terminal_v: 3.8,
            cycle_count: 0,
            current_a,
            remaining_ah: 1.0,
            present: true,
        }
    }

    #[test]
    fn watchdog_engages_on_silent_link_and_recovers() {
        use sdb_emulator::link::Link;
        let mut link = Link::ideal(micro());
        link.seed_faults(7);
        link.set_fault_drop_per_mille(1000); // the link goes completely dark
        let mut rt = SdbRuntime::new(2);
        rt.enable_resilience(ResilienceConfig {
            ack_timeout_s: 5.0,
            watchdog_timeout_s: 30.0,
            ..ResilienceConfig::default()
        });
        let input = PolicyInput::from_micro(link.micro()).with_load(4.0);
        rt.tick(&mut link, &input, 1.0).unwrap();
        assert!(rt.pushes() >= 1);
        for _ in 0..40 {
            link.step(1.0, 2.0, 60.0);
            rt.observe_responses(&link.take_responses());
            rt.supervise(&mut link, 1.0).unwrap();
        }
        assert!(
            rt.watchdog_engaged(),
            "watchdog should engage after 30 s silent"
        );
        // Restore the link: a fallback push gets through, the Ack comes
        // back, and the watchdog disengages.
        link.set_fault_drop_per_mille(0);
        for _ in 0..10 {
            rt.supervise(&mut link, 1.0).unwrap();
            link.step(1.0, 2.0, 60.0);
            rt.observe_responses(&link.take_responses());
        }
        assert!(
            !rt.watchdog_engaged(),
            "watchdog should recover once acks flow"
        );
        // The safe uniform split reached the firmware while engaged.
        let r = link.micro().discharge_ratios().to_vec();
        assert!((r[0] - 0.5).abs() < 1e-9 && (r[1] - 0.5).abs() < 1e-9);
        // And the next tick re-pushes policy ratios immediately.
        assert!(rt.tick(&mut link, &input, 0.0).unwrap());
    }

    #[test]
    fn command_retry_resends_last_ratios() {
        use sdb_emulator::link::Link;
        let mut link = Link::ideal(micro());
        link.seed_faults(3);
        link.set_fault_drop_per_mille(1000);
        let mut rt = SdbRuntime::new(2);
        rt.enable_resilience(ResilienceConfig {
            ack_timeout_s: 4.0,
            watchdog_timeout_s: 1e9,
            ..ResilienceConfig::default()
        });
        let input = PolicyInput::from_micro(link.micro()).with_load(4.0);
        rt.tick(&mut link, &input, 1.0).unwrap();
        let sent_before = link.stats().sent;
        for _ in 0..5 {
            rt.supervise(&mut link, 1.0).unwrap();
        }
        // One retry after ack_timeout_s re-sends both tuples.
        assert!(link.stats().sent > sent_before);
    }

    #[test]
    fn stuck_gauge_flags_and_clears() {
        let mut rt = SdbRuntime::new(2);
        rt.enable_resilience(ResilienceConfig::default());
        for k in 0..6 {
            rt.observe_status(&[
                status_row(0.5, 1.0),
                status_row(0.49 - 0.001 * f64::from(k), 1.0),
            ]);
        }
        assert!(rt.gauge_degraded(0));
        assert!(!rt.gauge_degraded(1));
        // The estimate moves again: suspicion clears.
        rt.observe_status(&[status_row(0.501, 1.0), status_row(0.4, 1.0)]);
        assert!(!rt.gauge_degraded(0));
    }

    #[test]
    fn resting_cell_not_flagged_stuck() {
        let mut rt = SdbRuntime::new(1);
        rt.enable_resilience(ResilienceConfig::default());
        for _ in 0..10 {
            rt.observe_status(&[status_row(0.5, 0.0)]);
        }
        assert!(!rt.gauge_degraded(0));
    }

    #[test]
    fn degraded_gauge_widens_toward_uniform() {
        let mut m = micro();
        let mut rt = SdbRuntime::new(2);
        rt.set_discharge_directive(DischargeDirective::new(1.0));
        rt.enable_resilience(ResilienceConfig {
            guard_widen: 1.0,
            ..ResilienceConfig::default()
        });
        for k in 0..6 {
            rt.observe_status(&[
                status_row(0.5, 1.0),
                status_row(0.49 - 0.001 * f64::from(k), 1.0),
            ]);
        }
        assert!(rt.gauge_degraded(0));
        let input = PolicyInput::from_micro(&m).with_load(4.0);
        rt.tick(&mut m, &input, 1.0).unwrap();
        // Full widening with both batteries usable lands exactly uniform.
        let r = m.discharge_ratios().to_vec();
        assert!(
            (r[0] - 0.5).abs() < 1e-9,
            "widened ratio {} not uniform",
            r[0]
        );
    }

    #[test]
    fn all_empty_keeps_previous_ratios() {
        let mut m = PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 2.0),
                0.0,
                sdb_emulator::profile::ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("b", Chemistry::Type2CoStandard, 2.0),
                0.0,
                sdb_emulator::profile::ProfileKind::Standard,
            )
            .build();
        let mut rt = SdbRuntime::new(2);
        let input = PolicyInput::from_micro(&m).with_load(4.0);
        // Infeasible discharge (both empty) — tick succeeds, pushes only
        // the charge ratios (both cells accept charge when empty).
        let r = rt.tick(&mut m, &input, 1.0);
        assert!(r.is_ok());
    }
}
