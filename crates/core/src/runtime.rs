//! The SDB Runtime loop.
//!
//! "The SDB runtime calculates these power values at coarse granular time
//! steps and updates the ratios" (Section 3.3). The runtime holds the two
//! directive parameters set by the rest of the OS, consults the policies,
//! and pushes ratio changes through the [`crate::api::SdbApi`] only when
//! they changed materially (avoiding needless bus traffic).

use crate::api::SdbApi;
use crate::error::SdbError;
use crate::policy::{ChargeDirective, DischargeDirective, PolicyInput, PreservePolicy};
use sdb_observe::{Counter, Gauge, ObsEvent, Observer, SpanName};

/// Metric handles the tick path updates without touching the registry
/// lock (registered once in [`SdbRuntime::set_observer`]).
#[derive(Debug, Clone)]
struct RuntimeMetrics {
    policy_evals: Counter,
    pushes: Counter,
    charge_directive: Gauge,
    discharge_directive: Gauge,
}

/// The SDB Runtime.
#[derive(Debug, Clone)]
pub struct SdbRuntime {
    n: usize,
    charge_directive: ChargeDirective,
    discharge_directive: DischargeDirective,
    /// Optional workload-aware override for discharge (the watch policy).
    preserve: Option<PreservePolicy>,
    /// Seconds between policy re-evaluations.
    update_period_s: f64,
    since_update_s: f64,
    last_discharge: Vec<f64>,
    last_charge: Vec<f64>,
    /// Ratio pushes actually sent to the hardware.
    pushes: u64,
    /// Observability hook (no-op unless an observer is installed).
    observer: Observer,
    /// Cached metric handles (present only when the observer has a
    /// registry).
    metrics: Option<RuntimeMetrics>,
}

impl SdbRuntime {
    /// A runtime for an `n`-battery pack with neutral directives and a
    /// 60-second update period.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one battery");
        let mut rt = Self {
            n,
            charge_directive: ChargeDirective::new(0.5),
            discharge_directive: DischargeDirective::new(0.5),
            preserve: None,
            update_period_s: 60.0,
            since_update_s: f64::INFINITY, // force an update on first call
            last_discharge: Vec::new(),
            last_charge: Vec::new(),
            pushes: 0,
            observer: Observer::disabled(),
            metrics: None,
        };
        rt.set_observer(sdb_observe::global());
        rt
    }

    /// Installs the observability hook. Pass [`Observer::disabled`] to turn
    /// instrumentation off again. New runtimes default to
    /// [`sdb_observe::global`].
    pub fn set_observer(&mut self, observer: Observer) {
        self.metrics = observer.registry().map(|reg| {
            let m = RuntimeMetrics {
                policy_evals: reg.counter("sdb_policy_evals_total", &[]),
                pushes: reg.counter("sdb_runtime_ratio_pushes_total", &[]),
                charge_directive: reg.gauge("sdb_charge_directive", &[]),
                discharge_directive: reg.gauge("sdb_discharge_directive", &[]),
            };
            m.charge_directive.set(self.charge_directive.value());
            m.discharge_directive.set(self.discharge_directive.value());
            m
        });
        self.observer = observer;
    }

    /// The installed observability hook.
    #[must_use]
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Sets the charging directive parameter (0 = longevity, 1 = fast
    /// useful charge).
    pub fn set_charge_directive(&mut self, d: ChargeDirective) {
        self.charge_directive = d;
        if let Some(m) = &self.metrics {
            m.charge_directive.set(d.value());
        }
    }

    /// Sets the discharging directive parameter (0 = longevity, 1 =
    /// maximize instantaneous battery life).
    pub fn set_discharge_directive(&mut self, d: DischargeDirective) {
        self.discharge_directive = d;
        if let Some(m) = &self.metrics {
            m.discharge_directive.set(d.value());
        }
    }

    /// Installs (or clears) the workload-aware preserve policy.
    pub fn set_preserve(&mut self, p: Option<PreservePolicy>) {
        self.preserve = p;
    }

    /// Sets the policy re-evaluation period.
    ///
    /// # Panics
    ///
    /// Panics if `period_s` is not positive.
    pub fn set_update_period(&mut self, period_s: f64) {
        assert!(period_s > 0.0, "period must be positive");
        self.update_period_s = period_s;
    }

    /// The charging directive currently in force.
    #[must_use]
    pub fn charge_directive(&self) -> ChargeDirective {
        self.charge_directive
    }

    /// The discharging directive currently in force.
    #[must_use]
    pub fn discharge_directive(&self) -> DischargeDirective {
        self.discharge_directive
    }

    /// Number of ratio updates pushed to the hardware.
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Runs one runtime tick: if the update period has elapsed, re-evaluate
    /// policies on `input` and push changed ratios through `api`. Returns
    /// whether anything was pushed.
    ///
    /// Infeasible allocations (all batteries empty / full) are not errors
    /// at this level — the runtime simply leaves the previous ratios in
    /// force, as the hardware must keep operating.
    ///
    /// # Errors
    ///
    /// Propagates hardware rejections from the API.
    pub fn tick(
        &mut self,
        api: &mut dyn SdbApi,
        input: &PolicyInput,
        dt_s: f64,
    ) -> Result<bool, SdbError> {
        self.since_update_s += dt_s;
        if self.since_update_s < self.update_period_s {
            return Ok(false);
        }
        self.since_update_s = 0.0;
        let _span = self.observer.span(SpanName::PolicyEval);
        if let Some(m) = &self.metrics {
            m.policy_evals.inc();
        }
        let mut pushed = false;

        let discharge = match &self.preserve {
            Some(p) => p.ratios(input),
            None => self.discharge_directive.ratios(input),
        };
        if let Ok(ratios) = discharge {
            if materially_different(&ratios, &self.last_discharge) {
                api.discharge(&ratios)?;
                self.last_discharge = ratios;
                self.pushes += 1;
                if let Some(m) = &self.metrics {
                    m.pushes.inc();
                }
                pushed = true;
            }
        }

        if let Ok(ratios) = self.charge_directive.ratios(input) {
            if materially_different(&ratios, &self.last_charge) {
                api.charge(&ratios)?;
                self.last_charge = ratios;
                self.pushes += 1;
                if let Some(m) = &self.metrics {
                    m.pushes.inc();
                }
                pushed = true;
            }
        }
        self.observer.emit(ObsEvent::PolicyEvaluation {
            pushed,
            charge_directive: self.charge_directive.value(),
            discharge_directive: self.discharge_directive.value(),
        });
        Ok(pushed)
    }

    /// Number of batteries this runtime manages.
    #[must_use]
    pub fn battery_count(&self) -> usize {
        self.n
    }
}

/// Ratios differ materially if any component moved by more than one
/// percentage point.
fn materially_different(a: &[f64], b: &[f64]) -> bool {
    if a.len() != b.len() {
        return true;
    }
    a.iter().zip(b).any(|(x, y)| (x - y).abs() > 0.01)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyInput;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;
    use sdb_emulator::micro::Microcontroller;
    use sdb_emulator::pack::PackBuilder;

    fn micro() -> Microcontroller {
        PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .battery(BatterySpec::from_chemistry(
                "b",
                Chemistry::Type3CoPower,
                2.0,
            ))
            .build()
    }

    #[test]
    fn first_tick_pushes() {
        let mut m = micro();
        let mut rt = SdbRuntime::new(2);
        let input = PolicyInput::from_micro(&m).with_load(4.0);
        let pushed = rt.tick(&mut m, &input, 1.0).unwrap();
        assert!(pushed);
        assert!(rt.pushes() >= 1);
    }

    #[test]
    fn updates_rate_limited() {
        let mut m = micro();
        let mut rt = SdbRuntime::new(2);
        rt.set_update_period(60.0);
        let input = PolicyInput::from_micro(&m).with_load(4.0);
        rt.tick(&mut m, &input, 1.0).unwrap();
        let pushes_after_first = rt.pushes();
        // 30 seconds of ticks: no re-evaluation.
        for _ in 0..30 {
            assert!(!rt.tick(&mut m, &input, 1.0).unwrap());
        }
        assert_eq!(rt.pushes(), pushes_after_first);
    }

    #[test]
    fn unchanged_ratios_not_repushed() {
        let mut m = micro();
        let mut rt = SdbRuntime::new(2);
        rt.set_update_period(1.0);
        let input = PolicyInput::from_micro(&m).with_load(4.0);
        rt.tick(&mut m, &input, 2.0).unwrap();
        let pushes = rt.pushes();
        // Same input again after the period: ratios identical, no push.
        assert!(!rt.tick(&mut m, &input, 2.0).unwrap());
        assert_eq!(rt.pushes(), pushes);
    }

    #[test]
    fn preserve_policy_overrides_discharge() {
        let mut m = micro();
        let mut rt = SdbRuntime::new(2);
        rt.set_preserve(Some(crate::policy::PreservePolicy::new(0, 1, 1.0)));
        let input = PolicyInput::from_micro(&m).with_load(0.2);
        rt.tick(&mut m, &input, 1.0).unwrap();
        // Light load: battery 1 (inefficient) carries nearly everything.
        assert!(m.discharge_ratios()[1] > 0.9);
    }

    #[test]
    fn all_empty_keeps_previous_ratios() {
        let mut m = PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 2.0),
                0.0,
                sdb_emulator::profile::ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("b", Chemistry::Type2CoStandard, 2.0),
                0.0,
                sdb_emulator::profile::ProfileKind::Standard,
            )
            .build();
        let mut rt = SdbRuntime::new(2);
        let input = PolicyInput::from_micro(&m).with_load(4.0);
        // Infeasible discharge (both empty) — tick succeeds, pushes only
        // the charge ratios (both cells accept charge when empty).
        let r = rt.tick(&mut m, &input, 1.0);
        assert!(r.is_ok());
    }
}
