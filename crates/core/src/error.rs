//! Error type for the SDB Runtime.

use std::fmt;

/// Errors surfaced by the runtime and the API boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum SdbError {
    /// The hardware rejected a command.
    HardwareRejected(String),
    /// A ratio tuple was malformed (wrong length, negative, or not summing
    /// to one).
    BadRatios(String),
    /// A battery index was out of range.
    BadIndex {
        /// The rejected index.
        index: usize,
        /// Number of batteries.
        count: usize,
    },
    /// A directive parameter was outside `[0, 1]`.
    BadDirective(f64),
    /// The policy produced no feasible allocation (e.g., every battery
    /// empty).
    Infeasible(&'static str),
}

impl fmt::Display for SdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::HardwareRejected(msg) => write!(f, "hardware rejected command: {msg}"),
            Self::BadRatios(msg) => write!(f, "bad ratio tuple: {msg}"),
            Self::BadIndex { index, count } => {
                write!(f, "battery index {index} out of range (pack has {count})")
            }
            Self::BadDirective(v) => write!(f, "directive parameter {v} outside [0, 1]"),
            Self::Infeasible(what) => write!(f, "no feasible allocation: {what}"),
        }
    }
}

impl std::error::Error for SdbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SdbError::BadDirective(1.5).to_string().contains("1.5"));
        assert!(SdbError::BadIndex { index: 3, count: 2 }
            .to_string()
            .contains("3"));
    }
}
