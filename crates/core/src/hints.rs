//! Route/schedule hints (Section 8's EV direction).
//!
//! "An EV's NAV system could provide the vehicle's route as a hint to the
//! SDB Runtime, which could then decide the appropriate batteries based on
//! traffic, hills, temperature, and other factors." This module implements
//! the hint data structure and its translation into a directive schedule:
//! a timeline of `(from_s, directive, preserve?)` entries the runtime can
//! follow.

use crate::policy::{DischargeDirective, PreservePolicy};

/// Expected power demand over one upcoming segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HintSegment {
    /// Segment duration, seconds.
    pub dur_s: f64,
    /// Expected mean power, watts.
    pub expected_w: f64,
    /// Expected peak power, watts.
    pub peak_w: f64,
}

/// A route/schedule hint: an ordered list of upcoming segments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RouteHint {
    segments: Vec<HintSegment>,
}

impl RouteHint {
    /// An empty hint.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a segment.
    ///
    /// # Panics
    ///
    /// Panics on non-positive duration or negative powers.
    pub fn push(&mut self, dur_s: f64, expected_w: f64, peak_w: f64) {
        assert!(dur_s > 0.0 && expected_w >= 0.0 && peak_w >= expected_w);
        self.segments.push(HintSegment {
            dur_s,
            expected_w,
            peak_w,
        });
    }

    /// The segments.
    #[must_use]
    pub fn segments(&self) -> &[HintSegment] {
        &self.segments
    }

    /// Total hinted duration, seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.segments.iter().map(|s| s.dur_s).sum()
    }

    /// Whether a demanding episode (peak ≥ `threshold_w`) appears within
    /// `horizon_s` of the start.
    #[must_use]
    pub fn demanding_within(&self, horizon_s: f64, threshold_w: f64) -> bool {
        let mut t = 0.0;
        for s in &self.segments {
            if t >= horizon_s {
                break;
            }
            if s.peak_w >= threshold_w {
                return true;
            }
            t += s.dur_s;
        }
        false
    }

    /// Compiles the hint into a directive schedule for a pack whose
    /// `efficient`/`inefficient` battery indices and high-power threshold
    /// are given: segments ahead of demanding episodes preserve the
    /// efficient battery; others run loss-optimal.
    #[must_use]
    pub fn compile(
        &self,
        efficient: usize,
        inefficient: usize,
        threshold_w: f64,
    ) -> Vec<ScheduleEntry> {
        let mut out = Vec::with_capacity(self.segments.len());
        let mut t = 0.0;
        for (i, seg) in self.segments.iter().enumerate() {
            // Does any *later* segment need high power?
            let demanding_later = self.segments[i + 1..]
                .iter()
                .any(|s| s.peak_w >= threshold_w);
            let entry = if seg.peak_w >= threshold_w {
                // In the demanding segment itself: spend the efficient
                // battery; that is what it was saved for.
                ScheduleEntry {
                    from_s: t,
                    directive: DischargeDirective::new(1.0),
                    preserve: Some(PreservePolicy::new(efficient, inefficient, threshold_w)),
                }
            } else if demanding_later {
                ScheduleEntry {
                    from_s: t,
                    directive: DischargeDirective::new(0.2),
                    preserve: Some(PreservePolicy::new(efficient, inefficient, threshold_w)),
                }
            } else {
                ScheduleEntry {
                    from_s: t,
                    directive: DischargeDirective::new(1.0),
                    preserve: None,
                }
            };
            out.push(entry);
            t += seg.dur_s;
        }
        out
    }
}

/// One entry of a compiled directive schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleEntry {
    /// Activation time relative to the schedule start, seconds.
    pub from_s: f64,
    /// Discharging directive to apply.
    pub directive: DischargeDirective,
    /// Preserve policy to install (or clear).
    pub preserve: Option<PreservePolicy>,
}

/// Finds the schedule entry in force at time `t_s`.
#[must_use]
pub fn entry_at(schedule: &[ScheduleEntry], t_s: f64) -> Option<&ScheduleEntry> {
    schedule.iter().rev().find(|e| e.from_s <= t_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commute_hint() -> RouteHint {
        let mut h = RouteHint::new();
        h.push(1800.0, 10.0, 15.0); // flat city driving
        h.push(600.0, 40.0, 80.0); // steep hill
        h.push(1800.0, 12.0, 18.0); // flat again
        h
    }

    #[test]
    fn hint_accounting() {
        let h = commute_hint();
        assert_eq!(h.segments().len(), 3);
        assert!((h.duration_s() - 4200.0).abs() < 1e-9);
        assert!(h.demanding_within(4200.0, 50.0));
        assert!(
            !h.demanding_within(600.0, 50.0),
            "hill is not in the first 10 min"
        );
    }

    #[test]
    fn compile_preserves_before_hill_spends_after() {
        let schedule = commute_hint().compile(0, 1, 50.0);
        assert_eq!(schedule.len(), 3);
        assert!(schedule[0].preserve.is_some(), "preserve ahead of the hill");
        assert!(schedule[0].directive.value() < 0.5);
        assert!(
            schedule[1].preserve.is_some(),
            "spend the efficient cell on the hill"
        );
        assert!(schedule[1].directive.value() > 0.9);
        assert!(schedule[2].preserve.is_none(), "nothing demanding later");
    }

    #[test]
    fn entry_lookup() {
        let schedule = commute_hint().compile(0, 1, 50.0);
        assert_eq!(entry_at(&schedule, 0.0).unwrap().from_s, 0.0);
        assert_eq!(entry_at(&schedule, 1900.0).unwrap().from_s, 1800.0);
        assert_eq!(entry_at(&schedule, 4000.0).unwrap().from_s, 2400.0);
        assert!(entry_at(&schedule, -1.0).is_none());
    }

    #[test]
    #[should_panic(expected = "peak_w >= expected_w")]
    fn rejects_peak_below_mean() {
        let mut h = RouteHint::new();
        h.push(10.0, 5.0, 2.0);
    }
}
