//! The lookahead-policy seam: how planning layers steer the runtime.
//!
//! The paper's CCB/RBL policies are "instantaneously optimal" — they
//! optimize the current instant from gauge state alone. A *lookahead*
//! policy instead watches the load as it unfolds and periodically commits
//! a plan: a directive setting chosen by optimizing over a forecast of
//! the future load. This module defines the seam between the two worlds:
//! [`LookaheadPolicy`] is the planner-side trait (implemented by
//! `sdb-policy`'s receding-horizon planner and oracle), [`PlanUpdate`] is
//! the plan it commits, and [`crate::scheduler::run_trace_planned`] is
//! the driver that threads a planner through an ordinary trace run.
//!
//! The seam is deliberately thin: a plan is expressed in the same
//! directive vocabulary the rest of the OS uses
//! ([`crate::policy::DischargeDirective`] /
//! [`crate::policy::ChargeDirective`]), so greedy blend, planner, and
//! oracle are drop-in interchangeable and everything downstream — the
//! four paper APIs, the hardware push rate-limit, the observability
//! surface — is shared.

use crate::policy::{ChargeDirective, DischargeDirective, PolicyInput};
use sdb_emulator::micro::Microcontroller;

/// A plan committed by a [`LookaheadPolicy`]: the directive setting the
/// planner chose for the coming horizon, plus the forecast quality it was
/// chosen under (surfaced as the `sdb_policy_forecast_mae` gauge and the
/// `plan_commit` trace event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanUpdate {
    /// The discharge directive the plan selected.
    pub discharge: DischargeDirective,
    /// Optional charge directive override (most plans steer discharge
    /// only).
    pub charge: Option<ChargeDirective>,
    /// Lookahead horizon the plan covers, seconds.
    pub horizon_s: f64,
    /// Forecast mean absolute error at plan time, watts (0 for oracles).
    pub forecast_mae_w: f64,
}

/// A policy that periodically re-plans from observed load and pack state.
///
/// [`crate::scheduler::run_trace_planned`] calls [`LookaheadPolicy::plan`]
/// before every trace point; returning `Some` commits the plan to the
/// runtime (via [`crate::runtime::SdbRuntime::commit_plan`]) and returning
/// `None` leaves the current directives in force. After the step executes
/// the driver feeds the realized load back through
/// [`LookaheadPolicy::observe_step`] so history-based forecasters learn.
pub trait LookaheadPolicy {
    /// Decides whether to re-plan at simulation time `t_s`. `micro` is the
    /// live pack (planners may clone it to roll candidate futures
    /// forward); `input` is the policy view the runtime will see this
    /// tick.
    fn plan(
        &mut self,
        t_s: f64,
        micro: &Microcontroller,
        input: &PolicyInput,
    ) -> Option<PlanUpdate>;

    /// Feeds one executed step back to the policy: the step ended at
    /// `t_s`, lasted `dt_s` seconds, and drew `load_w` watts.
    fn observe_step(&mut self, t_s: f64, dt_s: f64, load_w: f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait is object-safe — the scheduler takes `&mut dyn`.
    #[test]
    fn trait_is_object_safe() {
        struct Never;
        impl LookaheadPolicy for Never {
            fn plan(
                &mut self,
                _t_s: f64,
                _micro: &Microcontroller,
                _input: &PolicyInput,
            ) -> Option<PlanUpdate> {
                None
            }
            fn observe_step(&mut self, _t_s: f64, _dt_s: f64, _load_w: f64) {}
        }
        let mut p = Never;
        let _dyn_ref: &mut dyn LookaheadPolicy = &mut p;
    }

    #[test]
    fn plan_update_is_copy_and_carries_directives() {
        let u = PlanUpdate {
            discharge: DischargeDirective::new(0.75),
            charge: None,
            horizon_s: 3600.0,
            forecast_mae_w: 0.25,
        };
        let v = u;
        assert_eq!(u, v);
        assert!((v.discharge.value() - 0.75).abs() < 1e-12);
    }
}
