//! Property tests for the pack snapshot and the SoA fast-forward kernel
//! (sdb-testkit seeded-case harness).
//!
//! Three contracts:
//!
//! * **Byte round-trip**: `PackSnapshot::from_bytes(to_bytes(s)) == s`
//!   bit-for-bit, over arbitrary packs, mutations (ratios, profiles,
//!   throttles, faults, transfers), and step sequences.
//! * **Resume equivalence**: restoring a snapshot into a fresh pack of
//!   the same shape and replaying an identical step sequence produces
//!   bit-identical state to the original — the planner's
//!   snapshot/restore rollouts depend on this.
//! * **Adaptive-timestep bound**: a closed-form multi-tick
//!   [`SoaCohort::advance`] stays within the documented error bound of
//!   the same ticks run through the scalar `Microcontroller::step` path.

use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;
use sdb_emulator::{PackSnapshot, QuiescenceConfig, SoaCohort};
use sdb_testkit::{check, Gen};

fn arb_chemistry(g: &mut Gen) -> Chemistry {
    g.pick(&[
        Chemistry::Type1LfpPower,
        Chemistry::Type2CoStandard,
        Chemistry::Type3CoPower,
        Chemistry::Type4Bendable,
    ])
}

fn arb_pack(g: &mut Gen) -> Microcontroller {
    let n = g.usize_range(1, 4);
    let mut b = PackBuilder::new();
    for i in 0..n {
        b = b.battery_at(
            BatterySpec::from_chemistry(&format!("p{i}"), arb_chemistry(g), g.f64_range(1.0, 3.0)),
            g.f64_range(0.3, 1.0),
            g.pick(&[ProfileKind::Standard, ProfileKind::Fast]),
        );
    }
    b.build()
}

/// Random state mutations touching every snapshot field family: ratios,
/// charging profiles, gauge faults, cell fault resistance, and transfers.
fn mutate(g: &mut Gen, m: &mut Microcontroller) {
    let n = m.battery_count();
    if g.chance(0.5) {
        let mut ratios: Vec<f64> = (0..n).map(|_| g.f64_range(0.0, 1.0)).collect();
        let sum: f64 = ratios.iter().sum();
        if sum > 0.0 {
            ratios.iter_mut().for_each(|r| *r /= sum);
            let _ = m.set_discharge_ratios(&ratios);
        }
    }
    if g.chance(0.3) {
        let b = g.usize_range(0, n);
        let _ = m.select_profile(b, g.pick(&[ProfileKind::Standard, ProfileKind::Fast]));
    }
    if g.chance(0.2) {
        let b = g.usize_range(0, n);
        let _ = m.set_cell_fault_resistance(b, g.f64_range(1.0, 4.0));
    }
    if n >= 2 && g.chance(0.2) {
        let _ = m.charge_one_from_another(0, 1, g.f64_range(0.1, 1.0), g.f64_range(60.0, 600.0));
    }
}

fn arb_steps(g: &mut Gen) -> Vec<(f64, f64, f64)> {
    g.vec_with(1..40, |g| {
        (
            g.f64_range(0.0, 8.0),
            if g.chance(0.3) {
                g.f64_range(0.0, 12.0)
            } else {
                0.0
            },
            g.f64_range(1.0, 120.0),
        )
    })
}

/// **Byte round-trip**: serialization preserves every field bit-for-bit.
#[test]
fn snapshot_bytes_round_trip_bit_exactly() {
    check(64, 0x5A_0001, |g| {
        let mut m = arb_pack(g);
        mutate(g, &mut m);
        for (load, ext, dt) in arb_steps(g) {
            m.step(load, ext, dt);
        }
        let snap = m.snapshot();
        let bytes = snap.to_bytes();
        let back = PackSnapshot::from_bytes(&bytes).expect("serialized snapshot parses");
        assert_eq!(back, snap, "byte round-trip must be lossless");
        // And the re-serialization is byte-stable.
        assert_eq!(back.to_bytes(), bytes);
    });
}

/// **Resume equivalence**: a restored pack is indistinguishable from the
/// original under any further identical step sequence.
#[test]
fn snapshot_restore_resumes_bit_exactly() {
    check(48, 0x5A_0002, |g| {
        let mut live = arb_pack(g);
        let mut fresh = live.clone();
        mutate(g, &mut live);
        for (load, ext, dt) in arb_steps(g) {
            live.step(load, ext, dt);
        }
        let snap = live.snapshot();
        fresh.restore_from(&snap).expect("same-shape pack restores");
        assert_eq!(
            fresh.snapshot(),
            snap,
            "restore must reproduce the snapshot"
        );
        for (load, ext, dt) in arb_steps(g) {
            let a = live.step(load, ext, dt);
            let b = fresh.step(load, ext, dt);
            assert_eq!(a, b, "step reports diverged after restore");
        }
        assert_eq!(
            live.snapshot(),
            fresh.snapshot(),
            "state diverged after identical post-restore steps"
        );
    });
}

/// **Adaptive-timestep bound**: over random chemistries, SoCs, and held
/// loads, a closed-form stretch stays within the documented error bound
/// of the scalar path: per-cell SoC within 1e-5 per stretch (and always
/// within the classifier's hard 0.004 drift budget), RC voltage within
/// 1e-4 V, and delivered energy within 1% relative.
#[test]
fn fast_forward_matches_scalar_within_documented_bounds() {
    check(48, 0x5A_0003, |g| {
        let n = g.usize_range(1, 4);
        let mut b = PackBuilder::new();
        for i in 0..n {
            b = b.battery_at(
                BatterySpec::from_chemistry(
                    &format!("p{i}"),
                    arb_chemistry(g),
                    g.f64_range(1.0, 3.0),
                ),
                g.f64_range(0.4, 1.0),
                ProfileKind::Standard,
            );
        }
        let mut fast = b.build();
        fast.set_observer(sdb_observe::Observer::disabled());
        let dt = g.f64_range(10.0, 120.0);
        let mut soa = SoaCohort::new(&fast, 1, QuiescenceConfig::default());
        let load = g.f64_range(0.0, soa.max_load_w());
        // Settle the RC transient at the held load, then try to park.
        let mut report = fast.step(load, 0.0, dt);
        for _ in 0..60 {
            report = fast.step(load, 0.0, dt);
        }
        let mut scalar = fast.clone();
        if !soa.try_enter(0, &fast, &report, load, dt) {
            return; // classifier declined (near floor, unsettled, …): fine
        }
        let k = soa.max_ticks(0, load, dt);
        if k == 0 {
            soa.exit(0, &mut fast);
            return;
        }
        soa.advance(0, load, dt, k);
        soa.exit(0, &mut fast);
        for _ in 0..k {
            scalar.step(load, 0.0, dt);
        }
        let a = fast.snapshot();
        let b = scalar.snapshot();
        // The closed form advances the clock as one multiply; the scalar
        // path accumulates k additions. Equal for representable dt (the
        // fleet's 60 s cadence), within float-rounding noise otherwise.
        assert!(
            (a.time_s - b.time_s).abs() <= 1e-9 * b.time_s.max(1.0),
            "clock drifted: {} vs {}",
            a.time_s,
            b.time_s
        );
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert!(
                (ca.soc - cb.soc).abs() <= 1e-5,
                "soc drift {} over a {k}-tick stretch",
                (ca.soc - cb.soc).abs()
            );
            assert!(
                (ca.v_rc - cb.v_rc).abs() <= 1e-4,
                "v_rc drift {} over a {k}-tick stretch",
                (ca.v_rc - cb.v_rc).abs()
            );
        }
        if b.delivered_j > 1.0 {
            let rel = ((a.delivered_j - b.delivered_j) / b.delivered_j).abs();
            assert!(
                rel <= 0.01,
                "delivered_j drift {rel} over a {k}-tick stretch"
            );
        }
    });
}
