//! Property-based tests for the emulator: energy conservation, ratio
//! enforcement, and robustness to arbitrary step sequences (sdb-testkit
//! seeded-case harness).

use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;
use sdb_testkit::{check, Gen};

fn arb_chemistry(g: &mut Gen) -> Chemistry {
    g.pick(&[
        Chemistry::Type1LfpPower,
        Chemistry::Type2CoStandard,
        Chemistry::Type3CoPower,
        Chemistry::Type4Bendable,
    ])
}

fn arb_pack(g: &mut Gen, soc_lo: f64) -> Vec<(Chemistry, f64)> {
    g.vec_with(1..4, |g| (arb_chemistry(g), g.f64_range(soc_lo, 1.0)))
}

fn build_pack(chems: &[(Chemistry, f64)]) -> Microcontroller {
    let mut b = PackBuilder::new();
    for (i, &(chem, soc)) in chems.iter().enumerate() {
        b = b.battery_at(
            BatterySpec::from_chemistry(&format!("p{i}"), chem, 2.0),
            soc,
            ProfileKind::Standard,
        );
    }
    b.build()
}

/// **Energy conservation**: over any sequence of load/charge steps, the
/// energy delivered to the load plus all losses never exceeds the chemical
/// energy drawn from the cells plus the external energy consumed.
#[test]
fn no_energy_created() {
    check(64, 0xE0_0001, |g| {
        let chems = arb_pack(g, 0.1);
        let steps = g.vec_with(1..40, |g| (g.f64_range(0.0, 15.0), g.f64_range(0.0, 20.0)));
        let mut m = build_pack(&chems);
        for (load_w, external_w) in steps {
            m.step(load_w, external_w, 30.0);
        }
        let (delivered, circuit_loss, cell_heat, _unmet, external_in) = m.energy_totals_j();
        let chem_net: f64 = m
            .cells()
            .iter()
            .map(|c| c.energy_out_j() - c.energy_in_j() + c.heat_j())
            .sum();
        // delivered + losses ≤ chemical-net + external (tolerance: 1 % for
        // the RC transient energy parked in plate capacitances).
        let lhs = delivered + circuit_loss + cell_heat;
        let rhs = chem_net + external_in;
        assert!(lhs <= rhs * 1.01 + 1.0, "created energy: {lhs} > {rhs}");
    });
}

/// The load is either served or reported unmet — never silently lost.
#[test]
fn load_fully_accounted() {
    check(64, 0xE0_0002, |g| {
        let chems = arb_pack(g, 0.0);
        let load = g.f64_range(0.1, 25.0);
        let mut m = build_pack(&chems);
        let r = m.step(load, 0.0, 60.0);
        assert!(
            (r.supplied_w + r.unmet_w - load).abs() < 1e-6,
            "supplied {} + unmet {} != load {load}",
            r.supplied_w,
            r.unmet_w
        );
    });
}

/// SoC never leaves [0, 1] under any mix of loads and charging.
#[test]
fn soc_bounds_hold() {
    check(64, 0xE0_0003, |g| {
        let chems = arb_pack(g, 0.0);
        let steps = g.vec_with(1..30, |g| (g.f64_range(0.0, 10.0), g.f64_range(0.0, 30.0)));
        let mut m = build_pack(&chems);
        for (load_w, external_w) in steps {
            m.step(load_w, external_w, 60.0);
            for c in m.cells() {
                assert!((0.0..=1.0).contains(&c.soc()));
            }
        }
    });
}

/// Ratio enforcement: with both batteries healthy and within limits, the
/// realized power split tracks the requested discharge ratios.
#[test]
fn discharge_ratio_tracks_setpoint() {
    check(64, 0xE0_0004, |g| {
        let share = g.f64_range(0.05, 0.95);
        let mut m = build_pack(&[
            (Chemistry::Type2CoStandard, 0.9),
            (Chemistry::Type2CoStandard, 0.9),
        ]);
        m.set_discharge_ratios(&[share, 1.0 - share]).unwrap();
        let r = m.step(4.0, 0.0, 30.0);
        let p0 = r.batteries[0].current_a * r.batteries[0].terminal_v;
        let p1 = r.batteries[1].current_a * r.batteries[1].terminal_v;
        let realized = p0 / (p0 + p1);
        assert!(
            (realized - share).abs() < 0.02,
            "requested {share}, realized {realized}"
        );
    });
}

/// Gauge estimates stay within 3 % of ground truth over arbitrary
/// medium-length runs.
#[test]
fn gauges_track_truth() {
    check(64, 0xE0_0005, |g| {
        let steps = g.vec_with(1..40, |g| (g.f64_range(0.0, 8.0), g.f64_range(0.0, 15.0)));
        let mut m = build_pack(&[
            (Chemistry::Type2CoStandard, 0.8),
            (Chemistry::Type3CoPower, 0.8),
        ]);
        for (load_w, external_w) in steps {
            m.step(load_w, external_w, 60.0);
        }
        for (status, cell) in m.query_battery_status().iter().zip(m.cells()) {
            assert!(
                (status.soc - cell.soc()).abs() < 0.03,
                "gauge {} vs truth {}",
                status.soc,
                cell.soc()
            );
        }
    });
}

/// Battery-to-battery transfer never increases total stored energy.
#[test]
fn transfer_is_dissipative() {
    check(64, 0xE0_0006, |g| {
        let src_soc = g.f64_range(0.5, 1.0);
        let dst_soc = g.f64_range(0.0, 0.5);
        let power = g.f64_range(1.0, 6.0);
        let minutes = g.u32_range(1, 30);
        let mut m = build_pack(&[
            (Chemistry::Type2CoStandard, src_soc),
            (Chemistry::Type2CoStandard, dst_soc),
        ]);
        let stored = |m: &Microcontroller| -> f64 {
            m.cells().iter().map(|c| c.remaining_energy_wh()).sum()
        };
        let before = stored(&m);
        m.charge_one_from_another(0, 1, power, f64::from(minutes) * 60.0)
            .unwrap();
        for _ in 0..minutes {
            m.step(0.0, 0.0, 60.0);
        }
        let after = stored(&m);
        assert!(after <= before + 1e-6, "stored grew: {before} -> {after}");
    });
}
