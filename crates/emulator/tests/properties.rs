//! Property-based tests for the emulator: energy conservation, ratio
//! enforcement, and robustness to arbitrary step sequences.

use proptest::prelude::*;
use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_emulator::micro::Microcontroller;
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;

fn arb_chemistry() -> impl Strategy<Value = Chemistry> {
    prop::sample::select(vec![
        Chemistry::Type1LfpPower,
        Chemistry::Type2CoStandard,
        Chemistry::Type3CoPower,
        Chemistry::Type4Bendable,
    ])
}

fn build_pack(chems: &[(Chemistry, f64)]) -> Microcontroller {
    let mut b = PackBuilder::new();
    for (i, &(chem, soc)) in chems.iter().enumerate() {
        b = b.battery_at(
            BatterySpec::from_chemistry(&format!("p{i}"), chem, 2.0),
            soc,
            ProfileKind::Standard,
        );
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// **Energy conservation**: over any sequence of load/charge steps, the
    /// energy delivered to the load plus all losses never exceeds the
    /// chemical energy drawn from the cells plus the external energy
    /// consumed.
    #[test]
    fn no_energy_created(
        chems in prop::collection::vec((arb_chemistry(), 0.1f64..1.0), 1..4),
        steps in prop::collection::vec((0.0f64..15.0, 0.0f64..20.0), 1..40),
    ) {
        let mut m = build_pack(&chems);
        for (load_w, external_w) in steps {
            m.step(load_w, external_w, 30.0);
        }
        let (delivered, circuit_loss, cell_heat, _unmet, external_in) = m.energy_totals_j();
        let chem_net: f64 = m
            .cells()
            .iter()
            .map(|c| c.energy_out_j() - c.energy_in_j() + c.heat_j())
            .sum();
        // delivered + losses ≤ chemical-net + external (tolerance: 1 % for
        // the RC transient energy parked in plate capacitances).
        let lhs = delivered + circuit_loss + cell_heat;
        let rhs = chem_net + external_in;
        prop_assert!(
            lhs <= rhs * 1.01 + 1.0,
            "created energy: {lhs} > {rhs}"
        );
    }

    /// The load is either served or reported unmet — never silently lost.
    #[test]
    fn load_fully_accounted(
        chems in prop::collection::vec((arb_chemistry(), 0.0f64..1.0), 1..4),
        load in 0.1f64..25.0,
    ) {
        let mut m = build_pack(&chems);
        let r = m.step(load, 0.0, 60.0);
        prop_assert!((r.supplied_w + r.unmet_w - load).abs() < 1e-6,
            "supplied {} + unmet {} != load {load}", r.supplied_w, r.unmet_w);
    }

    /// SoC never leaves [0, 1] under any mix of loads and charging.
    #[test]
    fn soc_bounds_hold(
        chems in prop::collection::vec((arb_chemistry(), 0.0f64..1.0), 1..4),
        steps in prop::collection::vec((0.0f64..10.0, 0.0f64..30.0), 1..30),
    ) {
        let mut m = build_pack(&chems);
        for (load_w, external_w) in steps {
            m.step(load_w, external_w, 60.0);
            for c in m.cells() {
                prop_assert!((0.0..=1.0).contains(&c.soc()));
            }
        }
    }

    /// Ratio enforcement: with both batteries healthy and within limits,
    /// the realized power split tracks the requested discharge ratios.
    #[test]
    fn discharge_ratio_tracks_setpoint(share in 0.05f64..0.95) {
        let mut m = build_pack(&[
            (Chemistry::Type2CoStandard, 0.9),
            (Chemistry::Type2CoStandard, 0.9),
        ]);
        m.set_discharge_ratios(&[share, 1.0 - share]).unwrap();
        let r = m.step(4.0, 0.0, 30.0);
        let p0 = r.batteries[0].current_a * r.batteries[0].terminal_v;
        let p1 = r.batteries[1].current_a * r.batteries[1].terminal_v;
        let realized = p0 / (p0 + p1);
        prop_assert!((realized - share).abs() < 0.02,
            "requested {share}, realized {realized}");
    }

    /// Gauge estimates stay within 3 % of ground truth over arbitrary
    /// medium-length runs.
    #[test]
    fn gauges_track_truth(
        steps in prop::collection::vec((0.0f64..8.0, 0.0f64..15.0), 1..40),
    ) {
        let mut m = build_pack(&[
            (Chemistry::Type2CoStandard, 0.8),
            (Chemistry::Type3CoPower, 0.8),
        ]);
        for (load_w, external_w) in steps {
            m.step(load_w, external_w, 60.0);
        }
        for (status, cell) in m.query_battery_status().iter().zip(m.cells()) {
            prop_assert!((status.soc - cell.soc()).abs() < 0.03,
                "gauge {} vs truth {}", status.soc, cell.soc());
        }
    }

    /// Battery-to-battery transfer never increases total stored energy.
    #[test]
    fn transfer_is_dissipative(
        src_soc in 0.5f64..1.0,
        dst_soc in 0.0f64..0.5,
        power in 1.0f64..6.0,
        minutes in 1u32..30,
    ) {
        let mut m = build_pack(&[
            (Chemistry::Type2CoStandard, src_soc),
            (Chemistry::Type2CoStandard, dst_soc),
        ]);
        let stored = |m: &Microcontroller| -> f64 {
            m.cells().iter().map(|c| c.remaining_energy_wh()).sum()
        };
        let before = stored(&m);
        m.charge_one_from_another(0, 1, power, f64::from(minutes) * 60.0).unwrap();
        for _ in 0..minutes {
            m.step(0.0, 0.0, 60.0);
        }
        let after = stored(&m);
        prop_assert!(after <= before + 1e-6, "stored grew: {before} -> {after}");
    }
}
