//! Proves the micro-step hot loop is allocation-free at steady state.
//!
//! The test binary installs [`sdb_testkit::CountingAllocator`] as the
//! global allocator; its counters are thread-local, so the parallel test
//! threads measure independently. Each scenario warms a pack up (first
//! steps grow the scratch buffers and curve cursors to steady state), then
//! asserts that hundreds of further steps perform **zero** heap
//! allocations — the property the scratch-buffer rework in
//! `Microcontroller::step` exists to provide.

use sdb_battery_model::chemistry::Chemistry;
use sdb_battery_model::spec::BatterySpec;
use sdb_emulator::micro::{BatterySteps, Microcontroller};
use sdb_emulator::pack::PackBuilder;
use sdb_emulator::profile::ProfileKind;
use sdb_testkit::alloc_counter;
use sdb_testkit::CountingAllocator;
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn pack_of(n: usize, soc: f64) -> Microcontroller {
    let chems = [
        Chemistry::Type2CoStandard,
        Chemistry::Type3CoPower,
        Chemistry::Type1LfpPower,
        Chemistry::OtherNmc,
    ];
    let mut b = PackBuilder::new();
    for i in 0..n {
        b = b.battery_at(
            BatterySpec::from_chemistry(&format!("cell{i}"), chems[i % chems.len()], 2.0),
            soc,
            ProfileKind::Standard,
        );
    }
    b.build()
}

/// Runs `steps` steps and returns the number of heap allocations they made.
fn allocs_over(micro: &mut Microcontroller, steps: usize, load_w: f64, external_w: f64) -> u64 {
    let before = alloc_counter::allocs();
    for _ in 0..steps {
        black_box(micro.step(load_w, external_w, 1.0));
    }
    alloc_counter::allocs() - before
}

#[test]
fn discharge_steady_state_is_allocation_free() {
    let mut micro = pack_of(4, 0.9);
    // Warm-up: scratch buffers reach capacity, cursors settle.
    let _ = allocs_over(&mut micro, 50, 12.0, 0.0);
    let n = allocs_over(&mut micro, 200, 12.0, 0.0);
    assert_eq!(n, 0, "discharge steady state allocated {n} times");
}

#[test]
fn charge_steady_state_is_allocation_free() {
    let mut micro = pack_of(4, 0.3);
    let _ = allocs_over(&mut micro, 50, 0.0, 40.0);
    let n = allocs_over(&mut micro, 200, 0.0, 40.0);
    assert_eq!(n, 0, "charge steady state allocated {n} times");
}

#[test]
fn mixed_load_and_charge_is_allocation_free() {
    let mut micro = pack_of(8, 0.5);
    let _ = allocs_over(&mut micro, 50, 10.0, 25.0);
    let n = allocs_over(&mut micro, 200, 10.0, 25.0);
    assert_eq!(n, 0, "mixed steady state allocated {n} times");
}

#[test]
fn inline_report_capacity_covers_bench_packs() {
    // Packs up to BatterySteps::INLINE cells return their per-battery
    // detail inline; larger packs spill to one heap allocation per step
    // (documented in DESIGN.md §9). This pins the boundary the alloc-free
    // tests rely on.
    const _: () = assert!(BatterySteps::INLINE >= 8);
    let mut micro = pack_of(BatterySteps::INLINE + 1, 0.9);
    let _ = allocs_over(&mut micro, 50, 30.0, 0.0);
    let n = allocs_over(&mut micro, 100, 30.0, 0.0);
    assert_eq!(
        n, 100,
        "a spilled pack should allocate exactly once per step, got {n}/100"
    );
}
