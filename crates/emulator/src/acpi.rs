//! ACPI-style legacy battery view.
//!
//! "These parameters are exposed through the Advanced Configuration and
//! Power Interface (ACPI). However, none of these APIs allow the OS to set
//! the battery parameters" (Section 2.2). Existing OS components expect a
//! *single logical battery*; this module aggregates a heterogeneous SDB
//! pack into that legacy view, so unmodified power managers keep working
//! while SDB-aware components use the rich per-battery APIs.

use crate::micro::Microcontroller;

/// Charging state of the aggregate battery (ACPI `_BST` semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcpiState {
    /// Net current flowing out of the pack.
    Discharging,
    /// Net current flowing into the pack.
    Charging,
    /// No meaningful current.
    Idle,
}

/// The single-logical-battery view of a pack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcpiBatteryInfo {
    /// Design capacity of all present batteries, milliwatt-hours.
    pub design_capacity_mwh: f64,
    /// Last full charge capacity (design × fade), milliwatt-hours.
    pub last_full_capacity_mwh: f64,
    /// Remaining capacity, milliwatt-hours.
    pub remaining_capacity_mwh: f64,
    /// Present drain (positive) or charge (negative) rate, milliwatts.
    pub present_rate_mw: f64,
    /// Capacity-weighted pack voltage, millivolts.
    pub voltage_mv: f64,
    /// Charging state.
    pub state: AcpiState,
    /// Remaining percentage `[0, 100]`.
    pub percentage: f64,
    /// Number of physically present batteries aggregated.
    pub batteries_present: usize,
}

impl AcpiBatteryInfo {
    /// Rough remaining runtime at the present rate, seconds (`None` when
    /// not discharging).
    #[must_use]
    pub fn estimated_runtime_s(&self) -> Option<f64> {
        if self.state != AcpiState::Discharging || self.present_rate_mw <= 0.0 {
            return None;
        }
        Some(self.remaining_capacity_mwh * 3.6 / (self.present_rate_mw / 1000.0))
    }
}

/// Builds the legacy single-battery view from the pack's gauges and
/// ground-truth fade.
#[must_use]
pub fn report(micro: &Microcontroller) -> AcpiBatteryInfo {
    let statuses = micro.query_battery_status();
    let mut design_mwh = 0.0;
    let mut full_mwh = 0.0;
    let mut remaining_mwh = 0.0;
    let mut rate_mw = 0.0;
    let mut v_weight = 0.0;
    let mut v_sum = 0.0;
    let mut present = 0usize;
    for (status, cell) in statuses.iter().zip(micro.cells()) {
        if !status.present {
            continue;
        }
        present += 1;
        let nominal_v = cell.spec().chemistry.nominal_voltage_v();
        let design = cell.spec().capacity_ah * nominal_v * 1000.0;
        design_mwh += design;
        full_mwh += design * cell.aging().capacity_fraction();
        remaining_mwh += status.remaining_ah * nominal_v * 1000.0;
        rate_mw += status.current_a * status.terminal_v * 1000.0;
        v_sum += status.terminal_v * cell.spec().capacity_ah;
        v_weight += cell.spec().capacity_ah;
    }
    let state = if rate_mw > 1.0 {
        AcpiState::Discharging
    } else if rate_mw < -1.0 {
        AcpiState::Charging
    } else {
        AcpiState::Idle
    };
    AcpiBatteryInfo {
        design_capacity_mwh: design_mwh,
        last_full_capacity_mwh: full_mwh,
        remaining_capacity_mwh: remaining_mwh,
        present_rate_mw: rate_mw,
        voltage_mv: if v_weight > 0.0 {
            v_sum / v_weight * 1000.0
        } else {
            0.0
        },
        state,
        percentage: if full_mwh > 0.0 {
            (remaining_mwh / full_mwh * 100.0).clamp(0.0, 100.0)
        } else {
            0.0
        },
        batteries_present: present,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::PackBuilder;
    use crate::profile::ProfileKind;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;

    fn pack() -> Microcontroller {
        PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .battery_at(
                BatterySpec::from_chemistry("b", Chemistry::Type3CoPower, 2.0),
                0.5,
                ProfileKind::Fast,
            )
            .build()
    }

    #[test]
    fn aggregates_pack_to_single_battery() {
        let m = pack();
        let info = report(&m);
        assert_eq!(info.batteries_present, 2);
        // 2 Ah @ 3.8 V × 2 cells = 15200 mWh design.
        assert!((info.design_capacity_mwh - 15_200.0).abs() < 1.0);
        // One full + one half cell: 75 % remaining.
        assert!((info.percentage - 75.0).abs() < 1.0, "{}", info.percentage);
        assert_eq!(info.state, AcpiState::Idle);
        assert!(info.voltage_mv > 3000.0 && info.voltage_mv < 4500.0);
    }

    #[test]
    fn discharging_state_and_runtime_estimate() {
        let mut m = pack();
        m.step(7.6, 0.0, 60.0);
        let info = report(&m);
        assert_eq!(info.state, AcpiState::Discharging);
        assert!(info.present_rate_mw > 6000.0);
        let runtime = info.estimated_runtime_s().expect("discharging");
        // ~11.4 Wh at ~7.6 W ≈ 1.5 h.
        assert!(
            runtime > 0.8 * 3600.0 && runtime < 2.5 * 3600.0,
            "{runtime}"
        );
    }

    #[test]
    fn charging_state() {
        let mut m = pack();
        m.set_charge_ratios(&[0.0, 1.0]).unwrap();
        m.step(0.0, 10.0, 60.0);
        let info = report(&m);
        assert_eq!(info.state, AcpiState::Charging);
        assert!(info.estimated_runtime_s().is_none());
    }

    #[test]
    fn detached_battery_leaves_the_aggregate() {
        let mut m = pack();
        let before = report(&m);
        m.set_battery_present(1, false).unwrap();
        let after = report(&m);
        assert_eq!(after.batteries_present, 1);
        assert!(after.design_capacity_mwh < before.design_capacity_mwh);
        // Only the full cell remains: 100 %.
        assert!((after.percentage - 100.0).abs() < 1.0);
    }
}
