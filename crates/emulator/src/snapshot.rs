//! Versioned, bit-exact pack state snapshots.
//!
//! A [`PackSnapshot`] captures the *entire mutable state* of a
//! [`Microcontroller`](crate::micro::Microcontroller) — cells (SoC, RC
//! branch, energy accounting, aging, thermal, fault multipliers), fuel
//! gauges (estimates, coulomb counters, learned capacity, faults), ratios,
//! presence, throttle latches, in-flight transfers, profile selections,
//! and the energy totals — such that restoring it into a pack built from
//! the same template is bit-identical to having cloned the pack at the
//! capture point. Immutable configuration (specs, circuit topologies, the
//! share chain) is *not* captured; it comes from the template.
//!
//! Three users:
//! - **Planner rollouts** restore a scratch pack per candidate instead of
//!   cloning the runtime (no allocation after warmup).
//! - **Campaigns** checkpoint via [`PackSnapshot::to_bytes`] and branch via
//!   [`PackSnapshot::from_bytes`]; the byte codec round-trips every `f64`
//!   bit pattern exactly.
//! - **The SoA engine** parks quiescent devices' state in
//!   [`SoaCohort`](crate::soa::SoaCohort) lanes and uses snapshots as the
//!   bridge in and out of the array representation.

use crate::profile::ProfileKind;
use sdb_battery_model::aging::AgingStateSnapshot;
use sdb_battery_model::thermal::ThermalModel;
use sdb_battery_model::thevenin::CellStateSnapshot;
use sdb_fuel_gauge::gauge::{GaugeFault, GaugeStateSnapshot};

use crate::micro::ThermalThrottle;

/// Current snapshot format version (bumped on any layout change).
pub const PACK_SNAPSHOT_VERSION: u32 = 1;

/// FNV-1a 64-bit hash — the digest primitive for snapshot and campaign
/// fingerprints. Stable across platforms (pure integer arithmetic over
/// the byte stream), cheap, and good enough to flag any single-bit drift
/// in a serialized snapshot.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Magic prefix for serialized snapshots.
const MAGIC: &[u8; 8] = b"SDBSNAP\x01";

/// An in-flight battery-to-battery transfer, as captured state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferSnapshot {
    /// Source battery index.
    pub from: usize,
    /// Destination battery index.
    pub to: usize,
    /// Transfer power at the source terminals, watts.
    pub power_w: f64,
    /// Remaining transfer duration, seconds.
    pub remaining_s: f64,
}

/// Full mutable state of one pack at a point in time.
///
/// See the module docs for what is and is not captured. Restore via
/// [`Microcontroller::restore_from`](crate::micro::Microcontroller::restore_from),
/// which requires a pack of the same shape (same battery count).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PackSnapshot {
    /// Emulation time, seconds.
    pub time_s: f64,
    /// Lifetime energy delivered to the load, joules.
    pub delivered_j: f64,
    /// Lifetime circuit losses, joules.
    pub circuit_loss_j: f64,
    /// Lifetime cell heat, joules.
    pub cell_heat_j: f64,
    /// Lifetime unmet load energy, joules.
    pub unmet_j: f64,
    /// Lifetime external energy consumed, joules.
    pub external_in_j: f64,
    /// Realized discharge ratios.
    pub discharge_ratios: Vec<f64>,
    /// Realized charge ratios.
    pub charge_ratios: Vec<f64>,
    /// Physical presence per battery.
    pub present: Vec<bool>,
    /// Thermal charge-throttle latch per battery.
    pub throttled: Vec<bool>,
    /// Selected charging profile per battery.
    pub profile_kinds: Vec<ProfileKind>,
    /// Firmware thermal throttle configuration, if installed.
    pub thermal_throttle: Option<ThermalThrottle>,
    /// In-flight battery-to-battery transfer, if any.
    pub transfer: Option<TransferSnapshot>,
    /// Per-cell mutable state.
    pub cells: Vec<CellStateSnapshot>,
    /// Per-gauge mutable state.
    pub gauges: Vec<GaugeStateSnapshot>,
}

impl PackSnapshot {
    /// Number of batteries in the captured pack.
    #[must_use]
    pub fn battery_count(&self) -> usize {
        self.cells.len()
    }

    /// The snapshot's FNV-1a 64 fingerprint over its serialized bytes.
    /// Because [`PackSnapshot::to_bytes`] round-trips every `f64` bit
    /// pattern exactly, two packs digest equal iff their entire mutable
    /// state is bit-identical — the equality primitive campaign baselines
    /// and cross-run differential checks are built on.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a_64(&self.to_bytes())
    }

    /// Serializes to a self-describing little-endian byte string. Every
    /// `f64` is written as its exact bit pattern, so
    /// `from_bytes(to_bytes(s)) == s` bit-for-bit.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.cells.len();
        let mut w = Writer(Vec::with_capacity(64 + n * 256));
        w.0.extend_from_slice(MAGIC);
        w.u32(PACK_SNAPSHOT_VERSION);
        w.u32(u32::try_from(n).expect("pack size fits u32"));
        w.f64(self.time_s);
        w.f64(self.delivered_j);
        w.f64(self.circuit_loss_j);
        w.f64(self.cell_heat_j);
        w.f64(self.unmet_j);
        w.f64(self.external_in_j);
        for i in 0..n {
            w.f64(self.discharge_ratios[i]);
            w.f64(self.charge_ratios[i]);
            w.bool(self.present[i]);
            w.bool(self.throttled[i]);
            w.u8(match self.profile_kinds[i] {
                ProfileKind::Standard => 0,
                ProfileKind::Fast => 1,
                ProfileKind::Gentle => 2,
            });
        }
        match self.thermal_throttle {
            None => w.u8(0),
            Some(t) => {
                w.u8(1);
                w.f64(t.limit_c);
                w.f64(t.resume_c);
            }
        }
        match self.transfer {
            None => w.u8(0),
            Some(t) => {
                w.u8(1);
                w.u32(u32::try_from(t.from).expect("index fits u32"));
                w.u32(u32::try_from(t.to).expect("index fits u32"));
                w.f64(t.power_w);
                w.f64(t.remaining_s);
            }
        }
        for c in &self.cells {
            w.f64(c.soc);
            w.f64(c.v_rc);
            w.f64(c.energy_out_j);
            w.f64(c.energy_in_j);
            w.f64(c.heat_j);
            w.f64(c.fault_r_mult);
            w.u32(c.aging.cycles);
            w.f64(c.aging.cumulative_frac);
            w.f64(c.aging.capacity_fraction);
            w.f64(c.aging.crate_accum);
            w.f64(c.aging.crate_weight);
            match c.thermal {
                None => w.u8(0),
                Some(t) => {
                    w.u8(1);
                    w.f64(t.temperature_c());
                    w.f64(t.ambient_c);
                    w.f64(t.r_th_k_per_w);
                    w.f64(t.c_th_j_per_k);
                }
            }
        }
        for g in &self.gauges {
            w.f64(g.net_c);
            w.f64(g.discharged_c);
            w.f64(g.charged_c);
            w.f64(g.soc_estimate);
            w.f64(g.rest_s);
            w.f64(g.last_v);
            w.f64(g.last_i);
            w.f64(g.cycle_accum);
            w.u32(g.cycles);
            match g.anchor_soc {
                None => w.u8(0),
                Some(a) => {
                    w.u8(1);
                    w.f64(a);
                }
            }
            w.f64(g.learned_capacity_ah);
            w.u32(g.capacity_observations);
            match g.fault {
                None => w.u8(0),
                Some(GaugeFault::StuckSoc) => w.u8(1),
                Some(GaugeFault::BiasRamp { amps_per_hour }) => {
                    w.u8(2);
                    w.f64(amps_per_hour);
                }
                Some(GaugeFault::QuantizationStorm { lsb_scale }) => {
                    w.u8(3);
                    w.f64(lsb_scale);
                }
            }
            w.f64(g.fault_elapsed_s);
            w.f64(g.fault_frozen_soc);
        }
        w.0
    }

    /// Deserializes a snapshot written by [`PackSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (bad magic,
    /// unsupported version, truncation, trailing bytes, invalid tags).
    pub fn from_bytes(bytes: &[u8]) -> Result<PackSnapshot, String> {
        let mut r = Reader { b: bytes, at: 0 };
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err("not a pack snapshot (bad magic)".into());
        }
        let version = r.u32()?;
        if version != PACK_SNAPSHOT_VERSION {
            return Err(format!(
                "unsupported snapshot version {version} (expected {PACK_SNAPSHOT_VERSION})"
            ));
        }
        let n = r.u32()? as usize;
        let mut s = PackSnapshot {
            time_s: r.f64()?,
            delivered_j: r.f64()?,
            circuit_loss_j: r.f64()?,
            cell_heat_j: r.f64()?,
            unmet_j: r.f64()?,
            external_in_j: r.f64()?,
            ..PackSnapshot::default()
        };
        s.discharge_ratios.reserve(n);
        s.charge_ratios.reserve(n);
        s.present.reserve(n);
        s.throttled.reserve(n);
        s.profile_kinds.reserve(n);
        for _ in 0..n {
            s.discharge_ratios.push(r.f64()?);
            s.charge_ratios.push(r.f64()?);
            s.present.push(r.bool()?);
            s.throttled.push(r.bool()?);
            s.profile_kinds.push(match r.u8()? {
                0 => ProfileKind::Standard,
                1 => ProfileKind::Fast,
                2 => ProfileKind::Gentle,
                t => return Err(format!("bad profile kind tag {t}")),
            });
        }
        s.thermal_throttle = match r.u8()? {
            0 => None,
            1 => Some(ThermalThrottle {
                limit_c: r.f64()?,
                resume_c: r.f64()?,
            }),
            t => return Err(format!("bad throttle tag {t}")),
        };
        s.transfer = match r.u8()? {
            0 => None,
            1 => Some(TransferSnapshot {
                from: r.u32()? as usize,
                to: r.u32()? as usize,
                power_w: r.f64()?,
                remaining_s: r.f64()?,
            }),
            t => return Err(format!("bad transfer tag {t}")),
        };
        s.cells.reserve(n);
        for _ in 0..n {
            let soc = r.f64()?;
            let v_rc = r.f64()?;
            let energy_out_j = r.f64()?;
            let energy_in_j = r.f64()?;
            let heat_j = r.f64()?;
            let fault_r_mult = r.f64()?;
            let aging = AgingStateSnapshot {
                cycles: r.u32()?,
                cumulative_frac: r.f64()?,
                capacity_fraction: r.f64()?,
                crate_accum: r.f64()?,
                crate_weight: r.f64()?,
            };
            let thermal = match r.u8()? {
                0 => None,
                1 => {
                    let temperature_c = r.f64()?;
                    let ambient_c = r.f64()?;
                    let r_th = r.f64()?;
                    let c_th = r.f64()?;
                    let mut m = ThermalModel::new(ambient_c, r_th, c_th);
                    m.set_temperature_c(temperature_c);
                    Some(m)
                }
                t => return Err(format!("bad thermal tag {t}")),
            };
            s.cells.push(CellStateSnapshot {
                soc,
                v_rc,
                energy_out_j,
                energy_in_j,
                heat_j,
                fault_r_mult,
                aging,
                thermal,
            });
        }
        s.gauges.reserve(n);
        for _ in 0..n {
            let net_c = r.f64()?;
            let discharged_c = r.f64()?;
            let charged_c = r.f64()?;
            let soc_estimate = r.f64()?;
            let rest_s = r.f64()?;
            let last_v = r.f64()?;
            let last_i = r.f64()?;
            let cycle_accum = r.f64()?;
            let cycles = r.u32()?;
            let anchor_soc = match r.u8()? {
                0 => None,
                1 => Some(r.f64()?),
                t => return Err(format!("bad anchor tag {t}")),
            };
            let learned_capacity_ah = r.f64()?;
            let capacity_observations = r.u32()?;
            let fault = match r.u8()? {
                0 => None,
                1 => Some(GaugeFault::StuckSoc),
                2 => Some(GaugeFault::BiasRamp {
                    amps_per_hour: r.f64()?,
                }),
                3 => Some(GaugeFault::QuantizationStorm {
                    lsb_scale: r.f64()?,
                }),
                t => return Err(format!("bad gauge fault tag {t}")),
            };
            s.gauges.push(GaugeStateSnapshot {
                net_c,
                discharged_c,
                charged_c,
                soc_estimate,
                rest_s,
                last_v,
                last_i,
                cycle_accum,
                cycles,
                anchor_soc,
                learned_capacity_ah,
                capacity_observations,
                fault,
                fault_elapsed_s: r.f64()?,
                fault_frozen_soc: r.f64()?,
            });
        }
        if r.at != bytes.len() {
            return Err(format!(
                "trailing bytes: {} of {} consumed",
                r.at,
                bytes.len()
            ));
        }
        Ok(s)
    }
}

struct Writer(Vec<u8>);

impl Writer {
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.0.push(u8::from(v));
    }
}

struct Reader<'a> {
    b: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, len: usize) -> Result<&[u8], String> {
        let end = self.at.checked_add(len).ok_or("length overflow")?;
        if end > self.b.len() {
            return Err("truncated snapshot".into());
        }
        let s = &self.b[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn f64(&mut self) -> Result<f64, String> {
        let s = self.take(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(s.try_into().unwrap())))
    }
    fn u32(&mut self) -> Result<u32, String> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(format!("bad bool byte {t}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Canonical FNV-1a 64 vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digest_flags_any_single_bit_of_state() {
        let mut s = PackSnapshot {
            time_s: 12.5,
            delivered_j: 3.0,
            ..PackSnapshot::default()
        };
        let d0 = s.digest();
        assert_eq!(d0, s.clone().digest(), "digest is a pure function");
        s.delivered_j = f64::from_bits(s.delivered_j.to_bits() ^ 1);
        assert_ne!(d0, s.digest(), "one ulp of drift must change the digest");
    }
}
