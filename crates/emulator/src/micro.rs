//! The SDB microcontroller.
//!
//! "A microcontroller interfaces between this power distribution circuitry
//! and the mobile device OS to control the charging and discharging of
//! batteries" (Section 3.1). Policies live in the OS; the microcontroller
//! only *enforces* the ratios it is handed (Section 3.1: "we only implement
//! the mechanisms in hardware, and all policies are managed and set by the
//! OS"). This module implements those mechanisms over the simulated cells
//! and circuits, with full energy accounting.

use crate::pack::PackConfig;
use crate::profile::{ChargingProfile, ProfileKind};
use crate::snapshot::{PackSnapshot, TransferSnapshot};
use sdb_battery_model::error::BatteryError;
use sdb_battery_model::thevenin::TheveninCell;
use sdb_fuel_gauge::gauge::{BatteryStatus, FuelGauge};
use sdb_observe::{Counter, Flow, ObsEvent, Observer, SpanName};
use sdb_power_electronics::circuits::{ChargeCircuit, DischargeCircuit};
use sdb_power_electronics::error::{check_ratios, PowerError};
use sdb_power_electronics::measurement::ShareChain;

/// Counter handles the firmware hot paths update without touching the
/// registry lock (registered once in [`Microcontroller::set_observer`]).
#[derive(Debug, Clone)]
struct MicroMetrics {
    steps: Counter,
    brownout_steps: Counter,
    safety_clamps: Counter,
    ratio_pushes_charge: Counter,
    ratio_pushes_discharge: Counter,
    throttle_transitions: Counter,
}

/// Firmware thermal charge-throttle: when a charging cell exceeds
/// `limit_c`, the microcontroller drops it to the gentle profile until it
/// cools below `resume_c` ("the SDB microcontroller dynamically selects
/// the appropriate charging profile", Section 3.2.2; temperature is one of
/// the paper's policy triggers, Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalThrottle {
    /// Temperature at which charging throttles, °C.
    pub limit_c: f64,
    /// Temperature below which full-rate charging resumes, °C.
    pub resume_c: f64,
}

impl ThermalThrottle {
    /// A conservative consumer-device policy: throttle at 45 °C, resume at
    /// 40 °C.
    #[must_use]
    pub fn consumer() -> Self {
        Self {
            limit_c: 45.0,
            resume_c: 40.0,
        }
    }
}

/// An in-flight `ChargeOneFromAnother(X, Y, W, T)` order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Transfer {
    from: usize,
    to: usize,
    power_w: f64,
    remaining_s: f64,
}

/// Per-battery information for one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryStepInfo {
    /// Current drawn from (positive) or pushed into (negative) the cell,
    /// amps.
    pub current_a: f64,
    /// Terminal voltage, volts.
    pub terminal_v: f64,
    /// State of charge after the step.
    pub soc: f64,
    /// Heat dissipated in the cell this step, watts.
    pub heat_w: f64,
}

/// Outcome of one emulation step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// Emulation time after the step, seconds.
    pub time_s: f64,
    /// Load requested, watts.
    pub load_w: f64,
    /// Load actually supplied, watts.
    pub supplied_w: f64,
    /// Unserved load (brownout), watts.
    pub unmet_w: f64,
    /// Power lost in the switching/charging circuits, watts.
    pub circuit_loss_w: f64,
    /// Heat dissipated inside all cells, watts.
    pub cell_heat_w: f64,
    /// External supply power consumed, watts.
    pub external_used_w: f64,
    /// Power delivered *into* cells while charging, watts.
    pub charged_w: f64,
    /// Per-battery detail.
    pub batteries: BatterySteps,
}

/// Per-battery step details for a [`StepReport`].
///
/// Behaves like a boxed slice of [`BatteryStepInfo`] (it derefs to
/// `[BatteryStepInfo]`, so indexing, `iter()`, `len()`, and `for` loops
/// all work), but stores up to [`BatterySteps::INLINE`] entries inline:
/// reporting a step for a typical pack (the paper's devices have 2–4
/// batteries) performs no heap allocation. Larger packs spill to a `Vec`.
#[derive(Clone)]
pub struct BatterySteps {
    len: usize,
    inline: [BatteryStepInfo; Self::INLINE],
    spill: Vec<BatteryStepInfo>,
}

impl BatterySteps {
    /// Maximum entry count stored without a heap allocation.
    pub const INLINE: usize = 8;

    const EMPTY: BatteryStepInfo = BatteryStepInfo {
        current_a: 0.0,
        terminal_v: 0.0,
        soc: 0.0,
        heat_w: 0.0,
    };

    /// Copies `items` into an inline (or, beyond [`BatterySteps::INLINE`]
    /// entries, heap-spilled) buffer.
    #[must_use]
    pub fn from_slice(items: &[BatteryStepInfo]) -> Self {
        let mut inline = [Self::EMPTY; Self::INLINE];
        if items.len() <= Self::INLINE {
            inline[..items.len()].copy_from_slice(items);
            Self {
                len: items.len(),
                inline,
                spill: Vec::new(),
            }
        } else {
            Self {
                len: items.len(),
                inline,
                spill: items.to_vec(),
            }
        }
    }

    /// The entries as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[BatteryStepInfo] {
        if self.len <= Self::INLINE {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// The entries as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [BatteryStepInfo] {
        if self.len <= Self::INLINE {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }
}

impl std::ops::Deref for BatterySteps {
    type Target = [BatteryStepInfo];
    fn deref(&self) -> &Self::Target {
        self.as_slice()
    }
}

impl std::ops::DerefMut for BatterySteps {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.as_mut_slice()
    }
}

impl std::fmt::Debug for BatterySteps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for BatterySteps {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a BatterySteps {
    type Item = &'a BatteryStepInfo;
    type IntoIter = std::slice::Iter<'a, BatteryStepInfo>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a> IntoIterator for &'a mut BatterySteps {
    type Item = &'a mut BatteryStepInfo;
    type IntoIter = std::slice::IterMut<'a, BatteryStepInfo>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

/// Preallocated working buffers for [`Microcontroller::step`].
///
/// The step loop is the simulation's innermost hot path (one call per
/// device per trace point across a whole fleet); these buffers are
/// allocated once at pack construction and reused so a steady-state step
/// performs zero heap allocations. `step` moves the scratch out of `self`
/// (`mem::take` of empty vectors — no allocation) so the buffers can be
/// borrowed alongside `&mut self` helper calls, and moves it back before
/// returning.
#[derive(Debug, Clone, Default)]
struct StepScratch {
    /// Per-battery outcome being assembled (becomes the report).
    info: Vec<BatteryStepInfo>,
    /// Per-battery deliverable-power ceiling for the planning pass.
    p_max: Vec<f64>,
    /// Per-battery planned power allocation.
    alloc: Vec<f64>,
    /// Working copy of the discharge ratios (zeroed as cells saturate).
    shares: Vec<f64>,
    /// Whether each battery served its full allotment (top-up pass).
    full_served: Vec<bool>,
    /// Events staged during the step, flushed in one batch.
    events: Vec<(f64, ObsEvent)>,
}

impl StepScratch {
    fn with_capacity(n: usize) -> Self {
        Self {
            info: Vec::with_capacity(n),
            p_max: Vec::with_capacity(n),
            alloc: Vec::with_capacity(n),
            shares: Vec::with_capacity(n),
            full_served: Vec::with_capacity(n),
            events: Vec::with_capacity(2 * n + 4),
        }
    }
}

/// The emulated SDB microcontroller and its pack.
#[derive(Debug, Clone)]
pub struct Microcontroller {
    cells: Vec<TheveninCell>,
    gauges: Vec<FuelGauge>,
    profiles: Vec<ChargingProfile>,
    discharge_ratios: Vec<f64>,
    charge_ratios: Vec<f64>,
    discharge_circuit: DischargeCircuit,
    charge_circuit: ChargeCircuit,
    share_chain: ShareChain,
    transfer: Option<Transfer>,
    /// Physical presence per battery (detachable packs may be absent).
    present: Vec<bool>,
    /// Optional firmware thermal throttle for charging.
    thermal_throttle: Option<ThermalThrottle>,
    /// Per-battery throttle latch.
    throttled: Vec<bool>,
    time_s: f64,
    delivered_j: f64,
    circuit_loss_j: f64,
    cell_heat_j: f64,
    unmet_j: f64,
    external_in_j: f64,
    /// Observability hook (no-op unless an observer is installed).
    observer: Observer,
    /// Cached metric handles (present only when the observer has a
    /// registry).
    metrics: Option<MicroMetrics>,
    /// Reusable step working buffers (see [`StepScratch`]).
    scratch: StepScratch,
}

impl Microcontroller {
    /// Builds the controller from a pack configuration.
    ///
    /// # Panics
    ///
    /// Panics if the pack has no slots (checked by the builder).
    #[must_use]
    pub fn new(config: PackConfig) -> Self {
        let n = config.slots.len();
        assert!(n > 0, "a pack needs at least one battery");
        let mut cells = Vec::with_capacity(n);
        let mut gauges = Vec::with_capacity(n);
        let mut profiles = Vec::with_capacity(n);
        let max_charge_a = config
            .slots
            .iter()
            .map(|s| s.spec.max_charge_a)
            .fold(0.0f64, f64::max);
        for slot in config.slots {
            profiles.push(ChargingProfile::for_spec(slot.profile, &slot.spec));
            // The gauge and the cell share the slot's Arc'd spec — an Arc
            // clone, not a deep copy of the curve tables.
            gauges.push(FuelGauge::new(
                std::sync::Arc::clone(&slot.spec),
                slot.initial_soc,
                config.gauge,
            ));
            let capacity_ah = slot.spec.capacity_ah;
            let mut cell = TheveninCell::with_soc(slot.spec, slot.initial_soc);
            if let Some(ambient) = config.ambient_c {
                cell = cell.with_thermal(
                    sdb_battery_model::thermal::ThermalModel::for_capacity_at(capacity_ah, ambient),
                );
            }
            cells.push(cell);
        }
        let mut micro = Self {
            cells,
            gauges,
            profiles,
            discharge_ratios: vec![1.0 / n as f64; n],
            charge_ratios: vec![1.0 / n as f64; n],
            discharge_circuit: DischargeCircuit::new(config.discharge_topology, n),
            charge_circuit: ChargeCircuit::new(config.charge_topology, n, max_charge_a.max(1.0)),
            share_chain: ShareChain::prototype(),
            transfer: None,
            present: vec![true; n],
            thermal_throttle: None,
            throttled: vec![false; n],
            time_s: 0.0,
            delivered_j: 0.0,
            circuit_loss_j: 0.0,
            cell_heat_j: 0.0,
            unmet_j: 0.0,
            external_in_j: 0.0,
            observer: Observer::disabled(),
            metrics: None,
            scratch: StepScratch::with_capacity(n),
        };
        micro.set_observer(sdb_observe::global());
        micro
    }

    /// Installs the observability hook on the firmware and every fuel
    /// gauge. Pass [`Observer::disabled`] to turn instrumentation off
    /// again. New controllers default to [`sdb_observe::global`].
    pub fn set_observer(&mut self, observer: Observer) {
        self.metrics = observer.registry().map(|reg| MicroMetrics {
            steps: reg.counter("sdb_micro_steps_total", &[]),
            brownout_steps: reg.counter("sdb_micro_brownout_steps_total", &[]),
            safety_clamps: reg.counter("sdb_safety_clamps_total", &[]),
            ratio_pushes_charge: reg.counter("sdb_ratio_pushes_total", &[("flow", "charge")]),
            ratio_pushes_discharge: reg.counter("sdb_ratio_pushes_total", &[("flow", "discharge")]),
            throttle_transitions: reg.counter("sdb_thermal_throttle_transitions_total", &[]),
        });
        for (i, gauge) in self.gauges.iter_mut().enumerate() {
            gauge.set_observer(observer.clone(), i);
        }
        self.observer = observer;
    }

    /// The installed observability hook.
    #[must_use]
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Number of batteries in the pack.
    #[must_use]
    pub fn battery_count(&self) -> usize {
        self.cells.len()
    }

    /// `Discharge(d1, ..., dN)`: sets the discharge power ratios. The
    /// hardware realizes each ratio through the share chain (duty
    /// quantization + sensor mismatch) and renormalizes.
    ///
    /// # Errors
    ///
    /// [`PowerError::WrongChannelCount`] / [`PowerError::InvalidRatios`]
    /// for malformed tuples.
    pub fn set_discharge_ratios(&mut self, ratios: &[f64]) -> Result<(), PowerError> {
        self.check_ratio_tuple(ratios)?;
        realize_into(&self.share_chain, ratios, &mut self.discharge_ratios);
        if let Some(m) = &self.metrics {
            m.ratio_pushes_discharge.inc();
        }
        if self.observer.wants_events() {
            self.observer.emit(ObsEvent::RatioPush {
                flow: Flow::Discharge,
                ratios: self.discharge_ratios.clone(),
            });
        }
        Ok(())
    }

    /// `Charge(c1, ..., cN)`: sets the charge power ratios.
    ///
    /// # Errors
    ///
    /// As [`Microcontroller::set_discharge_ratios`].
    pub fn set_charge_ratios(&mut self, ratios: &[f64]) -> Result<(), PowerError> {
        self.check_ratio_tuple(ratios)?;
        realize_into(&self.share_chain, ratios, &mut self.charge_ratios);
        if let Some(m) = &self.metrics {
            m.ratio_pushes_charge.inc();
        }
        if self.observer.wants_events() {
            self.observer.emit(ObsEvent::RatioPush {
                flow: Flow::Charge,
                ratios: self.charge_ratios.clone(),
            });
        }
        Ok(())
    }

    fn check_ratio_tuple(&self, ratios: &[f64]) -> Result<(), PowerError> {
        if ratios.len() != self.cells.len() {
            return Err(PowerError::WrongChannelCount {
                expected: self.cells.len(),
                got: ratios.len(),
            });
        }
        check_ratios(ratios)
    }

    /// Credits `n` emulation steps that the SoA engine fast-forwarded
    /// past, keeping the step counters engine-invariant.
    pub fn credit_skipped_steps(&self, n: u64) {
        if let Some(m) = &self.metrics {
            m.steps.add(n);
        }
    }

    /// `ChargeOneFromAnother(X, Y, W, T)`: charge battery `to` from battery
    /// `from` with `power_w` watts for `duration_s` seconds.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] for bad indices, self-transfer, or
    /// non-positive power/duration.
    pub fn charge_one_from_another(
        &mut self,
        from: usize,
        to: usize,
        power_w: f64,
        duration_s: f64,
    ) -> Result<(), PowerError> {
        if from >= self.cells.len() || to >= self.cells.len() || from == to {
            return Err(PowerError::InvalidParameter {
                name: "battery index",
                value: to as f64,
            });
        }
        if !power_w.is_finite() || power_w <= 0.0 {
            return Err(PowerError::InvalidParameter {
                name: "power_w",
                value: power_w,
            });
        }
        if !duration_s.is_finite() || duration_s <= 0.0 {
            return Err(PowerError::InvalidParameter {
                name: "duration_s",
                value: duration_s,
            });
        }
        self.transfer = Some(Transfer {
            from,
            to,
            power_w,
            remaining_s: duration_s,
        });
        Ok(())
    }

    /// Attaches or detaches a battery (e.g. a 2-in-1 keyboard base being
    /// undocked). An absent battery supplies no power, accepts no charge,
    /// and aborts any transfer it participates in.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] for an out-of-range index.
    pub fn set_battery_present(&mut self, battery: usize, present: bool) -> Result<(), PowerError> {
        if battery >= self.cells.len() {
            return Err(PowerError::InvalidParameter {
                name: "battery index",
                value: battery as f64,
            });
        }
        if self.present[battery] != present {
            self.observer
                .emit(ObsEvent::BatteryPresence { battery, present });
        }
        self.present[battery] = present;
        if !present {
            if let Some(t) = self.transfer {
                if t.from == battery || t.to == battery {
                    self.transfer = None;
                }
            }
        }
        Ok(())
    }

    /// Whether a battery is physically attached.
    ///
    /// # Panics
    ///
    /// Panics if `battery` is out of range.
    #[must_use]
    pub fn battery_present(&self, battery: usize) -> bool {
        self.present[battery]
    }

    /// Cancels any in-flight battery-to-battery transfer.
    pub fn cancel_transfer(&mut self) {
        self.transfer = None;
    }

    /// Installs (or with `None` clears) a measurement fault on one
    /// battery's fuel gauge (chaos testing).
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] for an out-of-range index.
    pub fn set_gauge_fault(
        &mut self,
        battery: usize,
        fault: Option<sdb_fuel_gauge::gauge::GaugeFault>,
    ) -> Result<(), PowerError> {
        let Some(gauge) = self.gauges.get_mut(battery) else {
            return Err(PowerError::InvalidParameter {
                name: "battery index",
                value: battery as f64,
            });
        };
        gauge.set_fault(fault);
        Ok(())
    }

    /// The active fault on one battery's gauge, if any.
    ///
    /// # Panics
    ///
    /// Panics if `battery` is out of range.
    #[must_use]
    pub fn gauge_fault(&self, battery: usize) -> Option<sdb_fuel_gauge::gauge::GaugeFault> {
        self.gauges[battery].fault()
    }

    /// Installs (or with `1.0` clears) a fault resistance multiplier on
    /// one cell, emulating sudden DCIR growth (chaos testing).
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] for an out-of-range index.
    pub fn set_cell_fault_resistance(
        &mut self,
        battery: usize,
        mult: f64,
    ) -> Result<(), PowerError> {
        let Some(cell) = self.cells.get_mut(battery) else {
            return Err(PowerError::InvalidParameter {
                name: "battery index",
                value: battery as f64,
            });
        };
        cell.set_fault_resistance_mult(mult);
        Ok(())
    }

    /// Installs (or clears) the firmware thermal charge-throttle. Only
    /// effective on packs built with thermal simulation enabled
    /// ([`crate::pack::PackBuilder::ambient_c`]).
    pub fn set_thermal_throttle(&mut self, throttle: Option<ThermalThrottle>) {
        self.thermal_throttle = throttle;
        if throttle.is_none() {
            self.throttled.iter_mut().for_each(|t| *t = false);
        }
    }

    /// Whether a battery's charging is currently thermally throttled.
    ///
    /// # Panics
    ///
    /// Panics if `battery` is out of range.
    #[must_use]
    pub fn is_throttled(&self, battery: usize) -> bool {
        self.throttled[battery]
    }

    /// Cell temperature in °C (`None` when thermal simulation is off).
    ///
    /// # Panics
    ///
    /// Panics if `battery` is out of range.
    #[must_use]
    pub fn cell_temperature_c(&self, battery: usize) -> Option<f64> {
        self.cells[battery].temperature_c()
    }

    /// Whether a battery-to-battery transfer is in flight.
    #[must_use]
    pub fn transfer_active(&self) -> bool {
        self.transfer.is_some()
    }

    /// `QueryBatteryStatus()`: per-battery gauge rows (absent batteries are
    /// flagged).
    #[must_use]
    pub fn query_battery_status(&self) -> Vec<BatteryStatus> {
        self.gauges
            .iter()
            .zip(&self.present)
            .map(|(g, &present)| {
                let mut s = g.status();
                s.present = present;
                s
            })
            .collect()
    }

    /// Selects a charging profile for one battery.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidParameter`] for a bad index.
    pub fn select_profile(&mut self, battery: usize, kind: ProfileKind) -> Result<(), PowerError> {
        let cell = self
            .cells
            .get(battery)
            .ok_or(PowerError::InvalidParameter {
                name: "battery index",
                value: battery as f64,
            })?;
        // Build the profile while the immutable borrow is live; no spec
        // clone needed.
        let new_profile = ChargingProfile::for_spec(kind, cell.spec());
        let from = self.profiles[battery].kind;
        self.profiles[battery] = new_profile;
        if from != kind {
            self.observer.emit(ObsEvent::ProfileTransition {
                battery,
                from: from.name(),
                to: kind.name(),
            });
        }
        Ok(())
    }

    /// The charge current battery `battery` can currently accept under its
    /// selected profile and rating, amps.
    ///
    /// # Panics
    ///
    /// Panics if `battery` is out of range.
    #[must_use]
    pub fn charge_acceptance_a(&self, battery: usize) -> f64 {
        let cell = &self.cells[battery];
        if !self.present[battery] || cell.is_full() {
            0.0
        } else {
            self.profiles[battery]
                .current_at(cell.soc())
                .min(cell.spec().max_charge_a)
        }
    }

    /// Ground-truth cell access (the emulator's "oracle"; scenario code and
    /// metrics use it, the OS runtime must go through the gauges).
    #[must_use]
    pub fn cells(&self) -> &[TheveninCell] {
        &self.cells
    }

    /// The fuel-gauge front-end configuration (identical across slots).
    #[must_use]
    pub fn gauge_config(&self) -> sdb_fuel_gauge::gauge::GaugeConfig {
        self.gauges[0].config()
    }

    /// Current discharge ratios as realized by the hardware.
    #[must_use]
    pub fn discharge_ratios(&self) -> &[f64] {
        &self.discharge_ratios
    }

    /// Current charge ratios as realized by the hardware.
    #[must_use]
    pub fn charge_ratios(&self) -> &[f64] {
        &self.charge_ratios
    }

    /// Emulation time, seconds.
    #[must_use]
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Lifetime accounting: `(delivered, circuit_loss, cell_heat, unmet,
    /// external_in)`, joules.
    #[must_use]
    pub fn energy_totals_j(&self) -> (f64, f64, f64, f64, f64) {
        (
            self.delivered_j,
            self.circuit_loss_j,
            self.cell_heat_j,
            self.unmet_j,
            self.external_in_j,
        )
    }

    /// Advances the emulation by `dt_s` seconds with a system load of
    /// `load_w` watts and `external_w` watts of external supply available.
    ///
    /// Semantics: external power first serves the load (bypassing the
    /// batteries); the surplus charges batteries per the charge ratios and
    /// their profiles; any load not covered by external power is drawn from
    /// the batteries per the discharge ratios. A battery that cannot supply
    /// its allotted share (empty / power-infeasible) has its share
    /// redistributed to the others; anything still unserved is reported as
    /// unmet.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s`, `load_w` or `external_w` are negative or
    /// non-finite.
    // Index loops are deliberate: each iteration calls `&mut self` helpers,
    // which rules out holding iterator borrows over the fields.
    #[allow(clippy::needless_range_loop)]
    pub fn step(&mut self, load_w: f64, external_w: f64, dt_s: f64) -> StepReport {
        assert!(dt_s.is_finite() && dt_s > 0.0, "bad dt: {dt_s}");
        assert!(load_w.is_finite() && load_w >= 0.0, "bad load: {load_w}");
        assert!(
            external_w.is_finite() && external_w >= 0.0,
            "bad external: {external_w}"
        );
        self.observer.set_clock(self.time_s);
        let _span = self.observer.span(SpanName::MicroStep);
        // Sampling-gate profiling scope: counts every step, wall-clock
        // times 1-in-N (inheriting the scheduler's gate when nested under
        // a TraceStep). The `hot_sub` guards below are a single branch on
        // cold steps, keeping profiler overhead within the ≤5 % budget
        // the micro-step bench asserts.
        let prof_step = sdb_prof::step(sdb_prof::Phase::MicroStep);

        let n = self.cells.len();
        // Move the scratch buffers out of `self` (a take of empty vectors,
        // no allocation) so they can be borrowed alongside `&mut self`
        // helper calls; they are moved back before returning.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.events.clear();
        // Firmware housekeeping: refresh the thermal-throttle latches.
        for i in 0..n {
            self.update_throttle_latch(i, &mut scratch.events);
        }
        scratch.info.clear();
        scratch
            .info
            .extend(self.cells.iter().map(|c| BatteryStepInfo {
                current_a: 0.0,
                terminal_v: c.terminal_voltage(0.0),
                soc: c.soc(),
                heat_w: 0.0,
            }));
        let info = &mut scratch.info;

        let mut circuit_loss_w = 0.0;
        let mut cell_heat_w = 0.0;
        let mut supplied_w = 0.0;
        let mut unmet_w = 0.0;
        let mut external_used_w = 0.0;
        let mut charged_w = 0.0;

        // 1. External power covers the load first.
        let load_from_external = load_w.min(external_w);
        supplied_w += load_from_external;
        external_used_w += load_from_external;
        let battery_load_w = load_w - load_from_external;
        let surplus_external_w = external_w - load_from_external;

        // 2. Battery discharge for the remaining load.
        if battery_load_w > 0.0 {
            let prof_curve = prof_step.hot_sub(sdb_prof::Phase::CurveEval);
            // Mean loaded terminal voltage across non-empty cells (for the
            // circuit loss estimate), reusing the voltages just computed
            // into `info` — nothing has mutated the cells since, so this
            // is bit-identical to recomputing them.
            let mean_v = {
                let (sum, count) = self
                    .cells
                    .iter()
                    .zip(info.iter())
                    .filter(|(c, _)| !c.is_empty())
                    .fold((0.0, 0usize), |(s, k), (_, b)| (s + b.terminal_v, k + 1));
                if count == 0 {
                    3.7
                } else {
                    sum / count as f64
                }
            };
            let loss_w = self
                .discharge_circuit
                .loss_w(battery_load_w, mean_v)
                .unwrap_or(0.0);
            let total_draw_w = battery_load_w + loss_w;

            // Plan first, then apply: allocate power across batteries
            // without touching cell state, capping each at what it can
            // physically deliver this step (current limit, quadratic power
            // ceiling, and remaining energy), redistributing the excess.
            // Each cell is then stepped exactly once, so gauges, thermal
            // state, and per-cell current limits all see the real combined
            // draw.
            scratch.p_max.clear();
            scratch.p_max.extend((0..n).map(|i| {
                if !self.present[i] || self.cells[i].is_empty() {
                    return 0.0;
                }
                // Current-cap, quadratic, and remaining-energy bounds in
                // one query (one OCV/DCIR lookup instead of five).
                self.cells[i].plan_discharge_cap_w(dt_s)
            }));
            let p_max = &scratch.p_max;
            drop(prof_curve);
            let prof_rc = prof_step.hot_sub(sdb_prof::Phase::RcState);

            scratch.alloc.clear();
            scratch.alloc.resize(n, 0.0);
            let alloc = &mut scratch.alloc;
            scratch.shares.clear();
            scratch.shares.extend_from_slice(&self.discharge_ratios);
            let shares = &mut scratch.shares;
            for (i, share) in shares.iter_mut().enumerate() {
                if p_max[i] <= 0.0 {
                    *share = 0.0;
                }
            }
            let mut remaining_w = total_draw_w;
            for _round in 0..n {
                let sum: f64 = shares.iter().sum();
                if sum <= 0.0 || remaining_w <= 1e-12 {
                    break;
                }
                let mut next_remaining = 0.0;
                for i in 0..n {
                    let share = shares[i] / sum;
                    if share <= 0.0 {
                        continue;
                    }
                    let want = remaining_w * share;
                    let headroom = (p_max[i] - alloc[i]).max(0.0);
                    let take = want.min(headroom);
                    alloc[i] += take;
                    if take < want - 1e-12 {
                        // Saturated: drop from future rounds.
                        shares[i] = 0.0;
                        next_remaining += want - take;
                    }
                }
                if next_remaining <= 1e-12 {
                    break;
                }
                remaining_w = next_remaining;
            }

            // Apply: one step per allocated battery.
            let mut served = 0.0f64;
            scratch.full_served.clear();
            scratch.full_served.resize(n, false);
            let full_served = &mut scratch.full_served;
            for i in 0..n {
                if alloc[i] <= 0.0 {
                    continue;
                }
                match self.try_discharge(i, alloc[i], dt_s, &mut scratch.events) {
                    Ok((out, time_frac, power_frac)) => {
                        info[i] = out;
                        // Heat is a rate over the time actually simulated.
                        cell_heat_w += out.heat_w * time_frac;
                        served += alloc[i] * time_frac * power_frac;
                        full_served[i] = time_frac * power_frac > 1.0 - 1e-9;
                    }
                    Err(_) => {
                        // Planned-feasible but failed (e.g. emptied by a
                        // concurrent transfer): counts as unserved.
                    }
                }
            }
            // Top-up pass: a cell that emptied mid-step leaves a small
            // truncation shortfall the energy bound could not foresee.
            // Offer it once to the cells that served their full allotment
            // and still have headroom (they get a second, small draw this
            // step — the per-battery report keeps the main draw).
            let mut shortfall = (total_draw_w - served).max(0.0);
            if shortfall > 1e-9 {
                for i in 0..n {
                    if shortfall <= 1e-9 {
                        break;
                    }
                    if !full_served[i] {
                        continue;
                    }
                    let headroom = (p_max[i] - alloc[i]).max(0.0);
                    let extra = shortfall.min(headroom);
                    if extra <= 1e-9 {
                        continue;
                    }
                    if let Ok((out, time_frac, power_frac)) =
                        self.try_discharge(i, extra, dt_s, &mut scratch.events)
                    {
                        cell_heat_w += out.heat_w * time_frac;
                        let got = extra * time_frac * power_frac;
                        served += got;
                        shortfall -= got;
                        // Merge into the per-battery record so the gauges
                        // integrate the cell's *combined* current.
                        info[i].current_a += out.current_a * time_frac;
                        info[i].heat_w += out.heat_w * time_frac;
                        info[i].terminal_v = out.terminal_v;
                        info[i].soc = out.soc;
                    }
                }
            }
            let served = served.min(total_draw_w);
            let actual_loss = loss_w * (served / total_draw_w.max(f64::EPSILON));
            circuit_loss_w += actual_loss;
            let served_load = (served - actual_loss).max(0.0);
            supplied_w += served_load;
            unmet_w += battery_load_w - served_load;
            drop(prof_rc);
        }

        let prof_xfer = prof_step.hot_sub(sdb_prof::Phase::ChargeTransfer);
        // 3. Surplus external power charges batteries per charge ratios.
        if surplus_external_w > 0.0 {
            for i in 0..n {
                let share = self.charge_ratios[i];
                if share <= 0.0 || self.cells[i].is_full() || !self.present[i] {
                    continue;
                }
                let v_batt = self.cells[i].terminal_voltage(0.0);
                // The channel regulator caps how much of the surplus this
                // battery can take.
                let allotted_w = (surplus_external_w * share)
                    .min(self.charge_circuit.max_channel_power_w(v_batt));
                let after_reg_w = self
                    .charge_circuit
                    .external_charge_w(allotted_w, v_batt)
                    .unwrap_or(0.0);
                let (used_w, into_cell_w, heat, outcome) =
                    self.try_charge(i, after_reg_w, dt_s, allotted_w, &mut scratch.events);
                external_used_w += used_w;
                // Regulator loss is what left the supply but never reached
                // the cell's terminals (cell-internal heat is part of the
                // terminal power and is booked under cell heat).
                circuit_loss_w += (used_w - into_cell_w).max(0.0);
                charged_w += into_cell_w;
                cell_heat_w += heat;
                if let Some(out) = outcome {
                    info[i] = out;
                }
            }
        }

        // 4. Battery-to-battery transfer.
        if let Some(mut t) = self.transfer.take() {
            let run_s = dt_s.min(t.remaining_s);
            if run_s > 0.0
                && self.present[t.from]
                && self.present[t.to]
                && !self.cells[t.from].is_empty()
                && !self.cells[t.to].is_full()
            {
                let v_src = self.cells[t.from].terminal_voltage(0.0);
                let v_dst = self.cells[t.to].terminal_voltage(0.0);
                // Cap at the channel regulator rating; average over the
                // step when the transfer ends mid-step.
                let power_w = t
                    .power_w
                    .min(self.charge_circuit.max_channel_power_w(v_src));
                // Don't draw more from the source than the destination can
                // accept (plus conversion losses): estimate the path
                // efficiency and the destination's acceptance power, and
                // cap the source draw accordingly.
                let accept_w = self.charge_acceptance_a(t.to) * v_dst.max(0.1);
                let eta_est = (self
                    .charge_circuit
                    .battery_to_battery_w(power_w.max(0.1), v_src, v_dst)
                    .unwrap_or(0.0)
                    / power_w.max(0.1))
                .clamp(0.1, 1.0);
                let power_w = power_w.min(accept_w / eta_est);
                if let Ok((out_from, src_time_frac, src_power_frac)) = {
                    let scaled = power_w * (run_s / dt_s);
                    self.try_discharge_raw(t.from, scaled, dt_s, &mut scratch.events)
                } {
                    // The source may empty mid-step: only the fraction it
                    // actually supplied moves across.
                    let src_frac = src_time_frac * src_power_frac;
                    let moved_w = power_w * (run_s / dt_s) * src_frac;
                    cell_heat_w += out_from.heat_w * src_time_frac;
                    // The source may also be serving load this step: merge
                    // the transfer draw into its record (gauges integrate
                    // the combined current).
                    info[t.from].current_a += out_from.current_a * src_time_frac;
                    info[t.from].heat_w += out_from.heat_w * src_time_frac;
                    info[t.from].terminal_v = out_from.terminal_v;
                    info[t.from].soc = out_from.soc;
                    let reachable_w = self
                        .charge_circuit
                        .battery_to_battery_w(moved_w, v_src, v_dst)
                        .unwrap_or(0.0);
                    let (_, into_cell_w, heat, outcome) =
                        self.try_charge(t.to, reachable_w, dt_s, reachable_w, &mut scratch.events);
                    // Conversion loss: source terminal power that never
                    // reached the destination's terminals (both cells'
                    // internal heats are booked separately).
                    circuit_loss_w += (moved_w - into_cell_w).max(0.0);
                    charged_w += into_cell_w;
                    cell_heat_w += heat;
                    if let Some(out) = outcome {
                        // Merge: the destination may also have been charged
                        // from the external supply this step.
                        info[t.to].current_a += out.current_a;
                        info[t.to].heat_w += out.heat_w;
                        info[t.to].terminal_v = out.terminal_v;
                        info[t.to].soc = out.soc;
                    }
                }
            }
            t.remaining_s -= run_s;
            if t.remaining_s > 1e-9 {
                self.transfer = Some(t);
            }
        }
        drop(prof_xfer);

        // Flush the events staged during phases 1–4 in one batch (one sink
        // lock per step instead of one per slot), in stage order and with
        // their original timestamps. This must happen before the gauges
        // sample: gauges emit recalibration events directly, and the trace
        // byte-order must match per-slot emission.
        if !scratch.events.is_empty() {
            let _prof_emit = prof_step.hot_sub(sdb_prof::Phase::ObserverEmit);
            self.observer.emit_staged(&mut scratch.events);
        }

        // 5. Idle cells relax; gauges sample every cell.
        {
            let _prof_gauge = prof_step.hot_sub(sdb_prof::Phase::GaugeUpdate);
            for i in 0..n {
                if info[i].current_a == 0.0 {
                    self.cells[i].rest(dt_s);
                    info[i].terminal_v = self.cells[i].terminal_voltage(0.0);
                    info[i].soc = self.cells[i].soc();
                }
                self.gauges[i].sample(info[i].terminal_v, info[i].current_a, dt_s);
            }
        }

        self.time_s += dt_s;
        self.delivered_j += supplied_w * dt_s;
        self.circuit_loss_j += circuit_loss_w * dt_s;
        self.cell_heat_j += cell_heat_w * dt_s;
        self.unmet_j += unmet_w * dt_s;
        self.external_in_j += external_used_w * dt_s;

        // Advance the shared clock so events emitted between steps (policy
        // ticks, ratio pushes) carry the post-step time.
        self.observer.set_clock(self.time_s);
        if let Some(m) = &self.metrics {
            m.steps.inc();
            if unmet_w > 1e-9 {
                m.brownout_steps.inc();
            }
        }
        if self.observer.wants_events() {
            let _prof_emit = prof_step.hot_sub(sdb_prof::Phase::ObserverEmit);
            self.observer.emit_at(
                self.time_s,
                ObsEvent::StepSample {
                    load_w,
                    supplied_w,
                    loss_w: circuit_loss_w + cell_heat_w,
                    soc: info.iter().map(|b| b.soc).collect(),
                    current_a: info.iter().map(|b| b.current_a).collect(),
                },
            );
        }

        let batteries = BatterySteps::from_slice(&scratch.info);
        self.scratch = scratch;

        StepReport {
            time_s: self.time_s,
            load_w,
            supplied_w,
            unmet_w,
            circuit_loss_w,
            cell_heat_w,
            external_used_w,
            charged_w,
            batteries,
        }
    }

    /// Attempts to discharge battery `i` at `power_w` for `dt_s`, capping
    /// at the cell's current limit. Returns the step info plus
    /// `(time_frac, power_frac)`: the fraction of the step actually
    /// simulated (< 1 when the cell emptied mid-step) and the fraction of
    /// the requested power deliverable under the current cap.
    fn try_discharge(
        &mut self,
        i: usize,
        power_w: f64,
        dt_s: f64,
        staged: &mut Vec<(f64, ObsEvent)>,
    ) -> Result<(BatteryStepInfo, f64, f64), BatteryError> {
        self.try_discharge_raw(i, power_w, dt_s, staged)
    }

    fn try_discharge_raw(
        &mut self,
        i: usize,
        power_w: f64,
        dt_s: f64,
        staged: &mut Vec<(f64, ObsEvent)>,
    ) -> Result<(BatteryStepInfo, f64, f64), BatteryError> {
        let cell = &mut self.cells[i];
        let current = cell.current_for_power(power_w)?;
        let capped = current.min(cell.spec().max_discharge_a);
        if capped < current * (1.0 - 1e-9) {
            if let Some(m) = &self.metrics {
                m.safety_clamps.inc();
            }
            Self::stage_event(
                &self.observer,
                staged,
                ObsEvent::SafetyClamp {
                    battery: i,
                    flow: Flow::Discharge,
                    requested_a: current,
                    applied_a: capped,
                },
            );
        }
        let out = cell.step_current(capped, dt_s)?;
        // Fraction of the requested energy actually served: the step may
        // truncate at empty, and the current limit may cap power below the
        // request. Only a genuinely binding current limit counts as a
        // shortfall (long steps sag slightly below the request as the cell
        // drains; that drift is not redistributable power).
        let time_frac = if dt_s > 0.0 {
            out.dt_used_s / dt_s
        } else {
            1.0
        };
        let power_frac = if power_w > 0.0 && capped < current * (1.0 - 1e-9) {
            (out.delivered_w / power_w).clamp(0.0, 1.0)
        } else {
            1.0
        };
        Ok((
            BatteryStepInfo {
                current_a: out.current_a,
                terminal_v: out.terminal_v,
                soc: out.soc,
                heat_w: out.heat_w,
            },
            time_frac,
            power_frac,
        ))
    }

    /// Updates the per-battery thermal-throttle latch from the cell's
    /// present temperature.
    fn update_throttle_latch(&mut self, i: usize, staged: &mut Vec<(f64, ObsEvent)>) {
        let Some(throttle) = self.thermal_throttle else {
            return;
        };
        let Some(temp) = self.cells[i].temperature_c() else {
            return;
        };
        if self.throttled[i] {
            if temp < throttle.resume_c {
                self.throttled[i] = false;
                self.note_throttle_transition(i, false, temp, staged);
            }
        } else if temp > throttle.limit_c {
            self.throttled[i] = true;
            self.note_throttle_transition(i, true, temp, staged);
        }
    }

    fn note_throttle_transition(
        &self,
        battery: usize,
        engaged: bool,
        temperature_c: f64,
        staged: &mut Vec<(f64, ObsEvent)>,
    ) {
        if let Some(m) = &self.metrics {
            m.throttle_transitions.inc();
        }
        Self::stage_event(
            &self.observer,
            staged,
            ObsEvent::ThermalThrottle {
                battery,
                engaged,
                temperature_c,
            },
        );
    }

    /// Stages an event for the end-of-step batched flush, stamped with the
    /// observer's current clock (identical to what a direct `emit` would
    /// have stamped — the step clock is constant across phases 1–4).
    /// Events are dropped when no sink is attached, exactly like `emit`.
    fn stage_event(observer: &Observer, staged: &mut Vec<(f64, ObsEvent)>, event: ObsEvent) {
        if observer.wants_events() {
            staged.push((observer.clock_s(), event));
        }
    }

    /// Attempts to push `power_w` into battery `i`'s terminals for `dt_s`,
    /// capped by the selected charging profile and the cell's charge
    /// current limit. Returns `(external power consumed, power into cell,
    /// cell heat, per-battery info)`.
    fn try_charge(
        &mut self,
        i: usize,
        power_w: f64,
        dt_s: f64,
        allotted_w: f64,
        staged: &mut Vec<(f64, ObsEvent)>,
    ) -> (f64, f64, f64, Option<BatteryStepInfo>) {
        if power_w <= 0.0 {
            return (0.0, 0.0, 0.0, None);
        }
        let (cap_i, hard_cap_binds) = {
            let cell = &self.cells[i];
            let profile_cap = if self.throttled[i] {
                ChargingProfile::for_spec(ProfileKind::Gentle, cell.spec()).current_at(cell.soc())
            } else {
                self.profiles[i].current_at(cell.soc())
            };
            let hard_cap = cell.spec().max_charge_a;
            (profile_cap.min(hard_cap), hard_cap < profile_cap)
        };
        let cell = &mut self.cells[i];
        let v_est = cell.terminal_voltage(-cap_i * 0.5).max(0.1);
        let want_i = power_w / v_est;
        let use_i = want_i.min(cap_i);
        if use_i <= 0.0 {
            return (0.0, 0.0, 0.0, None);
        }
        // The profile taper shaping charge current is normal operation; only
        // the cell's hard current rating binding is a safety clamp.
        if hard_cap_binds && use_i < want_i * (1.0 - 1e-9) {
            if let Some(m) = &self.metrics {
                m.safety_clamps.inc();
            }
            Self::stage_event(
                &self.observer,
                staged,
                ObsEvent::SafetyClamp {
                    battery: i,
                    flow: Flow::Charge,
                    requested_a: want_i,
                    applied_a: use_i,
                },
            );
        }
        match cell.step_current(-use_i, dt_s) {
            Ok(out) => {
                // Scale by both the current derating and any step
                // truncation at full: only energy actually absorbed counts.
                let time_frac = if dt_s > 0.0 {
                    out.dt_used_s / dt_s
                } else {
                    1.0
                };
                let into_cell_w = -out.delivered_w * time_frac; // positive
                let frac = (use_i / want_i).min(1.0) * time_frac;
                (
                    allotted_w * frac,
                    into_cell_w,
                    out.heat_w * time_frac,
                    Some(BatteryStepInfo {
                        current_a: out.current_a,
                        terminal_v: out.terminal_v,
                        soc: out.soc,
                        heat_w: out.heat_w,
                    }),
                )
            }
            Err(_) => (0.0, 0.0, 0.0, None),
        }
    }
}

/// Snapshot/restore: see [`crate::snapshot::PackSnapshot`]. Implemented
/// here because it reaches into the controller's private state.
impl Microcontroller {
    /// Captures the pack's full mutable state into a fresh snapshot.
    #[must_use]
    pub fn snapshot(&self) -> PackSnapshot {
        let mut snap = PackSnapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Captures the pack's full mutable state into `snap`, reusing its
    /// buffers (no allocation once the buffers have grown to pack size).
    pub fn snapshot_into(&self, snap: &mut PackSnapshot) {
        snap.time_s = self.time_s;
        snap.delivered_j = self.delivered_j;
        snap.circuit_loss_j = self.circuit_loss_j;
        snap.cell_heat_j = self.cell_heat_j;
        snap.unmet_j = self.unmet_j;
        snap.external_in_j = self.external_in_j;
        snap.discharge_ratios.clear();
        snap.discharge_ratios
            .extend_from_slice(&self.discharge_ratios);
        snap.charge_ratios.clear();
        snap.charge_ratios.extend_from_slice(&self.charge_ratios);
        snap.present.clear();
        snap.present.extend_from_slice(&self.present);
        snap.throttled.clear();
        snap.throttled.extend_from_slice(&self.throttled);
        snap.profile_kinds.clear();
        snap.profile_kinds
            .extend(self.profiles.iter().map(|p| p.kind));
        snap.thermal_throttle = self.thermal_throttle;
        snap.transfer = self.transfer.map(|t| TransferSnapshot {
            from: t.from,
            to: t.to,
            power_w: t.power_w,
            remaining_s: t.remaining_s,
        });
        snap.cells.clear();
        snap.cells
            .extend(self.cells.iter().map(TheveninCell::export_state));
        snap.gauges.clear();
        snap.gauges
            .extend(self.gauges.iter().map(FuelGauge::export_state));
    }

    /// Restores state captured by [`Microcontroller::snapshot`] into this
    /// pack. The pack must have been built from the same template (same
    /// battery count; specs and circuits are configuration and are
    /// unchecked). After a restore the pack behaves bit-identically to a
    /// clone taken at the capture point: ratios are written back verbatim
    /// (not re-realized through the share chain), and the only heap work
    /// is rebuilding a charging profile whose selection changed.
    ///
    /// # Errors
    ///
    /// [`PowerError::WrongChannelCount`] when the snapshot's battery count
    /// does not match the pack's.
    pub fn restore_from(&mut self, snap: &PackSnapshot) -> Result<(), PowerError> {
        let n = self.cells.len();
        if snap.battery_count() != n
            || snap.gauges.len() != n
            || snap.discharge_ratios.len() != n
            || snap.charge_ratios.len() != n
            || snap.present.len() != n
            || snap.throttled.len() != n
            || snap.profile_kinds.len() != n
        {
            return Err(PowerError::WrongChannelCount {
                expected: n,
                got: snap.battery_count(),
            });
        }
        self.time_s = snap.time_s;
        self.delivered_j = snap.delivered_j;
        self.circuit_loss_j = snap.circuit_loss_j;
        self.cell_heat_j = snap.cell_heat_j;
        self.unmet_j = snap.unmet_j;
        self.external_in_j = snap.external_in_j;
        self.discharge_ratios
            .copy_from_slice(&snap.discharge_ratios);
        self.charge_ratios.copy_from_slice(&snap.charge_ratios);
        self.present.copy_from_slice(&snap.present);
        self.throttled.copy_from_slice(&snap.throttled);
        for i in 0..n {
            if self.profiles[i].kind != snap.profile_kinds[i] {
                self.profiles[i] =
                    ChargingProfile::for_spec(snap.profile_kinds[i], self.cells[i].spec());
            }
            self.cells[i].import_state(&snap.cells[i]);
            self.gauges[i].import_state(&snap.gauges[i]);
        }
        self.thermal_throttle = snap.thermal_throttle;
        self.transfer = snap.transfer.map(|t| Transfer {
            from: t.from,
            to: t.to,
            power_w: t.power_w,
            remaining_s: t.remaining_s,
        });
        Ok(())
    }
}

/// Realizes a requested ratio tuple through the measured share chain and
/// renormalizes, writing into `out` without allocating (capacity is
/// reused), so ratio pushes stay allocation-free on the rollout hot path.
fn realize_into(chain: &ShareChain, ratios: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.extend(ratios.iter().map(|&r| {
        if r > 0.0 {
            chain.realized_share(r).unwrap_or(r)
        } else {
            0.0
        }
    }));
    let sum: f64 = out.iter().sum();
    if sum > 0.0 {
        out.iter_mut().for_each(|r| *r /= sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::PackBuilder;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;

    fn two_battery_pack() -> Microcontroller {
        PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .battery(BatterySpec::from_chemistry(
                "b",
                Chemistry::Type3CoPower,
                2.0,
            ))
            .build()
    }

    #[test]
    fn discharge_splits_by_ratio() {
        let mut m = two_battery_pack();
        m.set_discharge_ratios(&[0.25, 0.75]).unwrap();
        let r = m.step(4.0, 0.0, 60.0);
        assert!(r.unmet_w < 1e-9);
        let p0 = r.batteries[0].current_a * r.batteries[0].terminal_v;
        let p1 = r.batteries[1].current_a * r.batteries[1].terminal_v;
        let share0 = p0 / (p0 + p1);
        assert!((share0 - 0.25).abs() < 0.02, "share0 = {share0}");
    }

    #[test]
    fn exclusive_ratio_drains_one_battery() {
        let mut m = two_battery_pack();
        m.set_discharge_ratios(&[1.0, 0.0]).unwrap();
        let r = m.step(3.0, 0.0, 60.0);
        assert!(r.batteries[0].current_a > 0.0);
        assert!(r.batteries[1].current_a.abs() < 1e-12);
        assert!(m.cells()[1].is_full());
    }

    #[test]
    fn empty_battery_share_redistributes() {
        let mut m = PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 2.0),
                0.0,
                ProfileKind::Standard,
            )
            .battery(BatterySpec::from_chemistry(
                "b",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .build();
        m.set_discharge_ratios(&[0.5, 0.5]).unwrap();
        let r = m.step(3.0, 0.0, 60.0);
        // Battery 0 is empty: battery 1 carries everything, no brownout.
        assert!(r.unmet_w < 1e-9, "unmet = {}", r.unmet_w);
        assert!(r.batteries[1].current_a > 0.0);
    }

    #[test]
    fn brownout_reported_when_all_empty() {
        let mut m = PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 2.0),
                0.0,
                ProfileKind::Standard,
            )
            .build();
        let r = m.step(3.0, 0.0, 60.0);
        assert!((r.unmet_w - 3.0).abs() < 1e-9);
        assert_eq!(r.supplied_w, 0.0);
    }

    #[test]
    fn external_power_covers_load_first() {
        let mut m = two_battery_pack();
        let soc_before: Vec<f64> = m.cells().iter().map(|c| c.soc()).collect();
        let r = m.step(3.0, 10.0, 60.0);
        assert!((r.supplied_w - 3.0).abs() < 1e-9);
        // Batteries were full, so surplus is unused; SoC unchanged modulo
        // self-discharge.
        for (c, s) in m.cells().iter().zip(&soc_before) {
            assert!((c.soc() - s).abs() < 1e-6);
        }
    }

    #[test]
    fn surplus_external_charges_batteries() {
        let mut m = PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 2.0),
                0.3,
                ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("b", Chemistry::Type3CoPower, 2.0),
                0.3,
                ProfileKind::Fast,
            )
            .build();
        m.set_charge_ratios(&[0.5, 0.5]).unwrap();
        let r = m.step(1.0, 15.0, 60.0);
        assert!(r.charged_w > 0.0);
        assert!(m.cells()[0].soc() > 0.3);
        assert!(m.cells()[1].soc() > 0.3);
        assert!(r.external_used_w <= 15.0 + 1e-9);
    }

    #[test]
    fn charge_respects_profile_taper() {
        let mut m = PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 2.0),
                0.95,
                ProfileKind::Standard,
            )
            .build();
        m.set_charge_ratios(&[1.0]).unwrap();
        let r = m.step(0.0, 20.0, 60.0);
        // Deep in the taper: charge current far below the CC value.
        let i = -r.batteries[0].current_a;
        let profile = ChargingProfile::for_spec(ProfileKind::Standard, m.cells()[0].spec());
        assert!(i > 0.0 && i < profile.cc_current_a * 0.5, "i = {i}");
    }

    #[test]
    fn transfer_moves_charge_with_losses() {
        let mut m = PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "src",
                Chemistry::Type2CoStandard,
                4.0,
            ))
            .battery_at(
                BatterySpec::from_chemistry("dst", Chemistry::Type2CoStandard, 4.0),
                0.2,
                ProfileKind::Standard,
            )
            .build();
        m.charge_one_from_another(0, 1, 5.0, 1800.0).unwrap();
        assert!(m.transfer_active());
        for _ in 0..30 {
            m.step(0.0, 0.0, 60.0);
        }
        assert!(
            !m.transfer_active(),
            "transfer should complete after 1800 s"
        );
        let src = &m.cells()[0];
        let dst = &m.cells()[1];
        assert!(src.soc() < 1.0);
        assert!(dst.soc() > 0.2);
        // Conservation at the terminals: the energy the source delivered
        // exceeds what reached the destination (regulator losses), but the
        // path is still reasonably efficient.
        let src_out_j = src.energy_out_j();
        let dst_in_j = dst.energy_in_j();
        assert!(
            src_out_j > dst_in_j,
            "src {src_out_j} J vs dst {dst_in_j} J"
        );
        assert!(
            dst_in_j > 0.80 * src_out_j,
            "transfer too lossy: {dst_in_j} / {src_out_j}"
        );
    }

    #[test]
    fn transfer_api_validates() {
        let mut m = two_battery_pack();
        assert!(m.charge_one_from_another(0, 0, 5.0, 10.0).is_err());
        assert!(m.charge_one_from_another(0, 5, 5.0, 10.0).is_err());
        assert!(m.charge_one_from_another(0, 1, -5.0, 10.0).is_err());
        assert!(m.charge_one_from_another(0, 1, 5.0, 0.0).is_err());
    }

    #[test]
    fn ratio_api_validates() {
        let mut m = two_battery_pack();
        assert!(m.set_discharge_ratios(&[0.5]).is_err());
        assert!(m.set_discharge_ratios(&[0.7, 0.7]).is_err());
        assert!(m.set_charge_ratios(&[-0.5, 1.5]).is_err());
        assert!(m.set_discharge_ratios(&[0.3, 0.7]).is_ok());
    }

    #[test]
    fn status_tracks_discharge() {
        let mut m = two_battery_pack();
        m.set_discharge_ratios(&[0.5, 0.5]).unwrap();
        for _ in 0..60 {
            m.step(4.0, 0.0, 60.0);
        }
        let status = m.query_battery_status();
        for s in &status {
            assert!(s.soc < 1.0);
            assert!(s.terminal_v > 3.0);
        }
        // Gauge estimate close to ground truth.
        for (s, c) in status.iter().zip(m.cells()) {
            assert!((s.soc - c.soc()).abs() < 0.02);
        }
    }

    #[test]
    fn energy_accounting_totals() {
        let mut m = two_battery_pack();
        for _ in 0..30 {
            m.step(5.0, 0.0, 60.0);
        }
        let (delivered, circuit_loss, cell_heat, unmet, _) = m.energy_totals_j();
        assert!(delivered > 0.0);
        assert!(circuit_loss > 0.0);
        assert!(cell_heat > 0.0);
        assert_eq!(unmet, 0.0);
        // Loss is a small fraction of delivered energy.
        assert!(circuit_loss < 0.05 * delivered);
    }

    #[test]
    fn profile_selection_applies() {
        let mut m = two_battery_pack();
        m.select_profile(0, ProfileKind::Gentle).unwrap();
        assert!(m.select_profile(9, ProfileKind::Fast).is_err());
    }

    #[test]
    fn absent_battery_supplies_nothing() {
        let mut m = two_battery_pack();
        m.set_battery_present(1, false).unwrap();
        let r = m.step(3.0, 0.0, 60.0);
        assert!(r.unmet_w < 1e-9, "battery 0 covers the load alone");
        assert!(r.batteries[1].current_a.abs() < 1e-12);
        assert!(m.cells()[1].is_full());
        // Status reports absence.
        assert!(!m.query_battery_status()[1].present);
        assert_eq!(m.charge_acceptance_a(1), 0.0);
    }

    #[test]
    fn absent_battery_accepts_no_charge() {
        let mut m = PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 2.0),
                0.3,
                ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("b", Chemistry::Type2CoStandard, 2.0),
                0.3,
                ProfileKind::Standard,
            )
            .build();
        m.set_battery_present(1, false).unwrap();
        m.step(0.0, 10.0, 600.0);
        assert!(m.cells()[0].soc() > 0.3);
        // Battery 1 only self-discharges.
        assert!((m.cells()[1].soc() - 0.3).abs() < 1e-5);
    }

    #[test]
    fn detach_aborts_transfer() {
        let mut m = two_battery_pack();
        m.charge_one_from_another(0, 1, 3.0, 600.0).unwrap();
        assert!(m.transfer_active());
        m.set_battery_present(0, false).unwrap();
        assert!(!m.transfer_active());
        assert!(m.set_battery_present(9, false).is_err());
    }

    #[test]
    fn reattach_restores_service() {
        let mut m = two_battery_pack();
        m.set_battery_present(0, false).unwrap();
        m.set_discharge_ratios(&[1.0, 0.0]).unwrap();
        // Only battery 0 is selected but it is absent: brownout.
        let r = m.step(3.0, 0.0, 60.0);
        assert!(r.unmet_w > 1.0);
        m.set_battery_present(0, true).unwrap();
        let r = m.step(3.0, 0.0, 60.0);
        assert!(r.unmet_w < 1e-9);
    }

    #[test]
    fn thermal_throttle_latches_and_releases() {
        // A thermally simulated pack fast-charging in a warm environment;
        // the throttle window sits between the idle temperature (35 C)
        // and the fast-charge steady state (~38.5 C).
        let mut m = PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("hot", Chemistry::Type3CoPower, 3.0),
                0.05,
                ProfileKind::Fast,
            )
            .ambient_c(35.0)
            .build();
        m.set_thermal_throttle(Some(ThermalThrottle {
            limit_c: 37.5,
            resume_c: 36.0,
        }));
        m.set_charge_ratios(&[1.0]).unwrap();
        assert!(!m.is_throttled(0));
        // Fast charge until the cell crosses the limit.
        let mut throttled_seen = false;
        let gentle = ChargingProfile::for_spec(ProfileKind::Gentle, m.cells()[0].spec());
        for _ in 0..240 {
            let r = m.step(0.0, 30.0, 30.0);
            if m.is_throttled(0) {
                throttled_seen = true;
                // While throttled, charge current is gentle-profile bound.
                assert!(
                    -r.batteries[0].current_a <= gentle.cc_current_a + 1e-6,
                    "i = {}",
                    r.batteries[0].current_a
                );
                break;
            }
        }
        assert!(throttled_seen, "temp = {:?}", m.cell_temperature_c(0));
        // Resting (no charging) cools it below the resume point, and the
        // latch releases.
        for _ in 0..240 {
            m.step(0.0, 0.0, 60.0);
        }
        assert!(m.cell_temperature_c(0).unwrap() < 36.0);
        m.step(0.0, 30.0, 30.0);
        assert!(!m.is_throttled(0), "temp = {:?}", m.cell_temperature_c(0));
    }

    #[test]
    fn cold_pack_is_less_efficient() {
        let build = |ambient: f64| {
            PackBuilder::new()
                .battery(BatterySpec::from_chemistry(
                    "a",
                    Chemistry::Type2CoStandard,
                    2.0,
                ))
                .battery(BatterySpec::from_chemistry(
                    "b",
                    Chemistry::Type3CoPower,
                    2.0,
                ))
                .ambient_c(ambient)
                .build()
        };
        let mut cold = build(-5.0);
        let mut warm = build(25.0);
        for _ in 0..60 {
            cold.step(8.0, 0.0, 60.0);
            warm.step(8.0, 0.0, 60.0);
        }
        let (_, _, cold_heat, _, _) = cold.energy_totals_j();
        let (_, _, warm_heat, _, _) = warm.energy_totals_j();
        assert!(
            cold_heat > 1.3 * warm_heat,
            "cold {cold_heat} vs warm {warm_heat}"
        );
    }

    #[test]
    fn gauge_sees_combined_load_and_transfer_current() {
        // Battery 0 serves the load *and* sources a transfer in the same
        // steps; the gauge must integrate the combined current, not just
        // the last phase's.
        let mut m = PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "src",
                Chemistry::Type2CoStandard,
                4.0,
            ))
            .battery_at(
                BatterySpec::from_chemistry("dst", Chemistry::Type2CoStandard, 4.0),
                0.2,
                ProfileKind::Standard,
            )
            .build();
        m.set_discharge_ratios(&[1.0, 0.0]).unwrap();
        m.charge_one_from_another(0, 1, 4.0, 1800.0).unwrap();
        for _ in 0..30 {
            m.step(5.0, 0.0, 60.0);
        }
        let status = m.query_battery_status();
        for (s, c) in status.iter().zip(m.cells()) {
            assert!(
                (s.soc - c.soc()).abs() < 0.02,
                "{}: gauge {} vs truth {}",
                c.spec().name,
                s.soc,
                c.soc()
            );
        }
    }

    #[test]
    #[should_panic(expected = "bad dt")]
    fn step_rejects_zero_dt() {
        let mut m = two_battery_pack();
        let _ = m.step(1.0, 0.0, 0.0);
    }

    #[test]
    fn observer_records_ratio_pushes_and_step_samples() {
        use sdb_observe::FlightRecorder;
        let mut m = two_battery_pack();
        let obs = Observer::new();
        let rec = FlightRecorder::shared(64);
        obs.add_sink(Box::new(rec.clone()));
        m.set_observer(obs.clone());
        m.set_discharge_ratios(&[0.5, 0.5]).unwrap();
        m.step(4.0, 0.0, 60.0);
        let text = obs.registry().unwrap().to_prometheus_text();
        assert!(text.contains("sdb_micro_steps_total 1"), "{text}");
        assert!(
            text.contains("sdb_ratio_pushes_total{flow=\"discharge\"} 1"),
            "{text}"
        );
        assert!(text.contains("sdb_micro_step_ns_count 1"), "{text}");
        let dump = rec.lock().unwrap().dump();
        assert!(dump.iter().any(|e| matches!(
            e.event,
            ObsEvent::RatioPush {
                flow: Flow::Discharge,
                ..
            }
        )));
        let sample = dump
            .iter()
            .find(|e| matches!(e.event, ObsEvent::StepSample { .. }))
            .expect("step sample recorded");
        assert_eq!(sample.t_s, 60.0);
    }

    #[test]
    fn disabled_observer_records_nothing() {
        let mut m = two_battery_pack();
        m.set_observer(Observer::disabled());
        m.set_discharge_ratios(&[0.5, 0.5]).unwrap();
        m.step(4.0, 0.0, 60.0);
        assert!(!m.observer().enabled());
    }
    #[test]
    fn diag_thermal() {
        use crate::pack::PackBuilder;
        use crate::profile::ProfileKind;
        use sdb_battery_model::chemistry::Chemistry;
        use sdb_battery_model::spec::BatterySpec;
        let mut m = PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("hot", Chemistry::Type3CoPower, 3.0),
                0.05,
                ProfileKind::Fast,
            )
            .ambient_c(43.0)
            .build();
        m.set_charge_ratios(&[1.0]).unwrap();
        m.set_thermal_throttle(Some(ThermalThrottle::consumer()));
        for k in 0..40 {
            let r = m.step(0.0, 30.0, 30.0);
            if k % 5 == 0 {
                println!(
                    "t={} i={:.2} soc={:.3} heat={:.3} temp={:?} throttled={}",
                    k * 30,
                    r.batteries[0].current_a,
                    r.batteries[0].soc,
                    r.batteries[0].heat_w,
                    m.cell_temperature_c(0),
                    m.is_throttled(0)
                );
            }
        }
    }
}
