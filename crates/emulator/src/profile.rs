//! Charging profiles.
//!
//! "An example charging profile looks like: the battery is charged at a
//! constant high current until SoC reaches 80 % ..., and the charging is
//! limited to a trickle charge or low current after" (Section 2.2). SDB
//! instruments each regulator with *multiple* charging profiles and lets
//! the microcontroller select among them dynamically (Section 3.2.2).

use sdb_battery_model::spec::BatterySpec;

/// Named profile classes the microcontroller can select among.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileKind {
    /// Standard CC-CV: rated charge current to 80 %, tapering after.
    Standard,
    /// As fast as the chemistry allows: max charge current to 80 %, then an
    /// aggressive taper. Costs longevity (Table 2).
    Fast,
    /// Longevity-preserving: reduced current, early taper. For overnight
    /// charging.
    Gentle,
}

impl ProfileKind {
    /// Stable lowercase name (used in observability events and CLI args).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProfileKind::Standard => "standard",
            ProfileKind::Fast => "fast",
            ProfileKind::Gentle => "gentle",
        }
    }
}

/// A piecewise-constant-current charging profile with a CV taper.
#[derive(Debug, Clone, PartialEq)]
pub struct ChargingProfile {
    /// Profile class.
    pub kind: ProfileKind,
    /// Constant-current phase current, amps.
    pub cc_current_a: f64,
    /// SoC at which the taper begins.
    pub taper_start_soc: f64,
    /// Current floor at 100 % SoC (trickle), amps.
    pub trickle_a: f64,
}

impl ChargingProfile {
    /// Builds the given profile class for a cell spec.
    #[must_use]
    pub fn for_spec(kind: ProfileKind, spec: &BatterySpec) -> Self {
        match kind {
            ProfileKind::Standard => Self {
                kind,
                cc_current_a: 0.7 * spec.max_charge_a,
                taper_start_soc: 0.80,
                trickle_a: 0.05 * spec.max_charge_a,
            },
            ProfileKind::Fast => Self {
                kind,
                cc_current_a: spec.max_charge_a,
                taper_start_soc: 0.80,
                trickle_a: 0.08 * spec.max_charge_a,
            },
            ProfileKind::Gentle => Self {
                kind,
                cc_current_a: 0.4 * spec.max_charge_a,
                taper_start_soc: 0.70,
                trickle_a: 0.03 * spec.max_charge_a,
            },
        }
    }

    /// The charge current the profile allows at `soc` (amps, as a positive
    /// magnitude). Linear taper from the CC current down to the trickle
    /// current between `taper_start_soc` and 1.0.
    #[must_use]
    pub fn current_at(&self, soc: f64) -> f64 {
        let soc = soc.clamp(0.0, 1.0);
        if soc < self.taper_start_soc {
            self.cc_current_a
        } else {
            let span = (1.0 - self.taper_start_soc).max(f64::EPSILON);
            let t = (soc - self.taper_start_soc) / span;
            self.cc_current_a + (self.trickle_a - self.cc_current_a) * t
        }
    }

    /// Time to charge a cell of `capacity_ah` from `from_soc` to `to_soc`
    /// under this profile, ignoring conversion losses (analytic estimate
    /// used for planning; the emulator integrates the real thing).
    ///
    /// # Panics
    ///
    /// Panics if the SoC bounds are out of order or outside `[0, 1]`.
    #[must_use]
    pub fn charge_time_estimate_s(&self, capacity_ah: f64, from_soc: f64, to_soc: f64) -> f64 {
        assert!((0.0..=1.0).contains(&from_soc) && (0.0..=1.0).contains(&to_soc));
        assert!(to_soc >= from_soc, "to_soc must be ≥ from_soc");
        // Integrate dSoC / I(SoC) numerically on a fine grid.
        let steps = 1000;
        let dsoc = (to_soc - from_soc) / steps as f64;
        let mut t = 0.0;
        for k in 0..steps {
            let soc = from_soc + (k as f64 + 0.5) * dsoc;
            let i = self.current_at(soc).max(1e-9);
            t += dsoc * capacity_ah * 3600.0 / i;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_battery_model::chemistry::Chemistry;

    fn spec() -> BatterySpec {
        BatterySpec::from_chemistry("p", Chemistry::Type2CoStandard, 2.0)
    }

    #[test]
    fn cc_phase_constant_then_tapers() {
        let p = ChargingProfile::for_spec(ProfileKind::Standard, &spec());
        assert_eq!(p.current_at(0.1), p.current_at(0.79));
        assert!(p.current_at(0.9) < p.current_at(0.79));
        assert!((p.current_at(1.0) - p.trickle_a).abs() < 1e-12);
    }

    #[test]
    fn fast_beats_standard_beats_gentle() {
        let s = spec();
        let fast = ChargingProfile::for_spec(ProfileKind::Fast, &s);
        let std = ChargingProfile::for_spec(ProfileKind::Standard, &s);
        let gentle = ChargingProfile::for_spec(ProfileKind::Gentle, &s);
        assert!(fast.cc_current_a > std.cc_current_a);
        assert!(std.cc_current_a > gentle.cc_current_a);
        let t_fast = fast.charge_time_estimate_s(2.0, 0.0, 0.8);
        let t_std = std.charge_time_estimate_s(2.0, 0.0, 0.8);
        let t_gentle = gentle.charge_time_estimate_s(2.0, 0.0, 0.8);
        assert!(t_fast < t_std && t_std < t_gentle);
    }

    #[test]
    fn charge_never_exceeds_cell_limit() {
        let s = spec();
        for kind in [
            ProfileKind::Standard,
            ProfileKind::Fast,
            ProfileKind::Gentle,
        ] {
            let p = ChargingProfile::for_spec(kind, &s);
            for k in 0..=10 {
                let soc = k as f64 / 10.0;
                assert!(p.current_at(soc) <= s.max_charge_a + 1e-12);
            }
        }
    }

    #[test]
    fn top_20_percent_slower_than_first_80() {
        // CC-CV: charging 80→100 % takes longer per SoC point than 0→80 %.
        let p = ChargingProfile::for_spec(ProfileKind::Standard, &spec());
        let t_bulk = p.charge_time_estimate_s(2.0, 0.0, 0.8) / 0.8;
        let t_top = p.charge_time_estimate_s(2.0, 0.8, 1.0) / 0.2;
        assert!(t_top > 1.5 * t_bulk);
    }

    #[test]
    fn fast_charge_cell_charges_much_faster() {
        // The Figure 11b premise: a Type 3 cell under its fast profile
        // reaches 50 % far sooner than a Type 2 under its standard profile.
        let fast_cell = BatterySpec::from_chemistry("f", Chemistry::Type3CoPower, 4.0);
        let std_cell = BatterySpec::from_chemistry("s", Chemistry::Type2CoStandard, 4.0);
        let t_fast = ChargingProfile::for_spec(ProfileKind::Fast, &fast_cell)
            .charge_time_estimate_s(4.0, 0.0, 0.5);
        let t_std = ChargingProfile::for_spec(ProfileKind::Standard, &std_cell)
            .charge_time_estimate_s(4.0, 0.0, 0.5);
        assert!(t_fast < t_std / 2.5, "fast {t_fast} vs std {t_std}");
    }

    #[test]
    #[should_panic(expected = "to_soc must be")]
    fn estimate_rejects_reversed_bounds() {
        let p = ChargingProfile::for_spec(ProfileKind::Standard, &spec());
        let _ = p.charge_time_estimate_s(2.0, 0.8, 0.2);
    }
}
