//! The OS ↔ microcontroller transport.
//!
//! The paper's prototype uses "a Bluetooth wireless connection to interface
//! between the microcontroller and the SDB runtime in the OS" (Section
//! 4.1); production hardware would use the power-management serial bus.
//! Either way the four APIs cross a message boundary that can delay or
//! drop commands. This module models that boundary deterministically so
//! failure-injection tests can exercise the runtime's robustness.

use crate::micro::Microcontroller;
use sdb_battery_model::thevenin::TheveninCell;
use sdb_fuel_gauge::gauge::BatteryStatus;
use sdb_power_electronics::error::PowerError;
use std::collections::VecDeque;

/// A command sent from the OS runtime to the microcontroller.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `Charge(c1, ..., cN)`.
    Charge(Vec<f64>),
    /// `Discharge(d1, ..., dN)`.
    Discharge(Vec<f64>),
    /// `ChargeOneFromAnother(X, Y, W, T)`.
    ChargeOneFromAnother {
        /// Source battery index.
        from: usize,
        /// Destination battery index.
        to: usize,
        /// Transfer power, watts.
        power_w: f64,
        /// Transfer duration, seconds.
        duration_s: f64,
    },
    /// `QueryBatteryStatus()`.
    QueryBatteryStatus,
}

/// A response from the microcontroller.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Command accepted.
    Ack,
    /// Command rejected by the firmware.
    Nack(String),
    /// Status rows for `QueryBatteryStatus`.
    Status(Vec<BatteryStatus>),
}

/// Link traffic statistics.
///
/// Fault counters are incremented at the injection site — the moment the
/// fault is decided — never inside an observer-gated branch, so the stats
/// are identical whether or not an observer is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Commands accepted into the queue.
    pub sent: u64,
    /// Commands delivered to the firmware.
    pub delivered: u64,
    /// Commands dropped in transit.
    pub dropped: u64,
    /// Commands duplicated in transit (extra deliveries).
    pub duplicated: u64,
    /// `QueryBatteryStatus` responses served from a stale frozen snapshot.
    pub stale_served: u64,
}

/// Chaos-injected fault state for a link. All probabilistic decisions
/// draw from a dedicated [`sdb_rng::DetRng`], so a fault plan replays
/// bit-for-bit from its seed.
#[derive(Debug)]
struct LinkFaults {
    rng: sdb_rng::DetRng,
    /// Per-mille probability of dropping each sent command (1000 = the
    /// link is dark).
    drop_per_mille: u32,
    /// Per-mille probability of duplicating each sent command.
    dup_per_mille: u32,
    /// Delivery-latency override in ticks while a latency fault is active.
    latency_override: Option<u32>,
    /// Frozen status snapshot served for `QueryBatteryStatus` while a
    /// stale-status fault is active.
    stale_status: Option<Vec<BatteryStatus>>,
}

impl LinkFaults {
    fn new(seed: u64) -> Self {
        Self {
            rng: sdb_rng::DetRng::seed_from_u64(seed),
            drop_per_mille: 0,
            dup_per_mille: 0,
            latency_override: None,
            stale_status: None,
        }
    }
}

/// A lossy, delaying link wrapping the microcontroller.
#[derive(Debug)]
pub struct Link {
    micro: Microcontroller,
    /// Commands in flight: `(remaining delay steps, command)`.
    in_flight: VecDeque<(u32, Command)>,
    /// Fixed delivery latency in ticks.
    latency_ticks: u32,
    /// Drop one command in every `drop_period` (0 = lossless).
    drop_period: u32,
    counter: u64,
    stats: LinkStats,
    /// Responses produced by delivered commands, in order.
    responses: VecDeque<Response>,
    /// Chaos-injected fault state (inert until configured).
    faults: LinkFaults,
}

impl Link {
    /// Wraps a microcontroller in a lossless zero-latency link.
    #[must_use]
    pub fn ideal(micro: Microcontroller) -> Self {
        Self::new(micro, 0, 0)
    }

    /// Wraps a microcontroller with `latency_ticks` delivery delay and a
    /// deterministic drop of every `drop_period`-th command (0 = lossless).
    #[must_use]
    pub fn new(micro: Microcontroller, latency_ticks: u32, drop_period: u32) -> Self {
        Self {
            micro,
            in_flight: VecDeque::new(),
            latency_ticks,
            drop_period,
            counter: 0,
            stats: LinkStats::default(),
            responses: VecDeque::new(),
            faults: LinkFaults::new(0),
        }
    }

    /// Re-seeds the fault-decision RNG. Call once per device before
    /// activating probabilistic faults so campaigns replay bit-for-bit.
    pub fn seed_faults(&mut self, seed: u64) {
        self.faults = LinkFaults::new(seed);
    }

    /// Sets the per-mille probability of dropping each sent command
    /// (1000 = the link is completely dark).
    ///
    /// # Panics
    ///
    /// Panics if `per_mille > 1000`.
    pub fn set_fault_drop_per_mille(&mut self, per_mille: u32) {
        assert!(
            per_mille <= 1000,
            "drop per-mille out of range: {per_mille}"
        );
        self.faults.drop_per_mille = per_mille;
    }

    /// Sets the per-mille probability of duplicating each sent command.
    ///
    /// # Panics
    ///
    /// Panics if `per_mille > 1000`.
    pub fn set_fault_dup_per_mille(&mut self, per_mille: u32) {
        assert!(per_mille <= 1000, "dup per-mille out of range: {per_mille}");
        self.faults.dup_per_mille = per_mille;
    }

    /// Overrides the delivery latency while a latency fault is active
    /// (`None` restores the base latency).
    pub fn set_fault_latency(&mut self, ticks: Option<u32>) {
        self.faults.latency_override = ticks;
    }

    /// Activates (`true`) or clears (`false`) the stale-status fault.
    /// While active, every `QueryBatteryStatus` is answered from the
    /// snapshot frozen at activation time.
    pub fn set_fault_stale_status(&mut self, stale: bool) {
        self.faults.stale_status = if stale {
            Some(self.micro.query_battery_status())
        } else {
            None
        };
    }

    /// Whether a stale-status fault is currently active.
    #[must_use]
    pub fn stale_status_active(&self) -> bool {
        self.faults.stale_status.is_some()
    }

    /// Counts a fault at its injection site (unconditionally — the stats
    /// must not depend on whether anyone is watching), then reports it to
    /// the observer if one is attached.
    fn record_fault(
        counter: &mut u64,
        micro: &Microcontroller,
        make_description: impl Fn() -> String,
    ) {
        *counter += 1;
        let observer = micro.observer();
        if observer.wants_events() {
            observer.emit(sdb_observe::ObsEvent::FaultInjection {
                description: make_description(),
            });
        }
    }

    /// Sends a command; it is delivered after the configured latency,
    /// unless it falls on a drop slot or an injected fault eats it.
    pub fn send(&mut self, cmd: Command) {
        self.counter += 1;
        self.stats.sent += 1;
        // Legacy deterministic periodic drop.
        if self.drop_period > 0 && self.counter.is_multiple_of(u64::from(self.drop_period)) {
            let n = self.counter;
            Self::record_fault(&mut self.stats.dropped, &self.micro, || {
                format!("link dropped command #{n}")
            });
            return;
        }
        // Chaos probabilistic drop. RNG draws happen only while the fault
        // is active, so clean runs stay bit-identical.
        if self.faults.drop_per_mille > 0
            && self.faults.rng.below(1000) < u64::from(self.faults.drop_per_mille)
        {
            let n = self.counter;
            Self::record_fault(&mut self.stats.dropped, &self.micro, || {
                format!("link dropped command #{n} (chaos)")
            });
            return;
        }
        let latency = self.faults.latency_override.unwrap_or(self.latency_ticks);
        // Chaos duplication: the command arrives twice.
        if self.faults.dup_per_mille > 0
            && self.faults.rng.below(1000) < u64::from(self.faults.dup_per_mille)
        {
            let n = self.counter;
            Self::record_fault(&mut self.stats.duplicated, &self.micro, || {
                format!("link duplicated command #{n} (chaos)")
            });
            self.in_flight.push_back((latency, cmd.clone()));
        }
        self.in_flight.push_back((latency, cmd));
    }

    /// Advances the emulation one step, delivering due commands first.
    pub fn step(&mut self, load_w: f64, external_w: f64, dt_s: f64) -> crate::micro::StepReport {
        // Deliver everything whose delay has elapsed (in order).
        while let Some((delay, _)) = self.in_flight.front() {
            if *delay == 0 {
                let (_, cmd) = self.in_flight.pop_front().expect("checked front");
                let resp = self.apply(cmd);
                self.responses.push_back(resp);
                self.stats.delivered += 1;
            } else {
                break;
            }
        }
        for entry in &mut self.in_flight {
            entry.0 = entry.0.saturating_sub(1);
        }
        self.micro.step(load_w, external_w, dt_s)
    }

    fn apply(&mut self, cmd: Command) -> Response {
        let to_resp = |r: Result<(), PowerError>| match r {
            Ok(()) => Response::Ack,
            Err(e) => Response::Nack(e.to_string()),
        };
        match cmd {
            Command::Charge(ratios) => to_resp(self.micro.set_charge_ratios(&ratios)),
            Command::Discharge(ratios) => to_resp(self.micro.set_discharge_ratios(&ratios)),
            Command::ChargeOneFromAnother {
                from,
                to,
                power_w,
                duration_s,
            } => to_resp(
                self.micro
                    .charge_one_from_another(from, to, power_w, duration_s),
            ),
            Command::QueryBatteryStatus => Response::Status(self.query_battery_status_now()),
        }
    }

    /// Answers a status query immediately — from the frozen snapshot while
    /// a stale-status fault is active, otherwise from the live gauges.
    /// Both the queued `QueryBatteryStatus` path and the synchronous
    /// `SdbApi` path route through here so stale faults cover both.
    pub fn query_battery_status_now(&mut self) -> Vec<BatteryStatus> {
        if let Some(snapshot) = self.faults.stale_status.clone() {
            Self::record_fault(&mut self.stats.stale_served, &self.micro, || {
                "link served stale battery status (chaos)".to_owned()
            });
            return snapshot;
        }
        self.micro.query_battery_status()
    }

    /// Drains pending responses.
    pub fn take_responses(&mut self) -> Vec<Response> {
        self.responses.drain(..).collect()
    }

    /// Traffic statistics.
    #[must_use]
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// The wrapped microcontroller (ground truth for scenario metrics).
    #[must_use]
    pub fn micro(&self) -> &Microcontroller {
        &self.micro
    }

    /// Mutable access for scenario setup.
    pub fn micro_mut(&mut self) -> &mut Microcontroller {
        &mut self.micro
    }

    /// Convenience: ground-truth cells.
    #[must_use]
    pub fn cells(&self) -> &[TheveninCell] {
        self.micro.cells()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::PackBuilder;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;

    fn pack() -> Microcontroller {
        PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .battery(BatterySpec::from_chemistry(
                "b",
                Chemistry::Type3CoPower,
                2.0,
            ))
            .build()
    }

    #[test]
    fn ideal_link_applies_immediately() {
        let mut link = Link::ideal(pack());
        link.send(Command::Discharge(vec![1.0, 0.0]));
        link.step(3.0, 0.0, 60.0);
        assert!(link.cells()[1].is_full());
        assert!(link.cells()[0].soc() < 1.0);
        assert_eq!(link.take_responses(), vec![Response::Ack]);
    }

    #[test]
    fn latency_delays_application() {
        let mut link = Link::new(pack(), 2, 0);
        link.send(Command::Discharge(vec![1.0, 0.0]));
        // For two steps the default 50/50 split still applies.
        link.step(3.0, 0.0, 60.0);
        link.step(3.0, 0.0, 60.0);
        assert!(link.cells()[1].soc() < 1.0, "default split still active");
        let soc1_before = link.cells()[1].soc();
        link.step(3.0, 0.0, 60.0);
        link.step(3.0, 0.0, 60.0);
        // After delivery battery 1 is no longer discharged (only
        // negligible self-discharge while idle).
        assert!((link.cells()[1].soc() - soc1_before).abs() < 1e-5);
    }

    #[test]
    fn drops_lose_commands_deterministically() {
        let mut link = Link::new(pack(), 0, 2);
        link.send(Command::QueryBatteryStatus); // 1st: kept
        link.send(Command::QueryBatteryStatus); // 2nd: dropped
        link.send(Command::QueryBatteryStatus); // 3rd: kept
        link.step(0.1, 0.0, 1.0);
        let stats = link.stats();
        assert_eq!(stats.sent, 3);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.delivered, 2);
        assert_eq!(link.take_responses().len(), 2);
    }

    #[test]
    fn nack_on_bad_command() {
        let mut link = Link::ideal(pack());
        link.send(Command::Discharge(vec![0.9, 0.9]));
        link.step(0.1, 0.0, 1.0);
        match &link.take_responses()[0] {
            Response::Nack(msg) => assert!(msg.contains("sum")),
            other => panic!("expected Nack, got {other:?}"),
        }
    }

    #[test]
    fn query_returns_status_rows() {
        let mut link = Link::ideal(pack());
        link.send(Command::QueryBatteryStatus);
        link.step(0.1, 0.0, 1.0);
        match &link.take_responses()[0] {
            Response::Status(rows) => assert_eq!(rows.len(), 2),
            other => panic!("expected Status, got {other:?}"),
        }
    }

    #[test]
    fn chaos_drop_darkens_the_link() {
        let mut link = Link::ideal(pack());
        link.seed_faults(42);
        link.set_fault_drop_per_mille(1000);
        for _ in 0..10 {
            link.send(Command::QueryBatteryStatus);
        }
        link.step(0.1, 0.0, 1.0);
        let stats = link.stats();
        assert_eq!(stats.sent, 10);
        assert_eq!(stats.dropped, 10);
        assert_eq!(stats.delivered, 0);
        assert!(link.take_responses().is_empty());
        // Restoring the link resumes delivery.
        link.set_fault_drop_per_mille(0);
        link.send(Command::QueryBatteryStatus);
        link.step(0.1, 0.0, 1.0);
        assert_eq!(link.take_responses().len(), 1);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut link = Link::ideal(pack());
        link.seed_faults(7);
        link.set_fault_dup_per_mille(1000);
        link.send(Command::QueryBatteryStatus);
        link.step(0.1, 0.0, 1.0);
        let stats = link.stats();
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.duplicated, 1);
        assert_eq!(stats.delivered, 2);
        assert_eq!(link.take_responses().len(), 2);
    }

    #[test]
    fn latency_fault_overrides_base_latency() {
        let mut link = Link::ideal(pack());
        link.set_fault_latency(Some(3));
        link.send(Command::QueryBatteryStatus);
        link.step(0.1, 0.0, 1.0);
        assert!(link.take_responses().is_empty(), "still in flight");
        link.step(0.1, 0.0, 1.0);
        link.step(0.1, 0.0, 1.0);
        link.step(0.1, 0.0, 1.0);
        assert_eq!(link.take_responses().len(), 1);
        // Clearing the fault restores immediate delivery.
        link.set_fault_latency(None);
        link.send(Command::QueryBatteryStatus);
        link.step(0.1, 0.0, 1.0);
        assert_eq!(link.take_responses().len(), 1);
    }

    #[test]
    fn stale_status_serves_frozen_snapshot() {
        let mut link = Link::ideal(pack());
        link.set_fault_stale_status(true);
        assert!(link.stale_status_active());
        // Drain the pack: the live gauges move, the snapshot must not.
        for _ in 0..30 {
            link.step(5.0, 0.0, 60.0);
        }
        link.send(Command::QueryBatteryStatus);
        link.step(0.1, 0.0, 1.0);
        match &link.take_responses()[0] {
            Response::Status(rows) => {
                assert!(rows[0].soc > 0.95, "stale soc {}", rows[0].soc);
            }
            other => panic!("expected Status, got {other:?}"),
        }
        assert_eq!(link.stats().stale_served, 1);
        let live = link.micro().query_battery_status();
        assert!(
            live[0].soc < 0.9,
            "live gauges kept moving: {}",
            live[0].soc
        );
        // Thawing serves live rows again.
        link.set_fault_stale_status(false);
        link.send(Command::QueryBatteryStatus);
        link.step(0.1, 0.0, 1.0);
        match &link.take_responses()[0] {
            Response::Status(rows) => assert!(rows[0].soc < 0.9),
            other => panic!("expected Status, got {other:?}"),
        }
    }

    #[test]
    fn fault_stats_count_without_an_observer() {
        // Regression: fault counters must be incremented at the injection
        // site, not inside the observer-gated emit branch. The packs here
        // have no observer attached (Observer::disabled() default), yet
        // every fault class must still count.
        let mut link = Link::new(pack(), 0, 2); // periodic drop every 2nd
        link.seed_faults(3);
        link.set_fault_dup_per_mille(1000);
        link.set_fault_stale_status(true);
        for _ in 0..4 {
            link.send(Command::QueryBatteryStatus);
        }
        link.step(0.1, 0.0, 1.0);
        let stats = link.stats();
        assert_eq!(stats.sent, 4);
        assert_eq!(stats.dropped, 2, "periodic drops counted unobserved");
        assert_eq!(stats.duplicated, 2, "duplications counted unobserved");
        assert_eq!(stats.delivered, 4);
        assert_eq!(stats.stale_served, 4, "stale serves counted unobserved");
        // And chaos drops too.
        let mut link = Link::ideal(pack());
        link.seed_faults(5);
        link.set_fault_drop_per_mille(1000);
        link.send(Command::QueryBatteryStatus);
        assert_eq!(link.stats().dropped, 1);
    }

    #[test]
    fn commands_apply_in_order() {
        let mut link = Link::ideal(pack());
        link.send(Command::Discharge(vec![1.0, 0.0]));
        link.send(Command::Discharge(vec![0.0, 1.0]));
        link.step(3.0, 0.0, 60.0);
        // Last command wins: battery 1 discharges.
        assert!(link.cells()[0].is_full());
        assert!(link.cells()[1].soc() < 1.0);
    }
}
