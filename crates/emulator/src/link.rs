//! The OS ↔ microcontroller transport.
//!
//! The paper's prototype uses "a Bluetooth wireless connection to interface
//! between the microcontroller and the SDB runtime in the OS" (Section
//! 4.1); production hardware would use the power-management serial bus.
//! Either way the four APIs cross a message boundary that can delay or
//! drop commands. This module models that boundary deterministically so
//! failure-injection tests can exercise the runtime's robustness.

use crate::micro::Microcontroller;
use sdb_battery_model::thevenin::TheveninCell;
use sdb_fuel_gauge::gauge::BatteryStatus;
use sdb_power_electronics::error::PowerError;
use std::collections::VecDeque;

/// A command sent from the OS runtime to the microcontroller.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `Charge(c1, ..., cN)`.
    Charge(Vec<f64>),
    /// `Discharge(d1, ..., dN)`.
    Discharge(Vec<f64>),
    /// `ChargeOneFromAnother(X, Y, W, T)`.
    ChargeOneFromAnother {
        /// Source battery index.
        from: usize,
        /// Destination battery index.
        to: usize,
        /// Transfer power, watts.
        power_w: f64,
        /// Transfer duration, seconds.
        duration_s: f64,
    },
    /// `QueryBatteryStatus()`.
    QueryBatteryStatus,
}

/// A response from the microcontroller.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Command accepted.
    Ack,
    /// Command rejected by the firmware.
    Nack(String),
    /// Status rows for `QueryBatteryStatus`.
    Status(Vec<BatteryStatus>),
}

/// Link traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Commands accepted into the queue.
    pub sent: u64,
    /// Commands delivered to the firmware.
    pub delivered: u64,
    /// Commands dropped in transit.
    pub dropped: u64,
}

/// A lossy, delaying link wrapping the microcontroller.
#[derive(Debug)]
pub struct Link {
    micro: Microcontroller,
    /// Commands in flight: `(remaining delay steps, command)`.
    in_flight: VecDeque<(u32, Command)>,
    /// Fixed delivery latency in ticks.
    latency_ticks: u32,
    /// Drop one command in every `drop_period` (0 = lossless).
    drop_period: u32,
    counter: u64,
    stats: LinkStats,
    /// Responses produced by delivered commands, in order.
    responses: VecDeque<Response>,
}

impl Link {
    /// Wraps a microcontroller in a lossless zero-latency link.
    #[must_use]
    pub fn ideal(micro: Microcontroller) -> Self {
        Self::new(micro, 0, 0)
    }

    /// Wraps a microcontroller with `latency_ticks` delivery delay and a
    /// deterministic drop of every `drop_period`-th command (0 = lossless).
    #[must_use]
    pub fn new(micro: Microcontroller, latency_ticks: u32, drop_period: u32) -> Self {
        Self {
            micro,
            in_flight: VecDeque::new(),
            latency_ticks,
            drop_period,
            counter: 0,
            stats: LinkStats::default(),
            responses: VecDeque::new(),
        }
    }

    /// Sends a command; it is delivered after the configured latency,
    /// unless it falls on a drop slot.
    pub fn send(&mut self, cmd: Command) {
        self.counter += 1;
        self.stats.sent += 1;
        if self.drop_period > 0 && self.counter.is_multiple_of(u64::from(self.drop_period)) {
            self.stats.dropped += 1;
            let observer = self.micro.observer();
            if observer.wants_events() {
                observer.emit(sdb_observe::ObsEvent::FaultInjection {
                    description: format!("link dropped command #{}", self.counter),
                });
            }
            return;
        }
        self.in_flight.push_back((self.latency_ticks, cmd));
    }

    /// Advances the emulation one step, delivering due commands first.
    pub fn step(&mut self, load_w: f64, external_w: f64, dt_s: f64) -> crate::micro::StepReport {
        // Deliver everything whose delay has elapsed (in order).
        while let Some((delay, _)) = self.in_flight.front() {
            if *delay == 0 {
                let (_, cmd) = self.in_flight.pop_front().expect("checked front");
                let resp = self.apply(cmd);
                self.responses.push_back(resp);
                self.stats.delivered += 1;
            } else {
                break;
            }
        }
        for entry in &mut self.in_flight {
            entry.0 = entry.0.saturating_sub(1);
        }
        self.micro.step(load_w, external_w, dt_s)
    }

    fn apply(&mut self, cmd: Command) -> Response {
        let to_resp = |r: Result<(), PowerError>| match r {
            Ok(()) => Response::Ack,
            Err(e) => Response::Nack(e.to_string()),
        };
        match cmd {
            Command::Charge(ratios) => to_resp(self.micro.set_charge_ratios(&ratios)),
            Command::Discharge(ratios) => to_resp(self.micro.set_discharge_ratios(&ratios)),
            Command::ChargeOneFromAnother {
                from,
                to,
                power_w,
                duration_s,
            } => to_resp(
                self.micro
                    .charge_one_from_another(from, to, power_w, duration_s),
            ),
            Command::QueryBatteryStatus => Response::Status(self.micro.query_battery_status()),
        }
    }

    /// Drains pending responses.
    pub fn take_responses(&mut self) -> Vec<Response> {
        self.responses.drain(..).collect()
    }

    /// Traffic statistics.
    #[must_use]
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// The wrapped microcontroller (ground truth for scenario metrics).
    #[must_use]
    pub fn micro(&self) -> &Microcontroller {
        &self.micro
    }

    /// Mutable access for scenario setup.
    pub fn micro_mut(&mut self) -> &mut Microcontroller {
        &mut self.micro
    }

    /// Convenience: ground-truth cells.
    #[must_use]
    pub fn cells(&self) -> &[TheveninCell] {
        self.micro.cells()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::PackBuilder;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;

    fn pack() -> Microcontroller {
        PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .battery(BatterySpec::from_chemistry(
                "b",
                Chemistry::Type3CoPower,
                2.0,
            ))
            .build()
    }

    #[test]
    fn ideal_link_applies_immediately() {
        let mut link = Link::ideal(pack());
        link.send(Command::Discharge(vec![1.0, 0.0]));
        link.step(3.0, 0.0, 60.0);
        assert!(link.cells()[1].is_full());
        assert!(link.cells()[0].soc() < 1.0);
        assert_eq!(link.take_responses(), vec![Response::Ack]);
    }

    #[test]
    fn latency_delays_application() {
        let mut link = Link::new(pack(), 2, 0);
        link.send(Command::Discharge(vec![1.0, 0.0]));
        // For two steps the default 50/50 split still applies.
        link.step(3.0, 0.0, 60.0);
        link.step(3.0, 0.0, 60.0);
        assert!(link.cells()[1].soc() < 1.0, "default split still active");
        let soc1_before = link.cells()[1].soc();
        link.step(3.0, 0.0, 60.0);
        link.step(3.0, 0.0, 60.0);
        // After delivery battery 1 is no longer discharged (only
        // negligible self-discharge while idle).
        assert!((link.cells()[1].soc() - soc1_before).abs() < 1e-5);
    }

    #[test]
    fn drops_lose_commands_deterministically() {
        let mut link = Link::new(pack(), 0, 2);
        link.send(Command::QueryBatteryStatus); // 1st: kept
        link.send(Command::QueryBatteryStatus); // 2nd: dropped
        link.send(Command::QueryBatteryStatus); // 3rd: kept
        link.step(0.1, 0.0, 1.0);
        let stats = link.stats();
        assert_eq!(stats.sent, 3);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.delivered, 2);
        assert_eq!(link.take_responses().len(), 2);
    }

    #[test]
    fn nack_on_bad_command() {
        let mut link = Link::ideal(pack());
        link.send(Command::Discharge(vec![0.9, 0.9]));
        link.step(0.1, 0.0, 1.0);
        match &link.take_responses()[0] {
            Response::Nack(msg) => assert!(msg.contains("sum")),
            other => panic!("expected Nack, got {other:?}"),
        }
    }

    #[test]
    fn query_returns_status_rows() {
        let mut link = Link::ideal(pack());
        link.send(Command::QueryBatteryStatus);
        link.step(0.1, 0.0, 1.0);
        match &link.take_responses()[0] {
            Response::Status(rows) => assert_eq!(rows.len(), 2),
            other => panic!("expected Status, got {other:?}"),
        }
    }

    #[test]
    fn commands_apply_in_order() {
        let mut link = Link::ideal(pack());
        link.send(Command::Discharge(vec![1.0, 0.0]));
        link.send(Command::Discharge(vec![0.0, 1.0]));
        link.step(3.0, 0.0, 60.0);
        // Last command wins: battery 1 discharges.
        assert!(link.cells()[0].is_full());
        assert!(link.cells()[1].soc() < 1.0);
    }
}
