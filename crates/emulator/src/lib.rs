//! The SDB hardware emulator.
//!
//! This crate stands in for the paper's prototype board (Section 4.1): the
//! ARM microcontroller, the switching/charging circuitry, the per-battery
//! fuel gauges, and the Bluetooth link to the OS. It wires the
//! battery-model and power-electronics substrates into a device the SDB
//! Runtime can drive through exactly the paper's four APIs:
//!
//! * `Charge(c1..cN)` — [`micro::Microcontroller::set_charge_ratios`]
//! * `Discharge(d1..dN)` — [`micro::Microcontroller::set_discharge_ratios`]
//! * `ChargeOneFromAnother(X, Y, W, T)` —
//!   [`micro::Microcontroller::charge_one_from_another`]
//! * `QueryBatteryStatus()` — [`micro::Microcontroller::query_battery_status`]
//!
//! Modules:
//!
//! * [`profile`] — CC-CV charging profiles with dynamic selection
//!   ("multiple charge profiles", Figure 4c).
//! * [`pack`] — heterogeneous battery pack assembly.
//! * [`micro`] — the microcontroller: ratio enforcement, charging,
//!   battery-to-battery transfer, status reporting, and per-step energy
//!   accounting.
//! * [`link`] — the OS↔controller transport with injectable latency and
//!   drops (the prototype used Bluetooth).
//! * [`acpi`] — the legacy single-logical-battery view (ACPI `_BST`-style)
//!   for unmodified OS components (paper §2.2).
//! * [`snapshot`] — versioned, bit-exact pack state capture/restore
//!   ([`snapshot::PackSnapshot`]) for planner rollouts, campaign
//!   checkpointing, and the SoA engine.
//! * [`soa`] — structure-of-arrays cohort state with a quiescence
//!   classifier and closed-form fast-forward for the batched fleet engine.

//! # Example
//!
//! ```
//! use sdb_battery_model::{BatterySpec, Chemistry};
//! use sdb_emulator::PackBuilder;
//!
//! let mut micro = PackBuilder::new()
//!     .battery(BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 2.0))
//!     .battery(BatterySpec::from_chemistry("b", Chemistry::Type3CoPower, 2.0))
//!     .build();
//! micro.set_discharge_ratios(&[0.3, 0.7]).unwrap();
//! let report = micro.step(5.0, 0.0, 60.0);
//! assert!(report.unmet_w < 1e-9);
//! assert_eq!(micro.query_battery_status().len(), 2);
//! ```

pub mod acpi;
pub mod link;
pub mod micro;
pub mod pack;
pub mod profile;
pub mod snapshot;
pub mod soa;

pub use link::{Command, Link, LinkStats, Response};
pub use micro::{Microcontroller, StepReport};
pub use pack::{PackBuilder, PackConfig};
pub use profile::{ChargingProfile, ProfileKind};
pub use snapshot::{fnv1a_64, PackSnapshot, TransferSnapshot, PACK_SNAPSHOT_VERSION};
pub use soa::{QuiescenceConfig, SoaCohort};
