//! Structure-of-arrays cohort state with quiescence fast-forward.
//!
//! The fleet engine spends most of its time stepping devices that are
//! doing *nothing interesting*: a watch on a nightstand, a phone idling
//! in a pocket. [`SoaCohort`] lets a shard park such devices' state in
//! parallel `Vec<f64>` arrays — SoC, RC-branch voltage, OCV, DCIR, gauge
//! accumulators, one lane per device, cells contiguous within a lane —
//! and advance them with a closed-form multi-step kernel instead of the
//! full per-tick emulation. Curve evaluation goes through
//! [`CurveLut`] tables built once per cohort, so the refresh pass is a
//! branch-light array sweep.
//!
//! ## Lifecycle
//!
//! A lane is *entered* right after a real (scalar) tick established a
//! sync point: the quiescence classifier ([`SoaCohort::try_enter`])
//! checks load, directive stability (via an SoC-drift budget that keeps
//! any would-be policy push below the runtime's `materially_different`
//! threshold), and RC-transient settledness. While parked, the driver
//! calls [`SoaCohort::max_ticks`] (how far the lane may fast-forward
//! before a boundary: drift budget, stretch cap, SoC floor, gauge
//! recalibration crossing) and [`SoaCohort::advance`] (the kernel).
//! [`SoaCohort::exit`] re-materializes the device bit-exactly through a
//! [`PackSnapshot`] and the pack resumes scalar stepping — exactly at
//! directive/fault/plan-commit boundaries, which all force an exit.
//!
//! ## Exactness
//!
//! A single-tick advance (`ticks == 1`) applies bit-for-bit the same
//! SoC/RC update formulas as the scalar path, so a fast-forwarded idle
//! device with zero measured current matches per-tick stepping exactly
//! on `soc` and `v_rc`. Multi-tick advances use closed forms (`αᵏ`
//! geometric RC sums, linear SoC drain) and LUT curve reads, so terminal
//! voltage, energy, and heat accounting deviate within a small bound
//! that the property tests measure and DESIGN.md §14 documents.

use crate::micro::{Microcontroller, StepReport};
use crate::snapshot::PackSnapshot;
use sdb_battery_model::curves::CurveLut;
use sdb_battery_model::thevenin::TheveninCell;

/// Number of grid cells for the per-cohort curve tables.
const LUT_CELLS: usize = 256;

/// Quiescence classifier thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuiescenceConfig {
    /// Load threshold as a C-rate on the pack's total rated capacity: a
    /// device is quiescence-eligible only while its load stays below
    /// `max_load_c_rate × Σ capacity_ah × 3.7 V` watts.
    pub max_load_c_rate: f64,
    /// RC transient threshold: a lane may only enter quiescence when
    /// every cell's `|v_rc − I·Rc|` is below this, volts.
    pub rc_settle_v: f64,
    /// Per-stretch SoC drift budget. Keeping this well below the
    /// runtime's 0.01 `materially_different` push threshold guarantees a
    /// skipped policy evaluation could not have pushed new ratios.
    pub max_soc_drift: f64,
    /// Hard cap on fast-forwarded ticks per stretch before a re-sync.
    pub max_stretch_ticks: u32,
    /// SoC floor: lanes wake before any cell could approach empty.
    pub min_soc: f64,
}

impl Default for QuiescenceConfig {
    fn default() -> Self {
        Self {
            max_load_c_rate: 0.05,
            rc_settle_v: 2e-3,
            max_soc_drift: 0.004,
            max_stretch_ticks: 60,
            min_soc: 0.05,
        }
    }
}

/// Aggregates returned by one [`SoaCohort::advance`] call, for the
/// driver's per-hour bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdvanceTotals {
    /// Ticks fast-forwarded.
    pub ticks: u32,
    /// Load energy served, joules.
    pub load_j: f64,
    /// Circuit losses, joules.
    pub circuit_loss_j: f64,
    /// Cell heat, joules.
    pub cell_heat_j: f64,
}

/// Per-lane bookkeeping (AoS for the cold metadata; the hot per-cell
/// state lives in the flat arrays below).
#[derive(Debug, Clone, Default)]
struct LaneMeta {
    occupied: bool,
    advanced: bool,
    held_load_w: f64,
    loss_frac: f64,
    stretch_ticks: u32,
    drift_used: f64,
    time_s: f64,
    delivered_j: f64,
    circuit_loss_j: f64,
    cell_heat_j: f64,
    parked: PackSnapshot,
}

/// Structure-of-arrays state for up to `lanes` same-template devices.
///
/// All per-cell state is stored flat as `lane * n + cell`, so the kernel
/// and the LUT refresh sweep contiguous memory per lane.
#[derive(Debug)]
pub struct SoaCohort {
    n: usize,
    lanes: usize,
    cfg: QuiescenceConfig,
    // Per cell-slot configuration (identical across lanes).
    cap_ah: Vec<f64>,
    rc_r: Vec<f64>,
    tau: Vec<f64>,
    lut_ocv: Vec<CurveLut>,
    lut_dcir: Vec<CurveLut>,
    rest_thresh_a: Vec<f64>,
    alpha_dt_bits: Vec<u64>,
    alpha: Vec<f64>,
    g_lsb_a: f64,
    g_offset_a: f64,
    g_vlsb_v: f64,
    g_recal_s: f64,
    max_load_w: f64,
    lut_err_v: f64,
    // Per lane-cell arrays (lane * n + cell).
    soc: Vec<f64>,
    v_rc: Vec<f64>,
    tv: Vec<f64>,
    k_apw: Vec<f64>,
    res_mult: Vec<f64>,
    cap_eff: Vec<f64>,
    age_capfrac: Vec<f64>,
    age_crate_accum: Vec<f64>,
    age_crate_weight: Vec<f64>,
    energy_out_j: Vec<f64>,
    heat_j: Vec<f64>,
    g_soc: Vec<f64>,
    g_cap_ah: Vec<f64>,
    g_rest_s: Vec<f64>,
    g_net_c: Vec<f64>,
    g_disch_c: Vec<f64>,
    g_last_i: Vec<f64>,
    meta: Vec<LaneMeta>,
}

impl SoaCohort {
    /// Builds cohort arrays for packs shaped like `template`, hosting up
    /// to `lanes` devices.
    ///
    /// # Panics
    ///
    /// Panics if the template pack has thermal simulation enabled (such
    /// cohorts must run the scalar engine; the classifier would refuse
    /// every lane anyway).
    #[must_use]
    pub fn new(template: &Microcontroller, lanes: usize, cfg: QuiescenceConfig) -> Self {
        let n = template.battery_count();
        assert!(lanes > 0, "need at least one lane");
        let cells = template.cells();
        let mut cap_ah = Vec::with_capacity(n);
        let mut rc_r = Vec::with_capacity(n);
        let mut tau = Vec::with_capacity(n);
        let mut lut_ocv = Vec::with_capacity(n);
        let mut lut_dcir = Vec::with_capacity(n);
        let mut rest_thresh_a = Vec::with_capacity(n);
        let mut lut_err_v = 0.0f64;
        for cell in cells {
            assert!(
                cell.temperature_c().is_none(),
                "SoA cohorts require thermal simulation off"
            );
            let spec = cell.spec();
            cap_ah.push(spec.capacity_ah);
            rc_r.push(spec.concentration_r_ohm);
            tau.push(spec.concentration_r_ohm * spec.plate_c_f);
            let ocv = spec.ocp.to_lut(LUT_CELLS);
            lut_err_v = lut_err_v.max(ocv.max_abs_error(&spec.ocp));
            lut_ocv.push(ocv);
            lut_dcir.push(spec.dcir.to_lut(LUT_CELLS));
            rest_thresh_a.push(0.002 * spec.capacity_ah);
        }
        let gauge_cfg = template.gauge_config();
        let total_cap: f64 = cap_ah.iter().sum();
        let max_load_w = cfg.max_load_c_rate * total_cap * 3.7;
        let ln = lanes * n;
        Self {
            n,
            lanes,
            cfg,
            cap_ah,
            rc_r,
            tau,
            lut_ocv,
            lut_dcir,
            rest_thresh_a,
            alpha_dt_bits: vec![f64::NAN.to_bits(); n],
            alpha: vec![0.0; n],
            g_lsb_a: gauge_cfg.current_lsb_a,
            g_offset_a: gauge_cfg.current_offset_a,
            g_vlsb_v: gauge_cfg.voltage_lsb_v,
            g_recal_s: gauge_cfg.rest_recal_s,
            max_load_w,
            lut_err_v,
            soc: vec![0.0; ln],
            v_rc: vec![0.0; ln],
            tv: vec![0.0; ln],
            k_apw: vec![0.0; ln],
            res_mult: vec![0.0; ln],
            cap_eff: vec![0.0; ln],
            age_capfrac: vec![0.0; ln],
            age_crate_accum: vec![0.0; ln],
            age_crate_weight: vec![0.0; ln],
            energy_out_j: vec![0.0; ln],
            heat_j: vec![0.0; ln],
            g_soc: vec![0.0; ln],
            g_cap_ah: vec![0.0; ln],
            g_rest_s: vec![0.0; ln],
            g_net_c: vec![0.0; ln],
            g_disch_c: vec![0.0; ln],
            g_last_i: vec![0.0; ln],
            meta: (0..lanes).map(|_| LaneMeta::default()).collect(),
        }
    }

    /// Cells per pack.
    #[must_use]
    pub fn cells_per_pack(&self) -> usize {
        self.n
    }

    /// Lane capacity.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The load threshold (watts) below which devices are
    /// quiescence-eligible.
    #[must_use]
    pub fn max_load_w(&self) -> f64 {
        self.max_load_w
    }

    /// Worst-case absolute OCV error of the cohort's curve tables
    /// against the exact curves, volts (one component of the documented
    /// fast-forward bound).
    #[must_use]
    pub fn lut_max_abs_error_v(&self) -> f64 {
        self.lut_err_v
    }

    /// Whether `lane` currently holds a parked device.
    #[must_use]
    pub fn occupied(&self, lane: usize) -> bool {
        self.meta[lane].occupied
    }

    /// The quantized current the gauge would measure for a true current
    /// (no fault path — faulted gauges never enter quiescence).
    fn measure(&self, current_a: f64) -> f64 {
        let with_offset = current_a + self.g_offset_a;
        if self.g_lsb_a > 0.0 {
            (with_offset / self.g_lsb_a).round() * self.g_lsb_a
        } else {
            with_offset
        }
    }

    fn alpha_for(&mut self, c: usize, dt_s: f64) -> f64 {
        if dt_s.to_bits() != self.alpha_dt_bits[c] {
            self.alpha_dt_bits[c] = dt_s.to_bits();
            self.alpha[c] = if self.tau[c] > 0.0 && dt_s > 0.0 {
                (-dt_s / self.tau[c]).exp()
            } else if self.tau[c] > 0.0 {
                1.0
            } else {
                0.0
            };
        }
        self.alpha[c]
    }

    /// Quiescence classifier + lane entry. Call immediately after a real
    /// scalar tick (the sync point) with that tick's report and load.
    /// Returns `false` (leaving the lane empty and the pack untouched)
    /// when the device does not qualify: load above threshold, any
    /// charging/external/transfer/unmet activity, an unsettled RC
    /// transient, a cell near the SoC floor, thermal simulation or gauge
    /// faults active, or a gauge about to cross its rest-recalibration
    /// boundary.
    pub fn try_enter(
        &mut self,
        lane: usize,
        micro: &Microcontroller,
        report: &StepReport,
        load_w: f64,
        dt_s: f64,
    ) -> bool {
        assert!(!self.meta[lane].occupied, "lane {lane} already occupied");
        assert_eq!(micro.battery_count(), self.n, "pack shape mismatch");
        if load_w > self.max_load_w
            || report.unmet_w != 0.0
            || report.external_used_w != 0.0
            || report.charged_w != 0.0
            || micro.transfer_active()
        {
            return false;
        }
        let floor = self.cfg.min_soc + self.cfg.max_soc_drift;
        for (c, b) in report.batteries.iter().enumerate() {
            if b.current_a < 0.0 {
                return false;
            }
            if b.soc <= floor {
                return false;
            }
            let target = b.current_a * self.rc_r[c];
            let cell = &micro.cells()[c];
            if (cell_v_rc(cell) - target).abs() > self.cfg.rc_settle_v {
                return false;
            }
        }
        // Capture the sync-point state; the remaining checks read it.
        let mut parked = std::mem::take(&mut self.meta[lane].parked);
        micro.snapshot_into(&mut parked);
        let ok = parked.thermal_throttle.is_none()
            && parked.transfer.is_none()
            && parked.cells.iter().all(|c| c.thermal.is_none())
            && parked
                .gauges
                .iter()
                .all(|g| g.fault.is_none() && g.rest_s + dt_s < self.g_recal_s);
        if !ok {
            self.meta[lane].parked = parked;
            return false;
        }
        // Load the arrays from the snapshot + sync report.
        let base = lane * self.n;
        for c in 0..self.n {
            let idx = base + c;
            let cs = &parked.cells[c];
            let gs = &parked.gauges[c];
            let cell = &micro.cells()[c];
            self.soc[idx] = cs.soc;
            self.v_rc[idx] = cs.v_rc;
            self.tv[idx] = report.batteries[c].terminal_v;
            self.k_apw[idx] = if load_w > 0.0 {
                report.batteries[c].current_a / load_w
            } else {
                0.0
            };
            self.res_mult[idx] =
                cell.aging().resistance_multiplier() * cell.fault_resistance_mult();
            self.age_capfrac[idx] = cs.aging.capacity_fraction;
            self.cap_eff[idx] = self.cap_ah[c] * cs.aging.capacity_fraction;
            self.age_crate_accum[idx] = cs.aging.crate_accum;
            self.age_crate_weight[idx] = cs.aging.crate_weight;
            self.energy_out_j[idx] = cs.energy_out_j;
            self.heat_j[idx] = cs.heat_j;
            self.g_soc[idx] = gs.soc_estimate;
            self.g_cap_ah[idx] = gs.learned_capacity_ah;
            self.g_rest_s[idx] = gs.rest_s;
            self.g_net_c[idx] = gs.net_c;
            self.g_disch_c[idx] = gs.discharged_c;
            self.g_last_i[idx] = gs.last_i;
        }
        let meta = &mut self.meta[lane];
        meta.occupied = true;
        meta.advanced = false;
        meta.held_load_w = load_w;
        meta.loss_frac = if load_w > 0.0 {
            report.circuit_loss_w / load_w
        } else {
            0.0
        };
        meta.stretch_ticks = 0;
        meta.drift_used = 0.0;
        meta.time_s = parked.time_s;
        meta.delivered_j = parked.delivered_j;
        meta.circuit_loss_j = parked.circuit_loss_j;
        meta.cell_heat_j = parked.cell_heat_j;
        meta.parked = parked;
        true
    }

    /// How many ticks `lane` may fast-forward at `load_w` before hitting
    /// a boundary (0 = must exit and re-sync through the scalar path).
    /// Boundaries: load above threshold, a load appearing on a lane held
    /// at zero, the stretch cap, the SoC drift budget, the SoC floor,
    /// and a gauge rest-recalibration crossing.
    #[must_use]
    pub fn max_ticks(&self, lane: usize, load_w: f64, dt_s: f64) -> u32 {
        let meta = &self.meta[lane];
        if !meta.occupied || load_w > self.max_load_w {
            return 0;
        }
        if load_w > 0.0 && meta.held_load_w == 0.0 {
            return 0;
        }
        let mut ticks = self
            .cfg
            .max_stretch_ticks
            .saturating_sub(meta.stretch_ticks);
        let base = lane * self.n;
        let drift_left = (self.cfg.max_soc_drift - meta.drift_used).max(0.0);
        for c in 0..self.n {
            let idx = base + c;
            let i_a = self.k_apw[idx] * load_w;
            // Per-tick SoC movement: drain for loaded cells,
            // self-discharge for resting ones.
            let per_tick = if i_a > 0.0 {
                i_a * dt_s / 3600.0 / self.cap_eff[idx]
            } else {
                self.soc[idx] * TheveninCell::SELF_DISCHARGE_PER_S * dt_s
            };
            if per_tick > 0.0 {
                let by_drift = (drift_left / per_tick).floor();
                ticks = ticks.min(cap_u32(by_drift));
                let headroom = (self.soc[idx] - self.cfg.min_soc).max(0.0);
                ticks = ticks.min(cap_u32((headroom / per_tick).floor()));
            }
            // Rest-recalibration crossing: never let rest_s reach the
            // recal threshold inside a stretch.
            let measured = self.measure(i_a);
            if measured.abs() < self.rest_thresh_a[c] && dt_s > 0.0 {
                let until = ((self.g_recal_s - self.g_rest_s[idx]) / dt_s).ceil() - 1.0;
                ticks = ticks.min(cap_u32(until));
            }
        }
        ticks
    }

    /// The fast-forward kernel: advances `lane` by `ticks` steps of
    /// `dt_s` at constant `load_w`, entirely in the arrays.
    ///
    /// With `ticks == 1` the SoC/RC updates are bit-identical to the
    /// scalar per-tick formulas; multi-tick calls use the closed forms
    /// (`αᵏ` RC decay with geometric sums for the energy integrals,
    /// linear SoC drain, `(1−σ·dt)ᵏ` self-discharge). The caller must
    /// keep `ticks ≤ max_ticks(lane, load_w, dt_s)`.
    ///
    /// # Panics
    ///
    /// Panics if the lane is not occupied or `ticks == 0`.
    pub fn advance(&mut self, lane: usize, load_w: f64, dt_s: f64, ticks: u32) -> AdvanceTotals {
        assert!(ticks > 0, "advance needs at least one tick");
        assert!(self.meta[lane].occupied, "lane {lane} not occupied");
        let n = self.n;
        let base = lane * n;
        let k = f64::from(ticks);
        let span_s = k * dt_s;
        let loss_w = self.meta[lane].loss_frac * load_w;
        let mut heat_w_sum = 0.0f64;
        let mut max_drift = 0.0f64;
        for c in 0..n {
            let idx = base + c;
            let alpha = self.alpha_for(c, dt_s);
            let i_a = self.k_apw[idx] * load_w;
            if i_a > 0.0 {
                // Loaded cell: linear drain + geometric RC relaxation.
                let delta = i_a * dt_s / 3600.0 / self.cap_eff[idx];
                let soc0 = self.soc[idx];
                let soc_k = (soc0 - k * delta).max(0.0);
                let soc_mid = 0.5 * (soc0 + soc_k);
                let target = i_a * self.rc_r[c];
                let d0 = self.v_rc[idx] - target;
                let ak = alpha.powi(ticks.cast_signed());
                let v_rc_k = target + d0 * ak;
                // Σ_{t=1..k} v_rc_t and Σ v_rc_t² in closed form.
                let (s1, s2) = geometric_sums(alpha, ak, k);
                let sum_v_rc = k * target + d0 * s1;
                let sum_v_rc_sq = k * target * target + 2.0 * target * d0 * s1 + d0 * d0 * s2;
                // Mid-stretch curve reads (the batched LUT pass).
                let ocv_mid = self.lut_ocv[c].eval(soc_mid);
                let res_mid = self.lut_dcir[c].eval(soc_mid) * self.res_mult[idx];
                let energy = i_a * dt_s * (k * (ocv_mid - i_a * res_mid) - sum_v_rc);
                let heat_j = i_a * i_a * res_mid * span_s
                    + sum_v_rc_sq * dt_s / self.rc_r[c].max(f64::EPSILON);
                self.energy_out_j[idx] += energy.max(0.0);
                self.heat_j[idx] += heat_j;
                heat_w_sum += heat_j / span_s;
                // Aging stress bookkeeping (identical to AgingState::step
                // under pure discharge: no cycles complete).
                let c_rate = i_a / self.cap_ah[c];
                self.age_crate_accum[idx] += c_rate * (k * delta);
                self.age_crate_weight[idx] += k * delta;
                self.soc[idx] = soc_k;
                self.v_rc[idx] = v_rc_k;
                // Final-state refresh for the classifier/exit.
                let ocv_k = self.lut_ocv[c].eval(soc_k);
                let res_k = self.lut_dcir[c].eval(soc_k) * self.res_mult[idx];
                self.tv[idx] = ocv_k - i_a * res_k - v_rc_k;
                max_drift = max_drift.max(k * delta);
            } else {
                // Resting cell: exact rest() law per tick.
                let sdf = 1.0 - TheveninCell::SELF_DISCHARGE_PER_S * dt_s;
                let soc0 = self.soc[idx];
                let soc_k = if ticks == 1 {
                    (soc0 * sdf).clamp(0.0, 1.0)
                } else {
                    (soc0 * sdf.powi(ticks.cast_signed())).clamp(0.0, 1.0)
                };
                self.soc[idx] = soc_k;
                self.v_rc[idx] = if ticks == 1 {
                    self.v_rc[idx] * alpha
                } else {
                    self.v_rc[idx] * alpha.powi(ticks.cast_signed())
                };
                self.tv[idx] = self.lut_ocv[c].eval(soc_k) - self.v_rc[idx];
                max_drift = max_drift.max(soc0 - soc_k);
            }
            // Gauge: quantized integration against learned capacity.
            let measured = self.measure(i_a);
            let dsoc = measured * span_s / 3600.0 / self.g_cap_ah[idx];
            self.g_soc[idx] = (self.g_soc[idx] - dsoc).clamp(0.0, 1.0);
            let dq = measured * span_s;
            self.g_net_c[idx] += dq;
            // Pure discharge: `dq ≥ 0` (the sense offset is positive), so
            // the charge-direction counter never moves here.
            self.g_disch_c[idx] += dq;
            self.g_last_i[idx] = measured;
            if measured.abs() < self.rest_thresh_a[c] {
                self.g_rest_s[idx] += span_s;
            } else {
                self.g_rest_s[idx] = 0.0;
            }
        }
        let meta = &mut self.meta[lane];
        meta.advanced = true;
        meta.stretch_ticks += ticks;
        meta.drift_used += max_drift;
        meta.time_s += span_s;
        meta.delivered_j += load_w * span_s;
        meta.circuit_loss_j += loss_w * span_s;
        meta.cell_heat_j += heat_w_sum * span_s;
        AdvanceTotals {
            ticks,
            load_j: load_w * span_s,
            circuit_loss_j: loss_w * span_s,
            cell_heat_j: heat_w_sum * span_s,
        }
    }

    /// Re-materializes `lane` into `micro` (which must be the same
    /// device the lane was entered from) and frees the lane. The restore
    /// flows through the parked [`PackSnapshot`], updated with the
    /// array-evolved fields.
    ///
    /// # Panics
    ///
    /// Panics if the lane is not occupied or the pack shape mismatches.
    pub fn exit(&mut self, lane: usize, micro: &mut Microcontroller) {
        assert!(self.meta[lane].occupied, "lane {lane} not occupied");
        let n = self.n;
        let base = lane * n;
        let advanced = self.meta[lane].advanced;
        // Split-borrow: move the snapshot out while writing arrays back.
        let mut parked = std::mem::take(&mut self.meta[lane].parked);
        parked.time_s = self.meta[lane].time_s;
        parked.delivered_j = self.meta[lane].delivered_j;
        parked.circuit_loss_j = self.meta[lane].circuit_loss_j;
        parked.cell_heat_j = self.meta[lane].cell_heat_j;
        for c in 0..n {
            let idx = base + c;
            let cs = &mut parked.cells[c];
            cs.soc = self.soc[idx];
            cs.v_rc = self.v_rc[idx];
            cs.energy_out_j = self.energy_out_j[idx];
            cs.heat_j = self.heat_j[idx];
            cs.aging.crate_accum = self.age_crate_accum[idx];
            cs.aging.crate_weight = self.age_crate_weight[idx];
            let gs = &mut parked.gauges[c];
            gs.soc_estimate = self.g_soc[idx];
            gs.rest_s = self.g_rest_s[idx];
            gs.net_c = self.g_net_c[idx];
            gs.discharged_c = self.g_disch_c[idx];
            if advanced {
                gs.last_i = self.g_last_i[idx];
                gs.last_v = if self.g_vlsb_v > 0.0 {
                    (self.tv[idx] / self.g_vlsb_v).round() * self.g_vlsb_v
                } else {
                    self.tv[idx]
                };
            }
        }
        micro
            .restore_from(&parked)
            .expect("lane/pack shape invariant");
        let meta = &mut self.meta[lane];
        meta.parked = parked;
        meta.occupied = false;
        meta.advanced = false;
    }
}

/// `v_rc` is private to the cell; recover it from public queries:
/// `terminal_voltage(0) = ocv − v_rc`.
fn cell_v_rc(cell: &TheveninCell) -> f64 {
    cell.ocv() - cell.terminal_voltage(0.0)
}

/// `(Σ_{t=1..k} αᵗ, Σ_{t=1..k} α²ᵗ)` — geometric sums for the RC decay
/// integrals, exact at `k == 1` (`(1−α)/(1−α)` is exactly 1).
fn geometric_sums(alpha: f64, alpha_k: f64, k: f64) -> (f64, f64) {
    if alpha >= 1.0 {
        return (k, k);
    }
    if alpha <= 0.0 {
        return (0.0, 0.0);
    }
    let s1 = alpha * (1.0 - alpha_k) / (1.0 - alpha);
    let a2 = alpha * alpha;
    let s2 = a2 * (1.0 - alpha_k * alpha_k) / (1.0 - a2);
    (s1, s2)
}

fn cap_u32(x: f64) -> u32 {
    if x <= 0.0 {
        0
    } else if x >= f64::from(u32::MAX) {
        u32::MAX
    } else {
        // Truncation is the intent: a partial tick does not count.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            x as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::PackBuilder;
    use crate::profile::ProfileKind;
    use sdb_battery_model::chemistry::Chemistry;
    use sdb_battery_model::spec::BatterySpec;

    fn pack() -> Microcontroller {
        let mut m = PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 2.0),
                0.8,
                ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("b", Chemistry::Type3CoPower, 1.5),
                0.7,
                ProfileKind::Standard,
            )
            .build();
        m.set_observer(sdb_observe::Observer::disabled());
        m
    }

    #[test]
    fn classifier_rejects_heavy_load() {
        let mut m = pack();
        let mut soa = SoaCohort::new(&m, 1, QuiescenceConfig::default());
        let heavy = soa.max_load_w() * 20.0;
        let report = m.step(heavy, 0.0, 60.0);
        assert!(!soa.try_enter(0, &m, &report, heavy, 60.0));
    }

    #[test]
    fn classifier_rejects_charging() {
        let mut m = pack();
        let mut soa = SoaCohort::new(&m, 1, QuiescenceConfig::default());
        let report = m.step(0.05, 10.0, 60.0);
        assert!(!soa.try_enter(0, &m, &report, 0.05, 60.0));
    }

    #[test]
    fn enter_exit_without_advance_is_identity() {
        let mut m = pack();
        m.step(0.05, 0.0, 60.0);
        let reference = m.clone();
        let mut soa = SoaCohort::new(&m, 1, QuiescenceConfig::default());
        let report = m.step(0.05, 0.0, 60.0);
        let mut fast = m.clone();
        assert!(soa.try_enter(0, &m, &report, 0.05, 60.0));
        soa.exit(0, &mut fast);
        // The lane round-trip must be a no-op: identical snapshots.
        drop(reference);
        assert_eq!(m.snapshot(), fast.snapshot());
    }

    #[test]
    fn single_tick_advance_matches_scalar_rest_exactly() {
        // A truly idle pack (zero load): the kernel's rest branch applies
        // the identical per-tick law, so SoC and v_rc stay bit-equal.
        let mut scalar = pack();
        let mut fast = pack();
        // Sync step on both.
        scalar.step(0.0, 0.0, 60.0);
        let report = fast.step(0.0, 0.0, 60.0);
        let mut soa = SoaCohort::new(&fast, 1, QuiescenceConfig::default());
        assert!(soa.try_enter(0, &fast, &report, 0.0, 60.0));
        // Stay under the gauge's rest-recalibration boundary (the driver
        // enforces this through max_ticks; here we step manually).
        let k = soa.max_ticks(0, 0.0, 60.0).min(25);
        assert!(k >= 20, "expected a long idle stretch, got {k}");
        for _ in 0..k {
            scalar.step(0.0, 0.0, 60.0);
            soa.advance(0, 0.0, 60.0, 1);
        }
        soa.exit(0, &mut fast);
        let a = scalar.snapshot();
        let b = fast.snapshot();
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.soc.to_bits(), cb.soc.to_bits(), "soc must be bit-equal");
            assert_eq!(
                ca.v_rc.to_bits(),
                cb.v_rc.to_bits(),
                "v_rc must be bit-equal"
            );
        }
        for (ga, gb) in a.gauges.iter().zip(&b.gauges) {
            assert_eq!(ga.soc_estimate.to_bits(), gb.soc_estimate.to_bits());
            assert_eq!(ga.rest_s.to_bits(), gb.rest_s.to_bits());
            // last_v goes through the LUT: bounded, not bit-equal.
            assert!((ga.last_v - gb.last_v).abs() <= soa.lut_max_abs_error_v() + 1e-3);
        }
        assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
    }

    #[test]
    fn closed_form_matches_sequential_ticks() {
        // advance(k) vs k × advance(1) on a small constant load: the
        // closed forms must agree with sequential application tightly.
        let mut m1 = pack();
        let mut m2 = pack();
        let load = 0.08;
        let r1 = m1.step(load, 0.0, 60.0);
        let r2 = m2.step(load, 0.0, 60.0);
        let mut soa1 = SoaCohort::new(&m1, 1, QuiescenceConfig::default());
        let mut soa2 = SoaCohort::new(&m2, 1, QuiescenceConfig::default());
        assert!(soa1.try_enter(0, &m1, &r1, load, 60.0));
        assert!(soa2.try_enter(0, &m2, &r2, load, 60.0));
        let k = soa1.max_ticks(0, load, 60.0).min(12);
        assert!(k >= 4, "expected a usable stretch, got {k}");
        soa1.advance(0, load, 60.0, k);
        for _ in 0..k {
            soa2.advance(0, load, 60.0, 1);
        }
        soa1.exit(0, &mut m1);
        soa2.exit(0, &mut m2);
        let a = m1.snapshot();
        let b = m2.snapshot();
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert!(
                (ca.soc - cb.soc).abs() < 1e-9,
                "soc {} vs {}",
                ca.soc,
                cb.soc
            );
            assert!((ca.v_rc - cb.v_rc).abs() < 1e-9);
            let rel = (ca.energy_out_j - cb.energy_out_j).abs() / cb.energy_out_j.abs().max(1e-6);
            assert!(rel < 1e-3, "energy drift {rel}");
        }
        assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
    }

    #[test]
    fn fast_forward_tracks_scalar_within_bound() {
        // The adaptive-timestep equivalence property at unit level: a
        // quiescent constant-load stretch fast-forwarded in one call
        // matches per-tick scalar stepping within the documented bound.
        let load = 0.06;
        let mut scalar = pack();
        let mut fast = pack();
        let _ = scalar.step(load, 0.0, 60.0);
        let report = fast.step(load, 0.0, 60.0);
        let mut soa = SoaCohort::new(&fast, 1, QuiescenceConfig::default());
        assert!(soa.try_enter(0, &fast, &report, load, 60.0));
        let k = soa.max_ticks(0, load, 60.0).min(30);
        assert!(k >= 10, "expected a stretch of at least 10 ticks, got {k}");
        for _ in 0..k {
            scalar.step(load, 0.0, 60.0);
        }
        soa.advance(0, load, 60.0, k);
        soa.exit(0, &mut fast);
        let a = scalar.snapshot();
        let b = fast.snapshot();
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            // Documented bound: SoC within 1e-6 absolute per stretch.
            assert!(
                (ca.soc - cb.soc).abs() < 1e-6,
                "soc diverged: {} vs {}",
                ca.soc,
                cb.soc
            );
            assert!((ca.v_rc - cb.v_rc).abs() < 1e-4);
        }
        // Pack-level energy accounting within 1 % relative.
        let rel = (a.delivered_j - b.delivered_j).abs() / a.delivered_j.max(1e-9);
        assert!(rel < 0.01, "delivered_j drift {rel}");
        assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
    }
}
