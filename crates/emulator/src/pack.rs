//! Heterogeneous battery pack assembly.
//!
//! A pack combines N cells of arbitrary chemistries with the SDB charging
//! and discharging circuits and one fuel gauge per cell (Section 6: fuel
//! gauges built for homogeneous multi-cell packs "do not work when the
//! batteries are heterogeneous", so SDB uses separate gauges).

use crate::micro::Microcontroller;
use crate::profile::ProfileKind;
use sdb_battery_model::spec::BatterySpec;
use sdb_fuel_gauge::gauge::GaugeConfig;
use sdb_power_electronics::circuits::{ChargeTopology, DischargeTopology};
use std::sync::Arc;

/// One battery slot in the pack.
#[derive(Debug, Clone)]
pub struct SlotConfig {
    /// The cell in this slot. `Arc` so the cell, its gauge, and every
    /// device built from a shared fleet template reference one spec copy.
    pub spec: Arc<BatterySpec>,
    /// Initial state of charge.
    pub initial_soc: f64,
    /// Initially selected charging profile.
    pub profile: ProfileKind,
}

/// Full pack configuration.
#[derive(Debug, Clone)]
pub struct PackConfig {
    /// Battery slots.
    pub slots: Vec<SlotConfig>,
    /// Discharge circuit topology.
    pub discharge_topology: DischargeTopology,
    /// Charge circuit topology.
    pub charge_topology: ChargeTopology,
    /// Fuel-gauge configuration shared by all slots.
    pub gauge: GaugeConfig,
    /// Ambient temperature, °C: when set, every cell gets a lumped thermal
    /// model and temperature-dependent resistance.
    pub ambient_c: Option<f64>,
}

/// Builder for a [`Microcontroller`]-managed pack.
#[derive(Debug, Clone)]
pub struct PackBuilder {
    slots: Vec<SlotConfig>,
    discharge_topology: DischargeTopology,
    charge_topology: ChargeTopology,
    gauge: GaugeConfig,
    ambient_c: Option<f64>,
}

impl PackBuilder {
    /// Starts an empty pack with the SDB (integrated/reversible)
    /// topologies.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            discharge_topology: DischargeTopology::SdbIntegrated,
            charge_topology: ChargeTopology::SdbReversible,
            gauge: GaugeConfig::default(),
            ambient_c: None,
        }
    }

    /// Enables thermal simulation: every cell gets a lumped thermal model
    /// at this ambient temperature, and its resistance follows the
    /// Arrhenius temperature dependence.
    #[must_use]
    pub fn ambient_c(mut self, ambient_c: f64) -> Self {
        self.ambient_c = Some(ambient_c);
        self
    }

    /// Adds a battery at full charge with the standard profile.
    #[must_use]
    pub fn battery(self, spec: impl Into<Arc<BatterySpec>>) -> Self {
        self.battery_at(spec, 1.0, ProfileKind::Standard)
    }

    /// Adds a battery at a given SoC with a given profile. Accepts a spec
    /// by value or an `Arc` (fleet templates pass the shared `Arc` so no
    /// per-device copy is made).
    ///
    /// # Panics
    ///
    /// Panics if `initial_soc` is outside `[0, 1]`.
    #[must_use]
    pub fn battery_at(
        mut self,
        spec: impl Into<Arc<BatterySpec>>,
        initial_soc: f64,
        profile: ProfileKind,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&initial_soc),
            "soc out of range: {initial_soc}"
        );
        self.slots.push(SlotConfig {
            spec: spec.into(),
            initial_soc,
            profile,
        });
        self
    }

    /// Uses the naive circuit topologies (for ablation benches).
    #[must_use]
    pub fn naive_topologies(mut self) -> Self {
        self.discharge_topology = DischargeTopology::NaiveSwitch;
        self.charge_topology = ChargeTopology::NaiveMatrix;
        self
    }

    /// Overrides the gauge configuration.
    #[must_use]
    pub fn gauge(mut self, gauge: GaugeConfig) -> Self {
        self.gauge = gauge;
        self
    }

    /// Builds the microcontroller-managed pack.
    ///
    /// # Panics
    ///
    /// Panics if no batteries were added.
    #[must_use]
    pub fn build(self) -> Microcontroller {
        assert!(!self.slots.is_empty(), "a pack needs at least one battery");
        Microcontroller::new(PackConfig {
            slots: self.slots,
            discharge_topology: self.discharge_topology,
            charge_topology: self.charge_topology,
            gauge: self.gauge,
            ambient_c: self.ambient_c,
        })
    }
}

impl Default for PackBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdb_battery_model::chemistry::Chemistry;

    #[test]
    fn builder_assembles_pack() {
        let micro = PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .battery_at(
                BatterySpec::from_chemistry("b", Chemistry::Type3CoPower, 2.0),
                0.5,
                ProfileKind::Fast,
            )
            .build();
        assert_eq!(micro.battery_count(), 2);
        let status = micro.query_battery_status();
        assert!((status[0].soc - 1.0).abs() < 1e-9);
        assert!((status[1].soc - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one battery")]
    fn empty_pack_rejected() {
        let _ = PackBuilder::new().build();
    }

    #[test]
    #[should_panic(expected = "soc out of range")]
    fn bad_soc_rejected() {
        let _ = PackBuilder::new().battery_at(
            BatterySpec::from_chemistry("a", Chemistry::Type2CoStandard, 2.0),
            1.5,
            ProfileKind::Standard,
        );
    }
}
