//! Span timing for hot paths.
//!
//! A [`SpanGuard`] measures wall-clock time from creation to drop and
//! records the elapsed nanoseconds into a latency [`Histogram`]. The
//! well-known spans ([`SpanName`]) are pre-registered by the observer so
//! the hot paths never touch the registry lock.

use crate::metrics::Histogram;
use std::time::Instant;

/// The instrumented hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanName {
    /// One `Microcontroller::step` call.
    MicroStep,
    /// One runtime policy evaluation (an `SdbRuntime::tick` that fired).
    PolicyEval,
    /// One `run_trace` inner-loop iteration (tick + step + bookkeeping).
    TraceStep,
    /// One complete device simulation inside a fleet run.
    FleetDevice,
}

impl SpanName {
    /// Every span, in registry order.
    pub const ALL: [SpanName; 4] = [
        SpanName::MicroStep,
        SpanName::PolicyEval,
        SpanName::TraceStep,
        SpanName::FleetDevice,
    ];

    /// Index into the observer's pre-registered histogram table.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            SpanName::MicroStep => 0,
            SpanName::PolicyEval => 1,
            SpanName::TraceStep => 2,
            SpanName::FleetDevice => 3,
        }
    }

    /// The histogram metric name this span records into.
    #[must_use]
    pub fn metric_name(self) -> &'static str {
        match self {
            SpanName::MicroStep => "sdb_micro_step_ns",
            SpanName::PolicyEval => "sdb_policy_eval_ns",
            SpanName::TraceStep => "sdb_trace_step_ns",
            SpanName::FleetDevice => "sdb_fleet_device_ns",
        }
    }
}

/// Records elapsed wall-clock nanoseconds into a histogram on drop.
///
/// Owns its histogram handle (an `Arc` clone), so holding a guard never
/// borrows the observer — callers can keep mutating the observed object
/// while the span is open.
#[derive(Debug)]
pub struct SpanGuard {
    hist: Histogram,
    start: Instant,
}

impl SpanGuard {
    /// Starts a span recording into `hist`.
    #[must_use]
    pub fn new(hist: Histogram) -> Self {
        Self {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let h = Histogram::new();
        {
            let _g = SpanGuard::new(h.clone());
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() > 0);
    }

    #[test]
    fn span_indices_match_all_order() {
        for (i, s) in SpanName::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
