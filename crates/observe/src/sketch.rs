//! Streaming quantile sketches with a relative-error guarantee.
//!
//! [`QuantileSketch`] is a fixed-γ log-bucket sketch (the DDSketch /
//! "distributed distribution sketch" construction): a value `v > 0` lands
//! in bucket `⌈ln v / ln γ⌉` where `γ = (1 + α) / (1 − α)` for a chosen
//! relative accuracy `α`. Any quantile read back from the bucket counts is
//! within relative error `α` of the exact nearest-rank sample, using O(1)
//! memory in the number of observations (the bucket count grows only with
//! the *dynamic range* of the data, logarithmically).
//!
//! Two properties matter to the fleet engine:
//!
//! * **Deterministic, commutative merge.** Merging adds bucket counts, so
//!   any shard merge order produces identical counts — and therefore
//!   identical quantile estimates — just like the counter/histogram merges
//!   in [`crate::metrics`].
//! * **Rank-exact bucketing.** Bucketing is monotone, so the sketch walks
//!   to the bucket containing the *exact* nearest-rank sample
//!   (`k = ⌈q·n⌉`); only the within-bucket position is approximated.

use std::collections::BTreeMap;

/// Magnitudes below this collapse into the shared zero bucket.
const ZERO_EPS: f64 = 1e-12;

/// A mergeable log-bucket quantile sketch with relative accuracy `α`.
///
/// Handles any finite `f64` (negative values get a mirrored bucket map);
/// `NaN` observations are ignored.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Relative accuracy bound.
    alpha: f64,
    /// `ln γ` where `γ = (1 + α) / (1 − α)`.
    ln_gamma: f64,
    /// Buckets for positive magnitudes: key `k` covers `(γ^(k−1), γ^k]`.
    pos: BTreeMap<i32, u64>,
    /// Buckets for negative magnitudes (same key scheme on `|v|`).
    neg: BTreeMap<i32, u64>,
    /// Observations with `|v| < ZERO_EPS`.
    zeros: u64,
    /// Total observations.
    count: u64,
    /// Exact minimum observed (0.0 when empty).
    min: f64,
    /// Exact maximum observed (0.0 when empty).
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// The default relative accuracy: quantile estimates within 1 % of the
    /// exact nearest-rank sample.
    pub const DEFAULT_ALPHA: f64 = 0.01;

    /// A sketch with the default accuracy ([`Self::DEFAULT_ALPHA`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_accuracy(Self::DEFAULT_ALPHA)
    }

    /// A sketch guaranteeing relative error ≤ `alpha` on every quantile.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    #[must_use]
    pub fn with_accuracy(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "sketch accuracy must be in (0, 1), got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            ln_gamma: gamma.ln(),
            pos: BTreeMap::new(),
            neg: BTreeMap::new(),
            zeros: 0,
            count: 0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// The configured relative-accuracy bound.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum observed (0.0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact maximum observed (0.0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Number of occupied buckets — the sketch's actual memory footprint,
    /// which grows with the data's dynamic range, not its count.
    #[must_use]
    pub fn bucket_len(&self) -> usize {
        self.pos.len() + self.neg.len() + usize::from(self.zeros > 0)
    }

    fn key(&self, magnitude: f64) -> i32 {
        // ⌈ln m / ln γ⌉, clamped to i32; monotone in m.
        let k = (magnitude.ln() / self.ln_gamma).ceil();
        if k >= f64::from(i32::MAX) {
            i32::MAX
        } else if k <= f64::from(i32::MIN) {
            i32::MIN
        } else {
            k as i32
        }
    }

    /// The mid-bucket estimate `2γ^k / (γ + 1)`: within relative error `α`
    /// of every value the bucket covers.
    fn estimate(&self, key: i32) -> f64 {
        let gamma = self.ln_gamma.exp();
        2.0 * (f64::from(key) * self.ln_gamma).exp() / (gamma + 1.0)
    }

    /// Pre-registers every positive bucket covering `[lo, hi]` with a zero
    /// count. After prewarming, an `insert` of any value clamped into
    /// `[lo, hi]` hits an existing `BTreeMap` node and is guaranteed not
    /// to allocate — the property the `sdb-prof` hot path relies on to
    /// stay allocation-free under the counting allocator.
    ///
    /// Zero-count buckets are invisible to quantile reads and merges add
    /// them harmlessly, so prewarming never changes an estimate.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo <= hi` and both are finite.
    pub fn prewarm(&mut self, lo: f64, hi: f64) {
        assert!(
            lo > 0.0 && hi >= lo && hi.is_finite(),
            "prewarm range must satisfy 0 < lo <= hi < inf, got [{lo}, {hi}]"
        );
        let (klo, khi) = (self.key(lo), self.key(hi));
        for k in klo..=khi {
            self.pos.entry(k).or_insert(0);
        }
    }

    /// Records one observation. `NaN` is ignored; infinities saturate into
    /// the outermost buckets.
    pub fn insert(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += 1;
        let m = v.abs();
        if m < ZERO_EPS {
            self.zeros += 1;
        } else if v > 0.0 {
            *self.pos.entry(self.key(m)).or_insert(0) += 1;
        } else {
            *self.neg.entry(self.key(m)).or_insert(0) += 1;
        }
    }

    /// Folds `other`'s observations into this sketch. Merging adds bucket
    /// counts, so it is commutative and associative: any shard order
    /// produces the identical sketch.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches were built with different accuracies
    /// (their buckets would not line up).
    pub fn merge_from(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-15,
            "cannot merge sketches with different accuracies ({} vs {})",
            self.alpha,
            other.alpha
        );
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.zeros += other.zeros;
        for (k, n) in &other.pos {
            *self.pos.entry(*k).or_insert(0) += n;
        }
        for (k, n) in &other.neg {
            *self.neg.entry(*k).or_insert(0) += n;
        }
    }

    /// The estimated `q`-quantile (`q` clamped to `[0, 1]`), using the same
    /// nearest-rank convention as the fleet report's exact percentiles:
    /// rank `⌈q·n⌉` clamped to `[1, n]`. Returns 0.0 on an empty sketch.
    ///
    /// The estimate is within relative error [`Self::alpha`] of the exact
    /// nearest-rank sample (values smaller than the zero threshold are
    /// reported as 0.0 exactly); `q = 0` and `q = 1` additionally snap to
    /// the exact min/max.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 && q == 0.0 {
            return self.min;
        }
        if rank == self.count {
            return self.max.min(self.estimate_at_rank(rank)).max(self.min);
        }
        self.estimate_at_rank(rank).clamp(self.min, self.max)
    }

    fn estimate_at_rank(&self, rank: u64) -> f64 {
        let mut seen = 0u64;
        // Ascending value order: most-negative first (descending |v| key),
        // then zeros, then positives (ascending key).
        for (k, n) in self.neg.iter().rev() {
            seen += n;
            if seen >= rank {
                return -self.estimate(*k);
            }
        }
        seen += self.zeros;
        if seen >= rank {
            return 0.0;
        }
        for (k, n) in &self.pos {
            seen += n;
            if seen >= rank {
                return self.estimate(*k);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank percentile, matching the fleet report.
    fn exact(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len();
        let k = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[k - 1]
    }

    fn rel_err(est: f64, exact: f64) -> f64 {
        (est - exact).abs() / exact.abs().max(ZERO_EPS)
    }

    #[test]
    fn quantiles_respect_the_error_bound() {
        let mut sk = QuantileSketch::new();
        // Deterministic pseudo-random-ish spread over 5 decades.
        let values: Vec<f64> = (1..=5000u64)
            .map(|i| {
                let x = (i as f64 * 0.7391) % 5.0;
                10f64.powf(x) + i as f64 * 1e-3
            })
            .collect();
        for &v in &values {
            sk.insert(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        for q in [0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999] {
            let e = exact(&sorted, q);
            let got = sk.quantile(q);
            assert!(
                rel_err(got, e) <= sk.alpha() + 1e-12,
                "q={q}: sketch {got} vs exact {e}"
            );
        }
        assert_eq!(sk.quantile(0.0), sorted[0]);
        assert_eq!(sk.count(), 5000);
    }

    #[test]
    fn handles_negatives_and_zeros() {
        let mut sk = QuantileSketch::new();
        let values = [-100.0, -1.0, 0.0, 0.0, 1.0, 100.0];
        for v in values {
            sk.insert(v);
        }
        assert_eq!(sk.min(), -100.0);
        assert_eq!(sk.max(), 100.0);
        // Rank 2 of 6 at q=0.25 → −1.0 (within α).
        assert!(rel_err(sk.quantile(0.25), -1.0) <= sk.alpha() + 1e-12);
        // Rank 4 of 6 (q=0.55 → ⌈3.3⌉) is a zero.
        assert_eq!(sk.quantile(0.55), 0.0);
    }

    #[test]
    fn nan_is_ignored_and_empty_is_zero() {
        let mut sk = QuantileSketch::new();
        assert_eq!(sk.quantile(0.5), 0.0);
        sk.insert(f64::NAN);
        assert!(sk.is_empty());
        sk.insert(2.0);
        assert_eq!(sk.count(), 1);
        assert!(rel_err(sk.quantile(0.5), 2.0) <= sk.alpha());
    }

    #[test]
    fn merge_equals_single_stream() {
        let values: Vec<f64> = (1..=999u64).map(|i| (i as f64).sqrt() * 3.7).collect();
        let mut whole = QuantileSketch::new();
        for &v in &values {
            whole.insert(v);
        }
        let mut parts: Vec<QuantileSketch> = (0..7).map(|_| QuantileSketch::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            parts[i % 7].insert(v);
        }
        let mut merged = QuantileSketch::new();
        for p in &parts {
            merged.merge_from(p);
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn merge_is_order_invariant() {
        let mut shards: Vec<QuantileSketch> = (0..5)
            .map(|s| {
                let mut sk = QuantileSketch::new();
                for i in 0..200u64 {
                    sk.insert((s * 1000 + i) as f64 * 0.31 + 1.0);
                }
                sk
            })
            .collect();
        let mut forward = QuantileSketch::new();
        for s in &shards {
            forward.merge_from(s);
        }
        shards.reverse();
        let mut backward = QuantileSketch::new();
        for s in &shards {
            backward.merge_from(s);
        }
        assert_eq!(forward, backward);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(
                forward.quantile(q).to_bits(),
                backward.quantile(q).to_bits()
            );
        }
    }

    #[test]
    fn memory_is_bounded_by_dynamic_range_not_count() {
        let mut sk = QuantileSketch::new();
        for i in 0..100_000u64 {
            sk.insert(1.0 + (i % 1000) as f64);
        }
        // Three decades of range at α=1 % is a few hundred buckets at most.
        assert!(sk.bucket_len() < 600, "buckets: {}", sk.bucket_len());
    }

    #[test]
    fn prewarm_covers_clamped_inserts_without_new_buckets() {
        let mut sk = QuantileSketch::with_accuracy(0.05);
        sk.prewarm(1.0, 1e6);
        let warmed = sk.bucket_len();
        assert!(warmed > 0);
        for i in 0..10_000u64 {
            let v = (i as f64 * 733.17 + 0.003).clamp(1.0, 1e6);
            sk.insert(v);
        }
        assert_eq!(
            sk.bucket_len(),
            warmed,
            "clamped inserts must reuse prewarmed buckets"
        );
        assert_eq!(sk.count(), 10_000);
        // Quantiles are unaffected by the zero-count buckets.
        let q = sk.quantile(0.5);
        assert!(q > 0.0 && q <= 1e6 * (1.0 + sk.alpha()));
    }

    #[test]
    fn prewarmed_sketch_merges_like_a_plain_one() {
        let mut warmed = QuantileSketch::with_accuracy(0.05);
        warmed.prewarm(1.0, 1e4);
        let mut plain = QuantileSketch::with_accuracy(0.05);
        for i in 1..=500u64 {
            warmed.insert(i as f64 * 3.3);
            plain.insert(i as f64 * 3.3);
        }
        let mut merged = QuantileSketch::with_accuracy(0.05);
        merged.merge_from(&warmed);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile(q).to_bits(), plain.quantile(q).to_bits());
        }
        assert_eq!(merged.count(), plain.count());
    }

    #[test]
    #[should_panic(expected = "different accuracies")]
    fn merging_mismatched_accuracies_panics() {
        let mut a = QuantileSketch::with_accuracy(0.01);
        a.merge_from(&QuantileSketch::with_accuracy(0.02));
    }
}
