//! A zero-dependency metrics registry: counters, gauges, and fixed
//! log-scale-bucket histograms with cheap `Arc`-backed handles.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Clone` and record
//! through atomics, so hot paths can cache a handle once and update it
//! without ever touching the registry lock. The registry itself is only
//! locked at registration and export time.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter starting at zero (unregistered; usually obtained from
    /// [`MetricsRegistry::counter`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` value (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Self(Arc::new(AtomicU64::new(0.0_f64.to_bits())))
    }
}

impl Gauge {
    /// A gauge starting at zero (unregistered; usually obtained from
    /// [`MetricsRegistry::gauge`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of finite histogram buckets (one more `+Inf` bucket is implicit).
pub const HISTOGRAM_BUCKETS: usize = 20;

/// Upper bounds (inclusive) of the finite histogram buckets.
///
/// Log-scale, doubling from 128 to `128 << 19` (≈ 67 million). Recorded
/// values are unitless `u64`s; span timing records nanoseconds, which puts
/// the top finite bucket at ~67 ms — far above any simulation hot path.
#[must_use]
pub fn bucket_bounds() -> [u64; HISTOGRAM_BUCKETS] {
    let mut bounds = [0u64; HISTOGRAM_BUCKETS];
    let mut b = 128u64;
    for bound in &mut bounds {
        *bound = b;
        b *= 2;
    }
    bounds
}

#[derive(Debug, Default)]
struct HistogramCore {
    /// Finite buckets followed by the overflow (`+Inf`) bucket.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A histogram with fixed log-scale buckets (see [`bucket_bounds`]).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// An empty histogram (unregistered; usually obtained from
    /// [`MetricsRegistry::histogram`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        // Bucket index via bit math: bounds are 128 << i, so the index is
        // how far v's highest bit sits above bit 7.
        let idx = if v <= 128 {
            0
        } else {
            let msb = 63 - (v - 1).leading_zeros() as usize;
            (msb - 6).min(HISTOGRAM_BUCKETS)
        };
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts: finite buckets in [`bucket_bounds`] order, then
    /// the overflow bucket.
    #[must_use]
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS + 1] {
        let mut out = [0u64; HISTOGRAM_BUCKETS + 1];
        for (o, b) in out.iter_mut().zip(&self.0.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Folds `other`'s observations into this histogram (bucket counts,
    /// count, and sum all add). Used to combine per-shard histograms after
    /// a parallel run; merging is commutative, so shard order is
    /// irrelevant.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.0.buckets.iter().zip(other.bucket_counts()) {
            mine.fetch_add(theirs, Ordering::Relaxed);
        }
        self.0.count.fetch_add(other.count(), Ordering::Relaxed);
        self.0.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }
}

/// The value side of one registered metric.
#[derive(Debug, Clone)]
enum MetricValue {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time reading of one registered metric, as returned by
/// [`MetricsRegistry::samples`]. The scrape surface the `sdb-tsdb`
/// telemetry store records from.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name.
    pub name: String,
    /// Registered label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SampleValue,
}

/// The value of one [`MetricSample`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(f64),
    /// A histogram reading: observation count and sum (bucket detail stays
    /// behind the exporters).
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of all observations.
        sum: u64,
    },
}

#[derive(Debug, Clone)]
struct Metric {
    name: String,
    labels: Vec<(String, String)>,
    value: MetricValue,
}

/// A registry of named metrics with Prometheus-text and JSON exporters.
///
/// Cloning the registry clones a shared handle: registrations and values
/// are visible through every clone.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Vec<Metric>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricValue,
    ) -> MetricValue {
        let mut metrics = self.inner.lock().expect("metrics registry poisoned");
        if let Some(m) = metrics.iter().find(|m| {
            m.name == name
                && m.labels.len() == labels.len()
                && m.labels
                    .iter()
                    .zip(labels)
                    .all(|((k0, v0), (k1, v1))| k0 == k1 && v0 == v1)
        }) {
            return m.value.clone();
        }
        let value = make();
        metrics.push(Metric {
            name: name.to_owned(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            value: value.clone(),
        });
        value
    }

    /// Returns the counter registered under `name` + `labels`, registering
    /// a fresh one on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name/labels pair is already registered as a different
    /// metric kind.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || MetricValue::Counter(Counter::new())) {
            MetricValue::Counter(c) => c,
            _ => panic!("metric `{name}` already registered as a non-counter"),
        }
    }

    /// Returns the gauge registered under `name` + `labels`, registering a
    /// fresh one on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name/labels pair is already registered as a different
    /// metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || MetricValue::Gauge(Gauge::new())) {
            MetricValue::Gauge(g) => g,
            _ => panic!("metric `{name}` already registered as a non-gauge"),
        }
    }

    /// Returns the histogram registered under `name` + `labels`,
    /// registering a fresh one on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name/labels pair is already registered as a different
    /// metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_insert(name, labels, || MetricValue::Histogram(Histogram::new())) {
            MetricValue::Histogram(h) => h,
            _ => panic!("metric `{name}` already registered as a non-histogram"),
        }
    }

    /// Folds every metric of `other` into this registry: counters add,
    /// gauges take the maximum, histograms merge bucket-wise. Metrics not
    /// yet present here are registered first, so merging into an empty
    /// registry copies `other`'s totals.
    ///
    /// The combine operations are commutative and associative, which makes
    /// the merged result independent of shard order — the property the
    /// fleet engine's deterministic report depends on.
    ///
    /// # Panics
    ///
    /// Panics if either registry lock is poisoned, or if a name/labels
    /// pair is registered with different metric kinds in the two
    /// registries.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        let theirs: Vec<Metric> = other
            .inner
            .lock()
            .expect("metrics registry poisoned")
            .clone();
        for m in theirs {
            let labels: Vec<(&str, &str)> = m
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            match &m.value {
                MetricValue::Counter(c) => {
                    self.counter(&m.name, &labels).add(c.get());
                }
                MetricValue::Gauge(g) => {
                    let mine = self.gauge(&m.name, &labels);
                    mine.set(mine.get().max(g.get()));
                }
                MetricValue::Histogram(h) => {
                    self.histogram(&m.name, &labels).merge_from(h);
                }
            }
        }
    }

    /// A point-in-time snapshot of every registered metric, in
    /// registration order. This is the scrape surface: periodic samplers
    /// (the `sdb-tsdb` store) read it without caring about metric kinds,
    /// and the atomics make each individual reading coherent even while
    /// hot paths keep recording.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn samples(&self) -> Vec<MetricSample> {
        let metrics = self.inner.lock().expect("metrics registry poisoned");
        metrics
            .iter()
            .map(|m| MetricSample {
                name: m.name.clone(),
                labels: m.labels.clone(),
                value: match &m.value {
                    MetricValue::Counter(c) => SampleValue::Counter(c.get()),
                    MetricValue::Gauge(g) => SampleValue::Gauge(g.get()),
                    MetricValue::Histogram(h) => SampleValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                    },
                },
            })
            .collect()
    }

    /// Every registered counter as `(name, value)`, label sets collapsed
    /// by summation, sorted by name. The deterministic counter export used
    /// in fleet reports.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn counter_totals(&self) -> Vec<(String, u64)> {
        let metrics = self.inner.lock().expect("metrics registry poisoned");
        let mut totals: Vec<(String, u64)> = Vec::new();
        for m in metrics.iter() {
            if let MetricValue::Counter(c) = &m.value {
                match totals.iter_mut().find(|(name, _)| *name == m.name) {
                    Some((_, total)) => *total += c.get(),
                    None => totals.push((m.name.clone(), c.get())),
                }
            }
        }
        totals.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        totals
    }

    /// Number of registered metrics.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("metrics registry poisoned").len()
    }

    /// Whether the registry has no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every metric in the Prometheus text exposition format: one
    /// `name{labels} value` (or bare `name value`) line per sample, with
    /// histograms expanded into `_bucket`/`_sum`/`_count` series.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        let metrics = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::with_capacity(metrics.len() * 48);
        for m in metrics.iter() {
            match &m.value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", m.name, label_set(&m.labels, &[]), c.get());
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        m.name,
                        label_set(&m.labels, &[]),
                        fmt_f64(g.get())
                    );
                }
                MetricValue::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (bound, n) in bucket_bounds().iter().zip(&counts) {
                        cumulative += n;
                        let le = bound.to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            m.name,
                            label_set(&m.labels, &[("le", &le)]),
                            cumulative
                        );
                    }
                    cumulative += counts[HISTOGRAM_BUCKETS];
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.name,
                        label_set(&m.labels, &[("le", "+Inf")]),
                        cumulative
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        m.name,
                        label_set(&m.labels, &[]),
                        h.sum()
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        m.name,
                        label_set(&m.labels, &[]),
                        h.count()
                    );
                }
            }
        }
        out
    }

    /// Renders every metric as a JSON array of objects.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock is poisoned.
    #[must_use]
    pub fn to_json(&self) -> String {
        let metrics = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::from("[");
        for (i, m) in metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":{},\"labels\":{{", json_str(&m.name));
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(k), json_str(v));
            }
            out.push_str("},");
            match &m.value {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{}", c.get());
                }
                MetricValue::Gauge(g) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{}", fmt_f64(g.get()));
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count(),
                        h.sum()
                    );
                    let counts = h.bucket_counts();
                    for (j, (bound, n)) in bucket_bounds().iter().zip(&counts).enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{{\"le\":{bound},\"count\":{n}}}");
                    }
                    let _ = write!(
                        out,
                        ",{{\"le\":\"+Inf\",\"count\":{}}}]",
                        counts[HISTOGRAM_BUCKETS]
                    );
                }
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

/// Formats a label set: `{k="v",...}` or the empty string when there are
/// no labels. `extra` entries are appended after the registered labels.
fn label_set(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON/Prometheus-safe float formatting (finite shortest round-trip,
/// `NaN`/`+Inf`/`-Inf` spelled out Prometheus-style).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else {
        format!("{v:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("sdb_steps_total", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name+labels returns the same underlying counter.
        assert_eq!(reg.counter("sdb_steps_total", &[]).get(), 5);
        // Different labels → a distinct counter.
        assert_eq!(reg.counter("sdb_steps_total", &[("k", "v")]).get(), 0);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("sdb_soc", &[("battery", "0")]);
        g.set(0.75);
        assert!((reg.gauge("sdb_soc", &[("battery", "0")]).get() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        let bounds = bucket_bounds();
        assert_eq!(bounds[0], 128);
        for w in bounds.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
        let h = Histogram::new();
        h.record(1); // → first bucket
        h.record(128); // boundary → first bucket (le is inclusive)
        h.record(129); // → second bucket
        h.record(u64::MAX); // → overflow bucket
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[HISTOGRAM_BUCKETS], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn histogram_bucket_boundaries_exact() {
        // Every bound lands in its own bucket; bound+1 lands in the next.
        let h = Histogram::new();
        for (i, bound) in bucket_bounds().iter().enumerate() {
            let before = h.bucket_counts();
            h.record(*bound);
            h.record(bound + 1);
            let after = h.bucket_counts();
            assert_eq!(after[i], before[i] + 1, "bucket {i}");
            assert_eq!(after[i + 1], before[i + 1] + 1, "bucket {}", i + 1);
        }
    }

    #[test]
    fn prometheus_text_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("sdb_pushes_total", &[("flow", "discharge")])
            .inc();
        reg.gauge("sdb_directive", &[]).set(0.5);
        reg.histogram("sdb_step_ns", &[]).record(200);
        let text = reg.to_prometheus_text();
        assert!(text.contains("sdb_pushes_total{flow=\"discharge\"} 1\n"));
        assert!(text.contains("sdb_directive 0.5\n"));
        assert!(text.contains("sdb_step_ns_bucket{le=\"256\"} 1\n"));
        assert!(text.contains("sdb_step_ns_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("sdb_step_ns_sum 200\n"));
        assert!(text.contains("sdb_step_ns_count 1\n"));
        // Histogram buckets are cumulative.
        let last_bucket = text
            .lines()
            .rfind(|l| l.starts_with("sdb_step_ns_bucket"))
            .unwrap();
        assert!(last_bucket.ends_with(" 1"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", &[("k", "v")]).add(3);
        reg.gauge("b", &[]).set(1.25);
        reg.histogram("h_ns", &[]).record(1000);
        let json = reg.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"a_total\""));
        assert!(json.contains("\"k\":\"v\""));
        assert!(json.contains("\"value\":3"));
        assert!(json.contains("\"value\":1.25"));
        assert!(json.contains("\"type\":\"histogram\""));
        assert!(json.contains("\"le\":\"+Inf\""));
        // Balanced braces/brackets (cheap structural sanity check).
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", &[("path", "a\"b\\c")]).inc();
        let text = reg.to_prometheus_text();
        assert!(text.contains("path=\"a\\\"b\\\\c\""));
    }

    #[test]
    fn prometheus_escapes_quote_backslash_and_newline() {
        // Regression: every escapable character of the exposition format
        // (`"`, `\`, literal newline) in one label value, in an order that
        // would double-escape if the backslash pass ran last.
        let reg = MetricsRegistry::new();
        reg.counter("esc_total", &[("v", "q\"uote b\\ack n\new")])
            .inc();
        let text = reg.to_prometheus_text();
        assert!(text.contains(r#"v="q\"uote b\\ack n\new""#), "got: {text}");
        // The rendered line must stay a single physical line.
        let line = text
            .lines()
            .find(|l| l.starts_with("esc_total"))
            .expect("metric rendered");
        assert!(line.ends_with(" 1"));
    }

    #[test]
    fn json_export_escapes_control_characters() {
        let reg = MetricsRegistry::new();
        reg.counter("esc_total", &[("v", "a\"b\\c\nd\te\u{1}f")])
            .inc();
        let json = reg.to_json();
        assert!(
            json.contains(r#""v":"a\"b\\c\nd\te\u0001f""#),
            "got: {json}"
        );
        // No raw control characters may survive into the JSON text.
        assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != ' '));
    }

    #[test]
    fn merge_combines_all_metric_kinds() {
        let a = MetricsRegistry::new();
        a.counter("steps_total", &[]).add(3);
        a.gauge("soc", &[]).set(0.25);
        a.histogram("lat_ns", &[]).record(200);

        let b = MetricsRegistry::new();
        b.counter("steps_total", &[]).add(4);
        b.counter("only_in_b_total", &[]).inc();
        b.gauge("soc", &[]).set(0.75);
        b.histogram("lat_ns", &[]).record(300);

        a.merge_from(&b);
        assert_eq!(a.counter("steps_total", &[]).get(), 7);
        assert_eq!(a.counter("only_in_b_total", &[]).get(), 1);
        assert!((a.gauge("soc", &[]).get() - 0.75).abs() < 1e-12);
        let h = a.histogram("lat_ns", &[]);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 500);
        // Source registry is untouched.
        assert_eq!(b.counter("steps_total", &[]).get(), 4);
    }

    #[test]
    fn merge_is_order_independent_for_counters_and_histograms() {
        let build = |order: &[u64]| {
            let merged = MetricsRegistry::new();
            for &v in order {
                let shard = MetricsRegistry::new();
                shard.counter("n_total", &[]).add(v);
                shard.histogram("h_ns", &[]).record(v);
                merged.merge_from(&shard);
            }
            (
                merged.counter_totals(),
                merged.histogram("h_ns", &[]).bucket_counts(),
            )
        };
        assert_eq!(build(&[100, 5000, 77]), build(&[77, 100, 5000]));
    }

    #[test]
    fn counter_totals_sums_label_sets_and_sorts() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total", &[("k", "a")]).add(2);
        reg.counter("z_total", &[("k", "b")]).add(3);
        reg.counter("a_total", &[]).inc();
        reg.gauge("ignored", &[]).set(9.0);
        assert_eq!(
            reg.counter_totals(),
            vec![("a_total".to_owned(), 1), ("z_total".to_owned(), 5)]
        );
    }

    #[test]
    fn samples_snapshot_every_kind() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", &[("k", "v")]).add(3);
        reg.gauge("g", &[]).set(2.5);
        let h = reg.histogram("h_ns", &[]);
        h.record(100);
        h.record(200);
        let samples = reg.samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "c_total");
        assert_eq!(samples[0].labels, vec![("k".to_owned(), "v".to_owned())]);
        assert_eq!(samples[0].value, SampleValue::Counter(3));
        assert_eq!(samples[1].value, SampleValue::Gauge(2.5));
        assert_eq!(
            samples[2].value,
            SampleValue::Histogram { count: 2, sum: 300 }
        );
    }

    #[test]
    fn handles_shared_across_clones() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("shared_total", &[]);
        let reg2 = reg.clone();
        reg2.counter("shared_total", &[]).add(7);
        assert_eq!(c.get(), 7);
    }
}
