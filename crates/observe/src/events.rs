//! The structured event bus: event vocabulary, sinks, and the
//! flight-recorder ring buffer.
//!
//! Every layer of the SDB stack emits [`ObsEvent`]s through an
//! [`crate::Observer`]; attached [`EventSink`]s receive them with a
//! simulation-time stamp. The [`FlightRecorder`] keeps the last N events
//! in a bounded ring for post-mortem dumps; [`StderrLogger`] streams them
//! as they happen.

use std::fmt;
use std::sync::{Arc, Mutex};

/// Direction of a power flow (ratio pushes, safety clamps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Power flowing into batteries.
    Charge,
    /// Power flowing out of batteries.
    Discharge,
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Flow::Charge => "charge",
            Flow::Discharge => "discharge",
        })
    }
}

/// A structured event from somewhere in the SDB stack.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// The hardware accepted a new set of charge/discharge ratios.
    RatioPush {
        /// Which flow the ratios steer.
        flow: Flow,
        /// The realized per-battery ratios.
        ratios: Vec<f64>,
    },
    /// A battery's charging profile changed (dynamic profile selection).
    ProfileTransition {
        /// Battery index.
        battery: usize,
        /// Previous profile name.
        from: &'static str,
        /// New profile name.
        to: &'static str,
    },
    /// A battery's thermal charge-throttle latched or released.
    ThermalThrottle {
        /// Battery index.
        battery: usize,
        /// `true` when the throttle engaged, `false` when it released.
        engaged: bool,
        /// Cell temperature at the transition, °C.
        temperature_c: f64,
    },
    /// A fuel gauge recalibrated its SoC estimate from a rested OCV.
    GaugeRecalibration {
        /// Battery index.
        battery: usize,
        /// SoC estimate before the recalibration.
        soc_before: f64,
        /// SoC estimate after the recalibration.
        soc_after: f64,
    },
    /// The SDB runtime re-evaluated its policies.
    PolicyEvaluation {
        /// Whether any ratio change was pushed to the hardware.
        pushed: bool,
        /// The charging directive in force.
        charge_directive: f64,
        /// The discharging directive in force.
        discharge_directive: f64,
    },
    /// A fault was injected (dropped link command, induced failure).
    FaultInjection {
        /// Human-readable description of the fault.
        description: String,
    },
    /// The firmware clamped a requested current at a hardware safety
    /// limit.
    SafetyClamp {
        /// Battery index.
        battery: usize,
        /// Which flow was clamped.
        flow: Flow,
        /// Requested current magnitude, amps.
        requested_a: f64,
        /// Applied (clamped) current magnitude, amps.
        applied_a: f64,
    },
    /// One emulation step's summary (the telemetry row shape).
    StepSample {
        /// Requested load, watts.
        load_w: f64,
        /// Load served, watts.
        supplied_w: f64,
        /// Total losses this step (circuit + cell heat), watts.
        loss_w: f64,
        /// Per-battery state of charge after the step.
        soc: Vec<f64>,
        /// Per-battery current (positive = discharge), amps.
        current_a: Vec<f64>,
    },
    /// A battery was attached or detached.
    BatteryPresence {
        /// Battery index.
        battery: usize,
        /// Whether the battery is now physically attached.
        present: bool,
    },
    /// The runtime re-sent an unacknowledged command over the link.
    CommandRetry {
        /// Retry attempt number (1 = first re-send).
        attempt: u32,
        /// Backoff that elapsed before this retry, seconds.
        backoff_s: f64,
    },
    /// The runtime's link watchdog engaged (falling back to safe uniform
    /// ratios) or disengaged (link restored, normal policy resumed).
    WatchdogTransition {
        /// `true` when the watchdog engaged, `false` on recovery.
        engaged: bool,
        /// How long the link had been silent at the transition, seconds.
        silent_s: f64,
    },
    /// The runtime flagged a fuel gauge as degraded (or healthy again).
    GaugeDegraded {
        /// Battery index.
        battery: usize,
        /// `true` when flagged degraded, `false` when cleared.
        degraded: bool,
        /// Why the gauge was flagged (e.g. `"stuck-soc"`).
        reason: &'static str,
    },
    /// A lookahead planner committed a new plan (re-plan) to the runtime.
    PlanCommit {
        /// The discharge directive the plan selected.
        discharge_directive: f64,
        /// Lookahead horizon the plan covers, seconds.
        horizon_s: f64,
        /// Forecast mean absolute error at plan time, watts.
        forecast_mae_w: f64,
    },
}

impl fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsEvent::RatioPush { flow, ratios } => {
                write!(f, "ratio-push {flow} {ratios:?}")
            }
            ObsEvent::ProfileTransition { battery, from, to } => {
                write!(f, "profile-transition battery={battery} {from}->{to}")
            }
            ObsEvent::ThermalThrottle {
                battery,
                engaged,
                temperature_c,
            } => write!(
                f,
                "thermal-throttle battery={battery} {} at {temperature_c:.2} C",
                if *engaged { "engaged" } else { "released" }
            ),
            ObsEvent::GaugeRecalibration {
                battery,
                soc_before,
                soc_after,
            } => write!(
                f,
                "gauge-recalibration battery={battery} soc {soc_before:.4} -> {soc_after:.4}"
            ),
            ObsEvent::PolicyEvaluation {
                pushed,
                charge_directive,
                discharge_directive,
            } => write!(
                f,
                "policy-evaluation pushed={pushed} charge={charge_directive:.3} discharge={discharge_directive:.3}"
            ),
            ObsEvent::FaultInjection { description } => {
                write!(f, "fault-injection {description}")
            }
            ObsEvent::SafetyClamp {
                battery,
                flow,
                requested_a,
                applied_a,
            } => write!(
                f,
                "safety-clamp battery={battery} {flow} {requested_a:.3} A -> {applied_a:.3} A"
            ),
            ObsEvent::StepSample {
                load_w, supplied_w, ..
            } => write!(f, "step load={load_w:.3} W supplied={supplied_w:.3} W"),
            ObsEvent::BatteryPresence { battery, present } => {
                write!(
                    f,
                    "battery-presence battery={battery} {}",
                    if *present { "attached" } else { "detached" }
                )
            }
            ObsEvent::CommandRetry { attempt, backoff_s } => {
                write!(f, "command-retry attempt={attempt} after {backoff_s:.3} s")
            }
            ObsEvent::WatchdogTransition { engaged, silent_s } => write!(
                f,
                "watchdog {} after {silent_s:.1} s silent",
                if *engaged { "engaged" } else { "recovered" }
            ),
            ObsEvent::GaugeDegraded {
                battery,
                degraded,
                reason,
            } => write!(
                f,
                "gauge-degraded battery={battery} {} ({reason})",
                if *degraded { "flagged" } else { "cleared" }
            ),
            ObsEvent::PlanCommit {
                discharge_directive,
                horizon_s,
                forecast_mae_w,
            } => write!(
                f,
                "plan-commit discharge={discharge_directive:.3} horizon={horizon_s:.0} s mae={forecast_mae_w:.3} W"
            ),
        }
    }
}

/// An event with its simulation-time stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Simulation time of the event, seconds.
    pub t_s: f64,
    /// The event.
    pub event: ObsEvent,
}

/// A consumer of timed events.
pub trait EventSink: Send {
    /// Receives one event stamped with simulation time `t_s`.
    fn record(&mut self, t_s: f64, event: &ObsEvent);
}

/// Shared-sink adapter: lets the caller keep a handle to a sink (to dump
/// it later) while the observer owns another.
impl<S: EventSink> EventSink for Arc<Mutex<S>> {
    fn record(&mut self, t_s: f64, event: &ObsEvent) {
        if let Ok(mut sink) = self.lock() {
            sink.record(t_s, event);
        }
    }
}

/// A bounded ring buffer of the most recent events, for post-mortem dumps.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Vec<TimedEvent>,
    capacity: usize,
    /// Index the next event will be written at.
    next: usize,
    /// Total events ever recorded (≥ `ring.len()`).
    total: u64,
    /// Incremented on every ring overwrite, so overflow is visible in the
    /// metrics registry instead of silently losing history.
    drop_counter: Option<crate::metrics::Counter>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs capacity > 0");
        Self {
            ring: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            total: 0,
            drop_counter: None,
        }
    }

    /// A recorder wrapped for sharing between the observer and the caller:
    /// attach a clone via [`crate::Observer::add_sink`], keep the original
    /// to [`FlightRecorder::dump`] later.
    #[must_use]
    pub fn shared(capacity: usize) -> Arc<Mutex<FlightRecorder>> {
        Arc::new(Mutex::new(Self::new(capacity)))
    }

    /// A shared recorder whose ring overwrites increment
    /// `sdb_dropped_events_total` in `registry`. Overflow was historically
    /// silent (only visible by polling [`FlightRecorder::overwritten`]);
    /// the counter puts event loss on the ordinary metrics scrape path so
    /// dashboards and smoke tests can assert it stays zero.
    #[must_use]
    pub fn shared_with_registry(
        capacity: usize,
        registry: &crate::metrics::MetricsRegistry,
    ) -> Arc<Mutex<FlightRecorder>> {
        let mut recorder = Self::new(capacity);
        recorder.drop_counter = Some(registry.counter("sdb_dropped_events_total", &[]));
        Arc::new(Mutex::new(recorder))
    }

    /// Attaches a counter incremented on every ring overwrite.
    pub fn set_drop_counter(&mut self, counter: crate::metrics::Counter) {
        self.drop_counter = Some(counter);
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events ever recorded, including overwritten ones.
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events lost to ring overwrites.
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.total - self.ring.len() as u64
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn dump(&self) -> Vec<TimedEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        if self.ring.len() < self.capacity {
            out.extend_from_slice(&self.ring);
        } else {
            out.extend_from_slice(&self.ring[self.next..]);
            out.extend_from_slice(&self.ring[..self.next]);
        }
        out
    }

    /// Renders the retained events as text, one `[t] event` line per
    /// event, oldest first.
    #[must_use]
    pub fn dump_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in self.dump() {
            let _ = writeln!(out, "[{:10.1}s] {}", e.t_s, e.event);
        }
        out
    }
}

impl EventSink for FlightRecorder {
    fn record(&mut self, t_s: f64, event: &ObsEvent) {
        let entry = TimedEvent {
            t_s,
            event: event.clone(),
        };
        if self.ring.len() < self.capacity {
            self.ring.push(entry);
        } else {
            self.ring[self.next] = entry;
            if let Some(c) = &self.drop_counter {
                c.inc();
            }
        }
        self.next = (self.next + 1) % self.capacity;
        self.total += 1;
    }
}

/// An event tagged with the device that emitted it — the unit of a fleet
/// trace. `seq` is the per-device emission index, so a merged multi-shard
/// trace can be re-ordered deterministically by `(device, seq)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEvent {
    /// Device index within the fleet (0 for single-device runs).
    pub device: u64,
    /// Emission index within the device's own event stream.
    pub seq: u64,
    /// Simulation time of the event, seconds.
    pub t_s: f64,
    /// The event.
    pub event: ObsEvent,
}

/// An unbounded capturing sink that tags every event with the device
/// currently being simulated. A fleet shard attaches one collector to its
/// observer and calls [`TraceCollector::set_device`] before each device
/// run; devices within a shard run sequentially, so the tag is always
/// right. The collected entries from all shards, sorted by
/// `(device, seq)`, form a deterministic fleet trace regardless of how
/// devices were distributed across threads.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    device: u64,
    next_seq: u64,
    entries: Vec<DeviceEvent>,
}

impl TraceCollector {
    /// An empty collector tagging events as device 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A collector wrapped for sharing: attach a clone via
    /// [`crate::Observer::add_sink`], keep the original to drain later.
    #[must_use]
    pub fn shared() -> Arc<Mutex<TraceCollector>> {
        Arc::new(Mutex::new(Self::new()))
    }

    /// Switches the device tag for subsequently recorded events and
    /// restarts the per-device sequence counter.
    pub fn set_device(&mut self, device: u64) {
        self.device = device;
        self.next_seq = 0;
    }

    /// Number of captured events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes and returns everything captured so far.
    pub fn drain(&mut self) -> Vec<DeviceEvent> {
        std::mem::take(&mut self.entries)
    }
}

impl EventSink for TraceCollector {
    fn record(&mut self, t_s: f64, event: &ObsEvent) {
        self.entries.push(DeviceEvent {
            device: self.device,
            seq: self.next_seq,
            t_s,
            event: event.clone(),
        });
        self.next_seq += 1;
    }
}

/// A sink that prints every event to stderr as it happens.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrLogger;

impl EventSink for StderrLogger {
    fn record(&mut self, t_s: f64, event: &ObsEvent) {
        eprintln!("[sdb {t_s:10.1}s] {event}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: usize) -> ObsEvent {
        ObsEvent::BatteryPresence {
            battery: i,
            present: true,
        }
    }

    #[test]
    fn ring_fills_then_wraps() {
        let mut r = FlightRecorder::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.record(i as f64, &ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.total_recorded(), 5);
        assert_eq!(r.overwritten(), 2);
        // Oldest-first dump: events 2, 3, 4 survive.
        let dump = r.dump();
        let times: Vec<f64> = dump.iter().map(|e| e.t_s).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
        assert_eq!(dump[0].event, ev(2));
    }

    #[test]
    fn partial_ring_dumps_in_order() {
        let mut r = FlightRecorder::new(8);
        for i in 0..3 {
            r.record(i as f64, &ev(i));
        }
        let times: Vec<f64> = r.dump().iter().map(|e| e.t_s).collect();
        assert_eq!(times, vec![0.0, 1.0, 2.0]);
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn wrap_exactly_at_capacity_boundary() {
        let mut r = FlightRecorder::new(4);
        for i in 0..4 {
            r.record(i as f64, &ev(i));
        }
        // Full but not yet overwritten: dump starts at 0.
        assert_eq!(r.dump()[0].t_s, 0.0);
        r.record(4.0, &ev(4));
        // One overwrite: dump starts at 1.
        let times: Vec<f64> = r.dump().iter().map(|e| e.t_s).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn overflow_increments_the_drop_counter() {
        let reg = crate::metrics::MetricsRegistry::new();
        let shared = FlightRecorder::shared_with_registry(2, &reg);
        let dropped = reg.counter("sdb_dropped_events_total", &[]);
        {
            let mut r = shared.lock().unwrap();
            r.record(0.0, &ev(0));
            r.record(1.0, &ev(1));
            assert_eq!(dropped.get(), 0, "no overflow while the ring has room");
            r.record(2.0, &ev(2));
            r.record(3.0, &ev(3));
            assert_eq!(dropped.get(), 2);
            assert_eq!(r.overwritten(), 2);
        }
        assert!(reg
            .to_prometheus_text()
            .contains("sdb_dropped_events_total 2\n"));
    }

    #[test]
    fn shared_sink_records_through_arc() {
        let shared = FlightRecorder::shared(4);
        let mut handle = shared.clone();
        handle.record(1.0, &ev(0));
        assert_eq!(shared.lock().unwrap().len(), 1);
    }

    #[test]
    fn dump_text_is_line_per_event() {
        let mut r = FlightRecorder::new(4);
        r.record(0.5, &ev(1));
        r.record(
            60.0,
            &ObsEvent::RatioPush {
                flow: Flow::Discharge,
                ratios: vec![0.3, 0.7],
            },
        );
        let text = r.dump_text();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("ratio-push discharge"));
    }

    #[test]
    fn trace_collector_tags_device_and_seq() {
        let mut c = TraceCollector::new();
        c.set_device(3);
        c.record(1.0, &ev(0));
        c.record(2.0, &ev(1));
        c.set_device(9);
        c.record(0.5, &ev(2));
        let entries = c.drain();
        assert!(c.is_empty());
        assert_eq!(entries.len(), 3);
        assert_eq!((entries[0].device, entries[0].seq), (3, 0));
        assert_eq!((entries[1].device, entries[1].seq), (3, 1));
        // set_device restarts the per-device sequence.
        assert_eq!((entries[2].device, entries[2].seq), (9, 0));
        assert_eq!(entries[2].t_s, 0.5);
    }

    #[test]
    fn event_display_is_stable() {
        let e = ObsEvent::ThermalThrottle {
            battery: 1,
            engaged: true,
            temperature_c: 45.25,
        };
        assert_eq!(
            e.to_string(),
            "thermal-throttle battery=1 engaged at 45.25 C"
        );
    }
}
