//! Flight-recorder observability for the SDB stack.
//!
//! The paper's devices were "instrumented to obtain fine grained (100 Hz)
//! power-draw measurements" (Section 4.3); this crate is the equivalent
//! instrumentation surface for the whole reproduction — the tracing and
//! metrics layer a production battery runtime would ship with:
//!
//! * [`metrics`] — a zero-dependency registry of counters, gauges, and
//!   log-scale-bucket histograms, with Prometheus-text and JSON exporters.
//! * [`events`] — the structured event bus: the [`ObsEvent`] vocabulary
//!   (ratio pushes, profile transitions, thermal throttling, gauge
//!   recalibrations, policy evaluations, fault injections, safety clamps),
//!   pluggable [`EventSink`]s, the bounded [`FlightRecorder`] ring buffer,
//!   and a stderr logger.
//! * [`span`] — drop-guard span timing for the hot paths, feeding latency
//!   histograms.
//!
//! Everything hangs off an [`Observer`] handle. The default observer is
//! **disabled**: every emit/record call is a branch on a `None` and no
//! event is ever constructed, so instrumented code is zero-cost until a
//! sink or registry is attached.
//!
//! # Example
//!
//! ```
//! use sdb_observe::{FlightRecorder, ObsEvent, Observer};
//!
//! let obs = Observer::new();
//! let recorder = FlightRecorder::shared(256);
//! obs.add_sink(Box::new(recorder.clone()));
//!
//! obs.set_clock(42.0);
//! obs.emit(ObsEvent::BatteryPresence { battery: 0, present: false });
//!
//! let dump = recorder.lock().unwrap().dump();
//! assert_eq!(dump.len(), 1);
//! assert_eq!(dump[0].t_s, 42.0);
//! println!("{}", obs.registry().unwrap().to_prometheus_text());
//! ```

pub mod events;
pub mod metrics;
pub mod sketch;
pub mod span;

pub use events::{
    DeviceEvent, EventSink, FlightRecorder, Flow, ObsEvent, StderrLogger, TimedEvent,
    TraceCollector,
};
pub use metrics::{Counter, Gauge, Histogram, MetricSample, MetricsRegistry, SampleValue};
pub use sketch::QuantileSketch;
pub use span::{SpanGuard, SpanName};

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

struct Shared {
    /// Current simulation time, `f64` bits (stamped onto emitted events).
    clock_bits: AtomicU64,
    /// Cached sink count so `wants_events` never takes the lock.
    sink_count: AtomicUsize,
    sinks: Mutex<Vec<Box<dyn EventSink>>>,
    registry: MetricsRegistry,
    /// Pre-registered latency histograms, indexed by [`SpanName::index`].
    spans: [Histogram; SpanName::ALL.len()],
}

/// The handle instrumented code holds: either disabled (the default — all
/// operations are no-ops costing one branch) or attached to a shared
/// registry + sink set.
///
/// Clones share the same underlying state, so one observer can be threaded
/// through every layer (microcontroller, gauges, runtime, scheduler) and
/// all of them land in the same flight recorder and registry.
#[derive(Clone, Default)]
pub struct Observer {
    shared: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.shared {
            None => f.write_str("Observer(disabled)"),
            Some(s) => write!(
                f,
                "Observer(enabled, {} sinks, {} metrics)",
                s.sink_count.load(Ordering::Relaxed),
                s.registry.len()
            ),
        }
    }
}

impl Observer {
    /// The disabled observer: every operation is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled observer with a fresh registry and no sinks.
    #[must_use]
    pub fn new() -> Self {
        Self::with_registry(MetricsRegistry::new())
    }

    /// An enabled observer recording metrics into `registry`.
    #[must_use]
    pub fn with_registry(registry: MetricsRegistry) -> Self {
        let spans = SpanName::ALL.map(|s| registry.histogram(s.metric_name(), &[]));
        Self {
            shared: Some(Arc::new(Shared {
                clock_bits: AtomicU64::new(0.0_f64.to_bits()),
                sink_count: AtomicUsize::new(0),
                sinks: Mutex::new(Vec::new()),
                registry,
                spans,
            })),
        }
    }

    /// Whether this observer records anything at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Whether at least one event sink is attached. Code constructing
    /// expensive events (per-step samples with per-battery vectors) should
    /// gate on this; cheap events can just call [`Observer::emit`].
    #[must_use]
    pub fn wants_events(&self) -> bool {
        self.shared
            .as_ref()
            .is_some_and(|s| s.sink_count.load(Ordering::Relaxed) > 0)
    }

    /// Attaches an event sink. No-op on a disabled observer.
    ///
    /// # Panics
    ///
    /// Panics if the sink lock is poisoned.
    pub fn add_sink(&self, sink: Box<dyn EventSink>) {
        if let Some(s) = &self.shared {
            s.sinks.lock().expect("observer sinks poisoned").push(sink);
            s.sink_count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Updates the simulation clock used to stamp emitted events. The
    /// emulation step sets this once per step; all layers' events inherit
    /// it.
    pub fn set_clock(&self, t_s: f64) {
        if let Some(s) = &self.shared {
            s.clock_bits.store(t_s.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current simulation clock (0.0 when disabled or never set).
    #[must_use]
    pub fn clock_s(&self) -> f64 {
        self.shared.as_ref().map_or(0.0, |s| {
            f64::from_bits(s.clock_bits.load(Ordering::Relaxed))
        })
    }

    /// Emits an event stamped with the current simulation clock.
    pub fn emit(&self, event: ObsEvent) {
        let t_s = self.clock_s();
        self.emit_at(t_s, event);
    }

    /// Emits an event stamped with an explicit time.
    ///
    /// # Panics
    ///
    /// Panics if the sink lock is poisoned.
    pub fn emit_at(&self, t_s: f64, event: ObsEvent) {
        if let Some(s) = &self.shared {
            if s.sink_count.load(Ordering::Relaxed) == 0 {
                return;
            }
            let mut sinks = s.sinks.lock().expect("observer sinks poisoned");
            for sink in sinks.iter_mut() {
                sink.record(t_s, &event);
            }
        }
    }

    /// Emits a batch of pre-stamped events under a single sink lock,
    /// draining `events` (the vector is cleared but keeps its capacity, so
    /// a caller-owned staging buffer never reallocates at steady state).
    ///
    /// Equivalent to calling [`Observer::emit_at`] once per entry in
    /// order, but the hot loop pays for one lock acquisition per step
    /// instead of one per staged event.
    ///
    /// # Panics
    ///
    /// Panics if the sink lock is poisoned.
    pub fn emit_staged(&self, events: &mut Vec<(f64, ObsEvent)>) {
        if let Some(s) = &self.shared {
            if s.sink_count.load(Ordering::Relaxed) > 0 {
                let mut sinks = s.sinks.lock().expect("observer sinks poisoned");
                for (t_s, event) in events.iter() {
                    for sink in sinks.iter_mut() {
                        sink.record(*t_s, event);
                    }
                }
            }
        }
        events.clear();
    }

    /// The metrics registry, when enabled.
    #[must_use]
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.shared.as_ref().map(|s| &s.registry)
    }

    /// Starts a latency span for a well-known hot path; the guard records
    /// on drop. Returns `None` (no timing, no clock read) when disabled.
    #[must_use]
    pub fn span(&self, name: SpanName) -> Option<SpanGuard> {
        self.shared
            .as_ref()
            .map(|s| SpanGuard::new(s.spans[name.index()].clone()))
    }
}

static GLOBAL: OnceLock<Observer> = OnceLock::new();

/// Installs the process-global observer. Objects created afterwards
/// (microcontrollers, runtimes) default to it, so a binary can turn on
/// observability for everything it constructs with one call. Returns
/// `false` if a global observer was already installed (the original
/// stays).
pub fn install_global(observer: Observer) -> bool {
    GLOBAL.set(observer).is_ok()
}

/// The process-global observer: the installed one, or the disabled
/// default. Cloning is cheap (an `Option<Arc>` clone).
#[must_use]
pub fn global() -> Observer {
    GLOBAL.get().cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Observer::disabled();
        assert!(!obs.enabled());
        assert!(!obs.wants_events());
        assert!(obs.registry().is_none());
        assert!(obs.span(SpanName::MicroStep).is_none());
        obs.set_clock(10.0);
        assert_eq!(obs.clock_s(), 0.0);
        // Emitting into the void must not panic.
        obs.emit(ObsEvent::FaultInjection {
            description: "x".into(),
        });
    }

    #[test]
    fn events_fan_out_to_all_sinks() {
        let obs = Observer::new();
        assert!(obs.enabled());
        assert!(!obs.wants_events());
        let a = FlightRecorder::shared(8);
        let b = FlightRecorder::shared(8);
        obs.add_sink(Box::new(a.clone()));
        obs.add_sink(Box::new(b.clone()));
        assert!(obs.wants_events());
        obs.set_clock(5.0);
        obs.emit(ObsEvent::BatteryPresence {
            battery: 0,
            present: true,
        });
        assert_eq!(a.lock().unwrap().len(), 1);
        assert_eq!(b.lock().unwrap().len(), 1);
        assert_eq!(a.lock().unwrap().dump()[0].t_s, 5.0);
    }

    #[test]
    fn spans_record_into_named_histograms() {
        let obs = Observer::new();
        drop(obs.span(SpanName::PolicyEval));
        let text = obs.registry().unwrap().to_prometheus_text();
        assert!(text.contains("sdb_policy_eval_ns_count 1"));
        assert!(text.contains("sdb_micro_step_ns_count 0"));
    }

    #[test]
    fn clones_share_state() {
        let obs = Observer::new();
        let clone = obs.clone();
        let rec = FlightRecorder::shared(8);
        clone.add_sink(Box::new(rec.clone()));
        obs.set_clock(2.0);
        obs.emit(ObsEvent::BatteryPresence {
            battery: 1,
            present: false,
        });
        assert_eq!(rec.lock().unwrap().len(), 1);
        assert_eq!(clone.clock_s(), 2.0);
    }

    #[test]
    fn emit_at_overrides_clock() {
        let obs = Observer::new();
        let rec = FlightRecorder::shared(8);
        obs.add_sink(Box::new(rec.clone()));
        obs.set_clock(100.0);
        obs.emit_at(
            7.5,
            ObsEvent::BatteryPresence {
                battery: 0,
                present: true,
            },
        );
        assert_eq!(rec.lock().unwrap().dump()[0].t_s, 7.5);
    }

    #[test]
    fn emit_staged_preserves_order_and_timestamps() {
        let obs = Observer::new();
        let rec = FlightRecorder::shared(8);
        obs.add_sink(Box::new(rec.clone()));
        let mut staged = vec![
            (
                1.0,
                ObsEvent::BatteryPresence {
                    battery: 0,
                    present: true,
                },
            ),
            (
                1.0,
                ObsEvent::BatteryPresence {
                    battery: 1,
                    present: false,
                },
            ),
        ];
        let cap = staged.capacity();
        obs.emit_staged(&mut staged);
        assert!(staged.is_empty());
        assert_eq!(staged.capacity(), cap);
        let dump = rec.lock().unwrap().dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].t_s, 1.0);
        assert!(matches!(
            dump[0].event,
            ObsEvent::BatteryPresence { battery: 0, .. }
        ));
        assert!(matches!(
            dump[1].event,
            ObsEvent::BatteryPresence { battery: 1, .. }
        ));
        // A disabled observer still drains the staging buffer.
        let mut staged = vec![(
            2.0,
            ObsEvent::BatteryPresence {
                battery: 0,
                present: true,
            },
        )];
        Observer::disabled().emit_staged(&mut staged);
        assert!(staged.is_empty());
    }

    #[test]
    fn global_defaults_to_disabled() {
        // Note: other tests in this process must not install a global,
        // so this asserts only the unset behavior contractually.
        let g = global();
        let _ = g.enabled();
    }
}
