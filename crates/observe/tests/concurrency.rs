//! Concurrency contracts of the metrics layer and the quantile sketch:
//! recording from many threads loses nothing, shard-registry merges are
//! exact, and sketch merging is order-invariant — the properties the
//! fleet engine's determinism guarantees rest on.

use sdb_observe::metrics::{Histogram, MetricsRegistry};
use sdb_observe::{EventSink, FlightRecorder, Flow, ObsEvent, QuantileSketch};

const THREADS: u64 = 8;
const PER_THREAD: u64 = 5_000;

#[test]
fn shared_histogram_survives_concurrent_recording() {
    let hist = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let hist = hist.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Values spread across many buckets, deterministic sum.
                    hist.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let n = THREADS * PER_THREAD;
    assert_eq!(hist.count(), n);
    // Sum of 0..n recorded exactly once each.
    assert_eq!(hist.sum(), n * (n - 1) / 2);
    assert_eq!(hist.bucket_counts().iter().sum::<u64>(), n);
}

#[test]
fn merged_shard_registries_account_for_every_observation() {
    // The fleet pattern: one private registry per worker, merged after
    // join. Totals must be exact, as if a single thread had recorded
    // everything.
    let shards: Vec<MetricsRegistry> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    let reg = MetricsRegistry::new();
                    let done = reg.counter("devices_total", &[]);
                    let lat = reg.histogram("step_ns", &[("shard", "x")]);
                    for i in 0..PER_THREAD {
                        done.inc();
                        lat.record(1000 + (t * PER_THREAD + i) % 4096);
                    }
                    reg
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let merged = MetricsRegistry::new();
    for shard in &shards {
        merged.merge_from(shard);
    }
    let totals = merged.counter_totals();
    let devices = totals.iter().find(|(n, _)| n == "devices_total").unwrap();
    assert_eq!(devices.1, THREADS * PER_THREAD);
    let lat = merged.histogram("step_ns", &[("shard", "x")]);
    assert_eq!(lat.count(), THREADS * PER_THREAD);
    let expected_sum: u64 = (0..THREADS * PER_THREAD).map(|k| 1000 + k % 4096).sum();
    assert_eq!(lat.sum(), expected_sum);

    // Merging in the reverse shard order produces the same totals.
    let reversed = MetricsRegistry::new();
    for shard in shards.iter().rev() {
        reversed.merge_from(shard);
    }
    assert_eq!(reversed.counter_totals(), merged.counter_totals());
    assert_eq!(
        reversed
            .histogram("step_ns", &[("shard", "x")])
            .bucket_counts(),
        lat.bucket_counts()
    );
    assert_eq!(reversed.to_prometheus_text(), merged.to_prometheus_text());
}

#[test]
fn flight_recorder_overflow_accounting_is_exact_under_concurrent_writers() {
    // Many writers hammering one shared ring: `sdb_dropped_events_total`
    // must equal exactly total events minus capacity — every overwrite
    // counted once, none double-counted, none lost — and must agree with
    // the recorder's own `overwritten()` bookkeeping.
    let capacity = 64;
    let registry = MetricsRegistry::new();
    let shared = FlightRecorder::shared_with_registry(capacity, &registry);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let shared = std::sync::Arc::clone(&shared);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let event = ObsEvent::RatioPush {
                        flow: Flow::Discharge,
                        ratios: vec![t as f64, i as f64],
                    };
                    shared.lock().unwrap().record(i as f64, &event);
                }
            });
        }
    });
    let total = THREADS * PER_THREAD;
    let recorder = shared.lock().unwrap();
    assert_eq!(recorder.total_recorded(), total);
    assert_eq!(recorder.len(), capacity);
    assert_eq!(recorder.overwritten(), total - capacity as u64);
    let dropped = registry
        .counter_totals()
        .into_iter()
        .find(|(name, _)| name == "sdb_dropped_events_total")
        .expect("drop counter registered")
        .1;
    assert_eq!(
        dropped,
        total - capacity as u64,
        "dropped-events counter must equal the exact overflow count"
    );
}

#[test]
fn sketch_merge_is_invariant_across_shard_orderings() {
    // Build per-shard sketches over disjoint slices of one population,
    // then merge in several different orders: every quantile must come
    // out bit-identical, and identical to a single-stream sketch.
    let population: Vec<f64> = (0..4_000)
        .map(|i| 0.5 + (i as f64 * 0.37).sin().abs() * 1000.0 + i as f64 * 0.01)
        .collect();

    let mut single = QuantileSketch::new();
    for &v in &population {
        single.insert(v);
    }

    let shards: Vec<QuantileSketch> = population
        .chunks(500)
        .map(|chunk| {
            let mut s = QuantileSketch::new();
            for &v in chunk {
                s.insert(v);
            }
            s
        })
        .collect();

    let orders: Vec<Vec<usize>> = vec![
        (0..shards.len()).collect(),
        (0..shards.len()).rev().collect(),
        // Interleaved: evens then odds.
        (0..shards.len())
            .step_by(2)
            .chain((1..shards.len()).step_by(2))
            .collect(),
    ];
    let merged: Vec<QuantileSketch> = orders
        .iter()
        .map(|order| {
            let mut m = QuantileSketch::new();
            for &i in order {
                m.merge_from(&shards[i]);
            }
            m
        })
        .collect();

    for q in [0.0, 0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
        let reference = merged[0].quantile(q);
        for m in &merged[1..] {
            assert_eq!(
                m.quantile(q).to_bits(),
                reference.to_bits(),
                "merge order changed q{q}"
            );
        }
        assert_eq!(
            single.quantile(q).to_bits(),
            reference.to_bits(),
            "merged differs from single-stream at q{q}"
        );
    }
    assert_eq!(merged[0].count(), population.len() as u64);
}
