//! Integration tests of the learning components (predictor, autopilot)
//! against *varied* Markov-simulated user behavior — not just the fixed
//! figure traces.

use sdb::core::autopilot::{Autopilot, AutopilotConfig};
use sdb::core::policy::PolicyInput;
use sdb::core::predict::UsagePredictor;
use sdb::core::runtime::SdbRuntime;
use sdb::core::scenarios::watch::{build_pack, high_power_threshold_w, BENDABLE, LI_ION};
use sdb::workloads::behavior::{hourly_profile, simulate_days, UserArchetype};

#[test]
fn predictor_finds_the_habit_under_jitter() {
    let days = simulate_days(&UserArchetype::runner(), 14, 3);
    let mut predictor = UsagePredictor::new();
    for day in &days {
        predictor.observe_day(&hourly_profile(day));
    }
    // The learned profile peaks in the habit window (hour 16 ± jitter).
    let peak_hour = (0..24)
        .max_by(|&a, &b| {
            predictor
                .predicted_w(a)
                .partial_cmp(&predictor.predicted_w(b))
                .expect("finite")
        })
        .expect("nonempty");
    assert!((15..=17).contains(&peak_hour), "peak at hour {peak_hour}");
    // And the directive logic preserves shortly before it. (The EWMA
    // smears the jittered habit across hours, so detect against the
    // learned peak rather than the raw activity threshold.)
    let threshold = predictor.peak_w() * 0.6;
    assert!(predictor.discharge_directive(13, threshold) < 0.3);
    assert!(predictor.discharge_directive(19, threshold) > 0.7);
}

#[test]
fn autopilot_survives_varied_days_better_than_day_one() {
    // Seed chosen so day 1 actually contains the run: the property under
    // test is "learning helps", which is unobservable on a day where the
    // blind policy got lucky and no high-power habit occurred.
    let days = simulate_days(&UserArchetype::runner(), 8, 10);
    let mut autopilot = Autopilot::new(AutopilotConfig {
        efficient: LI_ION,
        inefficient: BENDABLE,
        high_power_threshold_w: high_power_threshold_w(),
        lookahead_h: 8,
    });
    let mut lives = Vec::new();
    for day in &days {
        let mut micro = build_pack();
        let mut runtime = SdbRuntime::new(2);
        runtime.set_update_period(60.0);
        // Invariant-check the hand-rolled step loop too (sdb-chaos).
        let mut checker = sdb::chaos::InvariantChecker::for_micro(&micro);
        let mut elapsed = 0.0;
        let mut brownout = None;
        for p in day.resampled(60.0).points() {
            autopilot.observe(&mut runtime, p.load_w, p.dur_s);
            let input = PolicyInput::from_micro(&micro).with_load(p.load_w);
            runtime.tick(&mut micro, &input, p.dur_s).expect("accepted");
            let r = micro.step(p.load_w, 0.0, p.dur_s);
            elapsed += p.dur_s;
            checker.check_step(elapsed, &r);
            if r.unmet_w > 1e-9 && brownout.is_none() {
                brownout = Some(elapsed);
            }
        }
        checker.check_micro(elapsed, &micro);
        assert!(checker.is_clean(), "{:?}", checker.violations());
        lives.push(brownout.unwrap_or(elapsed));
    }
    // After learning, later days must not be worse on average than the
    // blind first day (jitter makes single days noisy; compare the mean of
    // the last three against day one).
    let late_mean: f64 = lives[lives.len() - 3..].iter().sum::<f64>() / 3.0;
    assert!(
        late_mean >= lives[0] - 1800.0,
        "day1 {:.1} h, late mean {:.1} h",
        lives[0] / 3600.0,
        late_mean / 3600.0
    );
    // And the learned autopilot must be preserving ahead of the habit.
    assert!(autopilot.predictor().days() >= 7);
}
