//! Chaos-engine integration tests: deterministic fault campaigns, the
//! runtime's graceful-degradation machinery end-to-end through the link
//! scheduler, and energy accounting under injected link faults.

use sdb::battery_model::{BatterySpec, Chemistry};
use sdb::chaos::{run_campaign, CampaignSpec, InvariantChecker};
use sdb::core::policy::DischargeDirective;
use sdb::core::runtime::{ResilienceConfig, SdbRuntime};
use sdb::core::scheduler::LinkedSimOptions;
use sdb::core::scheduler::{run_trace_linked, SimOptions};
use sdb::emulator::link::{Command, Link};
use sdb::emulator::{Microcontroller, PackBuilder, ProfileKind};
use sdb::observe::{FlightRecorder, Flow, ObsEvent, Observer};
use sdb::workloads::Trace;

fn hybrid_pack() -> Microcontroller {
    PackBuilder::new()
        .battery(BatterySpec::from_chemistry(
            "energy",
            Chemistry::Type2CoStandard,
            3.0,
        ))
        .battery(BatterySpec::from_chemistry(
            "power",
            Chemistry::Type3CoPower,
            3.0,
        ))
        .build()
}

/// Acceptance: a chaos campaign's rendered reports are byte-identical no
/// matter how many worker threads shard the device fleet.
#[test]
fn campaign_reports_byte_identical_at_any_thread_count() {
    let spec = CampaignSpec {
        devices: 9,
        horizon_s: 1800.0,
        ..CampaignSpec::default()
    };
    let one = run_campaign(&spec, 1).expect("valid spec");
    let four = run_campaign(&spec, 4).expect("valid spec");
    let many = run_campaign(&spec, 32).expect("valid spec");
    assert_eq!(one.render_text(), four.render_text());
    assert_eq!(one.to_json(), four.to_json());
    assert_eq!(one.render_text(), many.render_text());
    assert_eq!(one.outcomes, four.outcomes);
    // And the campaign actually exercised the fault injectors.
    assert!(one.total_faults > 0, "campaign injected nothing");
}

/// Re-running the same spec is bit-for-bit replayable; changing the seed
/// changes the outcome.
#[test]
fn campaign_is_replayable_and_seed_sensitive() {
    let spec = CampaignSpec {
        devices: 4,
        horizon_s: 1200.0,
        ..CampaignSpec::default()
    };
    let a = run_campaign(&spec, 2).expect("valid spec");
    let b = run_campaign(&spec, 2).expect("valid spec");
    assert_eq!(a.to_json(), b.to_json());
    let reseeded = CampaignSpec {
        master_seed: spec.master_seed ^ 0xDEAD_BEEF,
        ..spec
    };
    let c = run_campaign(&reseeded, 2).expect("valid spec");
    assert_ne!(a.to_json(), c.to_json(), "seed had no effect");
}

/// Acceptance: driven through the linked scheduler, a link that goes
/// completely dark trips the watchdog; after the link is restored the
/// runtime pushes the safe uniform fallback, sees the ack, recovers, and
/// resumes policy control.
#[test]
fn watchdog_falls_back_to_uniform_and_recovers_through_scheduler() {
    let obs = Observer::new();
    let recorder = FlightRecorder::shared(65536);
    obs.add_sink(Box::new(recorder.clone()));

    let mut micro = hybrid_pack();
    micro.set_observer(obs.clone());
    let mut link = Link::ideal(micro);
    let mut runtime = SdbRuntime::new(2);
    runtime.set_observer(obs.clone());
    runtime.set_update_period(60.0);
    runtime.set_discharge_directive(DischargeDirective::new(1.0));
    runtime.enable_resilience(ResilienceConfig {
        ack_timeout_s: 30.0,
        watchdog_timeout_s: 180.0,
        ..ResilienceConfig::default()
    });
    let opts = LinkedSimOptions {
        sim: SimOptions::default(),
        status_period_s: 30.0,
    };

    // Phase A: healthy link — the RBL policy lands non-uniform ratios.
    let _ = run_trace_linked(&mut link, &mut runtime, &Trace::constant(8.0, 900.0), &opts);
    assert!(!runtime.watchdog_engaged());
    let healthy = link.micro().discharge_ratios().to_vec();
    assert!(
        (healthy[0] - 0.5).abs() > 0.01,
        "RBL split should be non-uniform on a heterogeneous pack: {healthy:?}"
    );

    // Phase B: the link goes dark (every command dropped, both ways).
    link.set_fault_drop_per_mille(1000);
    let _ = run_trace_linked(
        &mut link,
        &mut runtime,
        &Trace::constant(8.0, 1200.0),
        &opts,
    );
    assert!(runtime.watchdog_engaged(), "silent link must trip watchdog");

    // Phase C: restore the link. The engaged watchdog's uniform fallback
    // is the first command to land; its ack recovers the runtime, which
    // then re-pushes the policy ratios.
    link.set_fault_drop_per_mille(0);
    let _ = run_trace_linked(&mut link, &mut runtime, &Trace::constant(8.0, 900.0), &opts);
    assert!(!runtime.watchdog_engaged(), "restored link must recover");
    let recovered = link.micro().discharge_ratios().to_vec();
    assert!(
        (recovered[0] - 0.5).abs() > 0.01,
        "policy control resumed after recovery: {recovered:?}"
    );

    // The event stream tells the whole story: engage, uniform fallback
    // landing on the firmware, recovery.
    let rec = recorder.lock().unwrap();
    let dump = rec.dump();
    let engaged_at = dump
        .iter()
        .position(|e| matches!(e.event, ObsEvent::WatchdogTransition { engaged: true, .. }))
        .expect("watchdog engagement event");
    let recovered_at = dump
        .iter()
        .position(|e| matches!(e.event, ObsEvent::WatchdogTransition { engaged: false, .. }))
        .expect("watchdog recovery event");
    assert!(engaged_at < recovered_at);
    let uniform_landed = dump[engaged_at..recovered_at + 1].iter().any(|e| {
        matches!(
            &e.event,
            ObsEvent::RatioPush { flow: Flow::Discharge, ratios }
                if ratios.iter().all(|r| (r - 0.5).abs() < 1e-9)
        )
    });
    assert!(
        uniform_landed,
        "uniform fallback never reached the firmware"
    );
}

/// Satellite: `ChargeOneFromAnother(X, Y, W, T)` keeps the energy books
/// balanced over a clean link and over a chaotic one (latency +
/// duplication). The destination's gain never exceeds what the source
/// paid or the commanded power budget.
#[test]
fn charge_one_from_another_accounts_energy_under_clean_and_chaos_links() {
    let transfer_w = 4.0;
    let transfer_s = 900.0;
    let run = |chaos: bool| {
        let mut micro = PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "src",
                Chemistry::Type2CoStandard,
                2.0,
            ))
            .battery_at(
                BatterySpec::from_chemistry("dst", Chemistry::Type2CoStandard, 2.0),
                0.3,
                ProfileKind::Standard,
            )
            .build();
        micro.set_discharge_ratios(&[1.0, 0.0]).unwrap();
        let mut link = Link::ideal(micro);
        if chaos {
            link.seed_faults(0x51DE_FA17);
            link.set_fault_latency(Some(3));
            link.set_fault_dup_per_mille(600);
        }
        let mut checker = InvariantChecker::for_micro(link.micro());
        let src_before: f64 = link.cells()[0].energy_out_j();
        let dst_before: f64 = link.cells()[1].energy_in_j();
        link.send(Command::ChargeOneFromAnother {
            from: 0,
            to: 1,
            power_w: transfer_w,
            duration_s: transfer_s,
        });
        for i in 0..40 {
            let report = link.step(0.0, 0.0, 60.0);
            let t = f64::from(i + 1) * 60.0;
            checker.check_step(t, &report);
            checker.check_micro(t, link.micro());
        }
        assert!(checker.is_clean(), "{:?}", checker.violations());
        let moved = link.cells()[1].energy_in_j() - dst_before;
        let paid = link.cells()[0].energy_out_j() - src_before;
        (moved, paid)
    };

    for (label, chaos) in [("clean", false), ("chaos", true)] {
        let (moved, paid) = run(chaos);
        assert!(moved > 0.0, "{label}: destination never gained charge");
        assert!(
            moved <= paid,
            "{label}: transfer created energy (moved {moved:.1} J > paid {paid:.1} J)"
        );
        // Duplicated commands can restart the transfer window, but never
        // more than double the commanded budget.
        assert!(
            moved <= transfer_w * transfer_s * 2.0,
            "{label}: moved {moved:.1} J blew the commanded budget"
        );
    }
}

/// Regression: link fault statistics are counted at the injection site,
/// so they stay accurate with no observer attached.
#[test]
fn link_stats_count_faults_without_an_observer() {
    let mut link = Link::ideal(hybrid_pack());
    link.seed_faults(7);
    link.set_fault_drop_per_mille(500);
    link.set_fault_dup_per_mille(500);
    for _ in 0..40 {
        link.send(Command::Discharge(vec![0.5, 0.5]));
        link.step(1.0, 0.0, 10.0);
    }
    let stats = link.stats();
    assert_eq!(stats.sent, 40);
    assert!(stats.dropped > 0, "nothing dropped at 500 per mille");
    assert!(stats.duplicated > 0, "nothing duplicated at 500 per mille");
    assert_eq!(
        stats.delivered,
        stats.sent - stats.dropped + stats.duplicated,
        "delivery ledger must balance: {stats:?}"
    );

    // Stale-status serving is also counted with nobody watching.
    link.set_fault_stale_status(true);
    link.send(Command::QueryBatteryStatus);
    link.step(1.0, 0.0, 10.0);
    let after = link.stats();
    assert!(
        after.stale_served >= 1 || after.dropped > stats.dropped,
        "stale query neither served from snapshot nor dropped: {after:?}"
    );
}
