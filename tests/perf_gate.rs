//! CLI tests of `sdb perf`, the longitudinal perf-regression gate: the
//! acceptance criterion is that an injected 10 %+ cost regression makes
//! the command exit non-zero against the recorded history.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const MICRO: &str = r#"{"bench":"micro_step","steps_per_call":100,"packs":[{"batteries":2,"ns_per_step":240.0,"steps_per_sec":4166666.0,"allocs_per_step":0.0},{"batteries":8,"ns_per_step":600.0,"steps_per_sec":1666666.0,"allocs_per_step":0.0}],"allocs_per_step_max":0.0,"host_cpus":4}"#;

const FLEET: &str = r#"{"bench":"fleet_scaling","devices":512,"trace_hours":2.0,"master_seed":1,"bit_identical_reports":true,"threads":[{"threads":1,"wall_s":0.07,"devices_per_sec":7300.0},{"threads":4,"wall_s":0.02,"devices_per_sec":25000.0}],"speedup_max_threads_vs_1":3.4,"host_cpus":4}"#;

/// A scratch directory unique to this test binary run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdb-perf-gate-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn sdb(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sdb"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("run sdb")
}

fn write_benches(dir: &Path) {
    std::fs::write(dir.join("BENCH_micro.json"), MICRO).expect("write micro");
    std::fs::write(dir.join("BENCH_fleet.json"), FLEET).expect("write fleet");
}

#[test]
fn perf_gate_records_then_passes_then_trips_on_injected_regression() {
    let dir = scratch("roundtrip");
    write_benches(&dir);

    // No history yet: nothing to compare against, the gate passes and
    // --record seeds the history file.
    let out = sdb(&dir, &["perf", "--record", "--label", "seed"]);
    assert!(
        out.status.success(),
        "first record failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let history = std::fs::read_to_string(dir.join("PERF_HISTORY.jsonl")).expect("history");
    assert_eq!(history.lines().count(), 1);
    assert!(history.contains(r#""label":"seed""#), "history: {history}");
    assert!(history.contains("micro_step.b2.ns_per_step"));
    assert!(history.contains("fleet.t4.devices_per_sec"));

    // Same results vs the recorded baseline: clean pass.
    let out = sdb(&dir, &["perf"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("ok: no metric regressed"),
        "stdout: {stdout}"
    );

    // The acceptance criterion: a synthetic 1.2x cost multiplier (a 20 %
    // regression, past the 10 % threshold) must trip the gate.
    let out = sdb(&dir, &["perf", "--inject", "1.2"]);
    assert!(
        !out.status.success(),
        "gate passed an injected 20% regression"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "stdout: {stdout}");
    // Both lower-is-better and higher-is-better metrics regressed.
    assert!(stdout.contains("micro_step.b2.ns_per_step"), "{stdout}");
    assert!(stdout.contains("fleet.t1.devices_per_sec"), "{stdout}");

    // A multiplier inside the threshold stays green.
    let out = sdb(&dir, &["perf", "--inject", "1.05"]);
    assert!(out.status.success(), "5% noise must not trip a 10% gate");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perf_gate_best_baseline_catches_slow_drift() {
    let dir = scratch("drift");
    write_benches(&dir);
    // Record a fast entry, then an 8% slower one (within threshold of
    // the first). Against Baseline::Last another 8% would pass; against
    // Baseline::Best the compounded drift trips.
    assert!(sdb(&dir, &["perf", "--record"]).status.success());
    let out = sdb(&dir, &["perf", "--inject", "1.08", "--record"]);
    assert!(out.status.success(), "8% vs last entry passes");
    let out = sdb(&dir, &["perf", "--inject", "1.16", "--baseline", "best"]);
    assert!(
        !out.status.success(),
        "compounded 16% drift must trip the best-baseline gate"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perf_gate_fails_cleanly_without_bench_results() {
    let dir = scratch("empty");
    let out = sdb(&dir, &["perf"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no bench results"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // An explicitly named but missing bench file is an error, not a skip.
    let out = sdb(&dir, &["perf", "--micro", "nope.json"]);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perf_gate_reads_the_committed_repo_history_format() {
    // The committed PERF_HISTORY.jsonl (repo root) must stay parseable:
    // run the gate against it with the committed bench artifacts.
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let history = std::fs::read_to_string(repo_root.join("PERF_HISTORY.jsonl"))
        .expect("committed PERF_HISTORY.jsonl");
    assert!(
        history
            .lines()
            .any(|l| !l.is_empty() && !l.starts_with('#')),
        "committed history has no entries"
    );
    let out = sdb(&repo_root, &["perf"]);
    // Green or red depends on the host's bench numbers relative to the
    // committed history; what this asserts is that parsing never fails.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("cannot parse"),
        "committed artifacts failed to parse: {stderr}"
    );
}
