//! Fault-injection integration tests: degraded gauges, detach storms,
//! thermal stress, and topology ablations — the system must stay safe and
//! the accounting must stay honest under all of them.

use sdb::battery_model::{BatterySpec, Chemistry};
use sdb::core::policy::{DischargeDirective, PolicyInput};
use sdb::core::runtime::SdbRuntime;
// Invariant-checked drop-in for run_trace (sdb-chaos harness).
use sdb::chaos::checked_run_trace as run_trace;
use sdb::core::scheduler::SimOptions;
use sdb::emulator::micro::ThermalThrottle;
use sdb::emulator::{Microcontroller, PackBuilder, ProfileKind};
use sdb::fuel_gauge::gauge::GaugeConfig;
use sdb::workloads::Trace;

fn pack_with_gauge(gauge: GaugeConfig) -> Microcontroller {
    PackBuilder::new()
        .battery(BatterySpec::from_chemistry(
            "a",
            Chemistry::Type2CoStandard,
            3.0,
        ))
        .battery(BatterySpec::from_chemistry(
            "b",
            Chemistry::Type3CoPower,
            3.0,
        ))
        .gauge(gauge)
        .build()
}

#[test]
fn badly_drifting_gauge_recovers_at_rest() {
    // A gauge with a large current offset drifts during load, then a rest
    // period lets OCV recalibration pull it back. (The offset must stay
    // below the rest-detection threshold — an offset that large would
    // defeat rest detection entirely, which is a real failure gauges
    // cannot self-heal from.)
    let bad_gauge = GaugeConfig {
        current_lsb_a: 0.002,
        current_offset_a: 0.004, // 80x the prototype's offset
        voltage_lsb_v: 0.002,
        rest_recal_s: 1200.0,
    };
    let mut micro = pack_with_gauge(bad_gauge);
    let mut runtime = SdbRuntime::new(2);
    // Eight hours of light load lets the offset integrate into real error.
    let _ = run_trace(
        &mut micro,
        &mut runtime,
        &Trace::constant(1.0, 8.0 * 3600.0),
        &SimOptions::default(),
    );
    let worst_before: f64 = micro
        .query_battery_status()
        .iter()
        .zip(micro.cells())
        .map(|(s, c)| (s.soc - c.soc()).abs())
        .fold(0.0, f64::max);
    // Rest for an hour (zero load): recalibration kicks in.
    let _ = run_trace(
        &mut micro,
        &mut runtime,
        &Trace::constant(0.0, 3600.0),
        &SimOptions::default(),
    );
    let worst_after: f64 = micro
        .query_battery_status()
        .iter()
        .zip(micro.cells())
        .map(|(s, c)| (s.soc - c.soc()).abs())
        .fold(0.0, f64::max);
    assert!(
        worst_after < worst_before,
        "recal failed: before {worst_before}, after {worst_after}"
    );
    assert!(worst_after < 0.012, "after = {worst_after}");
}

#[test]
fn detach_storm_never_browns_out_while_one_battery_lives() {
    let mut micro = pack_with_gauge(GaugeConfig::default());
    let mut runtime = SdbRuntime::new(2);
    runtime.set_update_period(30.0);
    let mut unmet = 0.0;
    // Toggle battery 1's presence every minute for two hours under load.
    for minute in 0..120 {
        micro.set_battery_present(1, minute % 2 == 0).unwrap();
        let input = PolicyInput::from_micro(&micro).with_load(5.0);
        runtime.tick(&mut micro, &input, 60.0).unwrap();
        let r = micro.step(5.0, 0.0, 60.0);
        unmet += r.unmet_w * 60.0;
    }
    assert!(unmet < 1.0, "unmet = {unmet} J across the storm");
    // Battery 0 carried more than its half.
    let used0 = 1.0 - micro.cells()[0].soc();
    let used1 = 1.0 - micro.cells()[1].soc();
    assert!(used0 > used1, "used0 {used0} vs used1 {used1}");
}

#[test]
fn thermal_throttle_protects_under_sustained_fast_charge() {
    let mut micro = PackBuilder::new()
        .battery_at(
            BatterySpec::from_chemistry("fast", Chemistry::Type3CoPower, 3.0),
            0.0,
            ProfileKind::Fast,
        )
        .ambient_c(35.0)
        .build();
    micro.set_thermal_throttle(Some(ThermalThrottle {
        limit_c: 37.5,
        resume_c: 36.0,
    }));
    micro.set_charge_ratios(&[1.0]).unwrap();
    let mut peak_temp: f64 = 0.0;
    for _ in 0..240 {
        micro.step(0.0, 30.0, 30.0);
        peak_temp = peak_temp.max(micro.cell_temperature_c(0).unwrap());
    }
    // The throttle bounds the overshoot (limit + one step's worth of rise).
    assert!(peak_temp < 38.5, "peak = {peak_temp}");
    // And the cell still charges to full eventually.
    assert!(
        micro.cells()[0].soc() > 0.95,
        "soc = {}",
        micro.cells()[0].soc()
    );
}

#[test]
fn naive_topologies_work_but_lose_more() {
    let build = |naive: bool| {
        let mut b = PackBuilder::new()
            .battery(BatterySpec::from_chemistry(
                "a",
                Chemistry::Type2CoStandard,
                3.0,
            ))
            .battery(BatterySpec::from_chemistry(
                "b",
                Chemistry::Type3CoPower,
                3.0,
            ));
        if naive {
            b = b.naive_topologies();
        }
        b.build()
    };
    let run = |mut micro: Microcontroller| {
        let mut runtime = SdbRuntime::new(2);
        runtime.set_discharge_directive(DischargeDirective::new(1.0));
        let sim = run_trace(
            &mut micro,
            &mut runtime,
            &Trace::constant(8.0, 2.0 * 3600.0),
            &SimOptions::default(),
        );
        assert!(sim.unmet_j < 1e-6);
        sim.circuit_loss_j
    };
    let naive_loss = run(build(true));
    let sdb_loss = run(build(false));
    assert!(
        naive_loss > 2.0 * sdb_loss,
        "naive {naive_loss} J vs SDB {sdb_loss} J"
    );
}

#[test]
fn simulation_is_deterministic() {
    // Two identical runs produce bit-identical results (no hidden global
    // state) — the property the paper's emulator was built for.
    let run = || {
        let mut micro = pack_with_gauge(GaugeConfig::default());
        let mut runtime = SdbRuntime::new(2);
        let sim = run_trace(
            &mut micro,
            &mut runtime,
            &Trace::constant(6.0, 3600.0),
            &SimOptions::default(),
        );
        (
            sim.supplied_j,
            sim.total_loss_j(),
            micro.cells().iter().map(|c| c.soc()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}
