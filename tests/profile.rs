//! Integration tests of the phase profiler's determinism quarantine:
//! call counts, tree shape, and per-cohort attribution must be
//! byte-identical at any thread count, and enabling the profiler must
//! not perturb the fleet engine's own bit-identical reports.
//!
//! The profiler aggregate is process-global, so every test here
//! serializes on one lock and resets the aggregate around its runs.

use sdb::fleet::{run_fleet, FleetReport, FleetSpec};
use std::sync::Mutex;

static PROF_LOCK: Mutex<()> = Mutex::new(());

/// Runs a profiled fleet and returns the deterministic renders plus the
/// fleet report (the profiler is disabled and reset again afterwards).
fn profiled_fleet_with(spec: &FleetSpec, threads: usize) -> (String, String, String, FleetReport) {
    sdb::prof::reset();
    sdb::prof::enable();
    let (report, _stats) = run_fleet(spec, threads).expect("fleet runs");
    sdb::prof::flush_thread();
    sdb::prof::disable();
    let snap = sdb::prof::snapshot();
    let out = (
        snap.render_counts(),
        snap.render_flame(),
        snap.to_json(),
        report,
    );
    sdb::prof::reset();
    out
}

fn profiled_fleet(devices: usize, threads: usize) -> (String, String, String, FleetReport) {
    let spec = FleetSpec::default_population(devices, 42).with_hours(2.0);
    profiled_fleet_with(&spec, threads)
}

#[test]
fn profile_counts_are_byte_identical_across_thread_counts() {
    let _guard = PROF_LOCK.lock().unwrap();
    let (counts1, flame1, json1, report1) = profiled_fleet(64, 1);
    let (counts4, flame4, json4, report4) = profiled_fleet(64, 4);

    assert_eq!(counts1, counts4, "deterministic count render diverged");
    assert_eq!(flame1, flame4, "collapsed-stack render diverged");
    // The JSON's `deterministic` section must match too; `wall` holds
    // quarantined timings and may differ. Compare the sections directly.
    let det = |json: &str| {
        let v = sdb::trace::json::parse(json).expect("profile json parses");
        format!(
            "{:?}",
            v.get("deterministic").expect("deterministic section")
        )
    };
    assert_eq!(det(&json1), det(&json4), "deterministic JSON diverged");
    // And the fleet's own determinism guarantee holds with the profiler
    // in the loop.
    assert_eq!(report1, report4, "profiling perturbed the fleet report");

    // Sanity on content: the tree carries the hot phases and per-cohort
    // sections the renderers promise.
    for phase in ["fleet_run", "device_run", "micro_step", "curve_eval"] {
        assert!(counts1.contains(phase), "missing phase {phase}:\n{counts1}");
    }
    assert!(counts1.contains("cohort "), "missing cohort attribution");
    assert!(
        flame1.contains("device_run;trace_step;micro_step"),
        "flame lost the stack hierarchy:\n{flame1}"
    );
}

#[test]
fn profiling_does_not_change_the_unprofiled_report() {
    let _guard = PROF_LOCK.lock().unwrap();
    sdb::prof::reset();
    sdb::prof::disable();
    let spec = FleetSpec::default_population(32, 7).with_hours(1.0);
    let (plain, _) = run_fleet(&spec, 2).expect("fleet runs");
    let (_, _, _, profiled) = profiled_fleet_with(&spec, 2);
    assert_eq!(plain, profiled);
}
