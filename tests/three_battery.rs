//! N = 3 heterogeneous pack: the paper's APIs are N-way; exercise the full
//! stack beyond the two-battery scenarios.

use sdb::battery_model::{BatterySpec, Chemistry};
use sdb::core::api::SdbApi;
use sdb::core::policy::{rbl_discharge, DischargeDirective, PolicyInput};
use sdb::core::runtime::SdbRuntime;
// Invariant-checked drop-ins (sdb-chaos harness).
use sdb::chaos::{
    checked_run_charge_session as run_charge_session, checked_run_trace as run_trace,
};
use sdb::core::scheduler::SimOptions;
use sdb::emulator::{Microcontroller, PackBuilder, ProfileKind};
use sdb::workloads::Trace;

/// Energy + fast-charge + power-buffer: a plausible future tablet.
fn tri_pack(soc: f64) -> Microcontroller {
    PackBuilder::new()
        .battery_at(
            BatterySpec::from_chemistry("energy (Type 2)", Chemistry::Type2CoStandard, 4.0),
            soc,
            ProfileKind::Standard,
        )
        .battery_at(
            BatterySpec::from_chemistry("fast (Type 3)", Chemistry::Type3CoPower, 2.0),
            soc,
            ProfileKind::Fast,
        )
        .battery_at(
            BatterySpec::from_chemistry("buffer (LFP)", Chemistry::Type1LfpPower, 1.0),
            soc,
            ProfileKind::Fast,
        )
        .build()
}

#[test]
fn three_way_discharge_serves_and_splits_sensibly() {
    let mut micro = tri_pack(1.0);
    let mut runtime = SdbRuntime::new(3);
    runtime.set_discharge_directive(DischargeDirective::new(1.0));
    let result = run_trace(
        &mut micro,
        &mut runtime,
        &Trace::constant(12.0, 2.0 * 3600.0),
        &SimOptions::default(),
    );
    assert!(result.unmet_j < 1e-6);
    // All three batteries contributed.
    for (i, cell) in micro.cells().iter().enumerate() {
        assert!(cell.soc() < 0.999, "battery {i} never used");
    }
}

#[test]
fn burst_rides_on_the_lfp_buffer() {
    let micro = tri_pack(0.9);
    let input = PolicyInput::from_micro(&micro).with_load(45.0);
    let ratios = rbl_discharge(&input).unwrap();
    // The 1 Ah LFP buffer (25 % of nominal voltage-capacity share, lowest
    // resistance per Ah) takes an outsized share of a heavy burst.
    let total_cap: f64 = micro.cells().iter().map(|c| c.spec().capacity_ah).sum();
    let cap_share = 1.0 / total_cap;
    assert!(
        ratios[2] > cap_share,
        "LFP share {} vs capacity share {cap_share}",
        ratios[2]
    );
    assert!((ratios.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn three_way_charge_fills_everything() {
    let mut micro = tri_pack(0.05);
    let mut runtime = SdbRuntime::new(3);
    runtime.set_update_period(30.0);
    let times = run_charge_session(&mut micro, &mut runtime, 45.0, &[0.9], 10.0 * 3600.0, 30.0);
    assert!(times[0].is_some(), "pack reaches 90 %");
    for cell in micro.cells() {
        assert!(cell.soc() > 0.5, "{} at {}", cell.spec().name, cell.soc());
    }
}

#[test]
fn query_status_reports_all_three() {
    let mut micro = tri_pack(0.7);
    let api: &mut dyn SdbApi = &mut micro;
    let rows = api.query_battery_status();
    assert_eq!(rows.len(), 3);
    for row in &rows {
        assert!((row.soc - 0.7).abs() < 1e-9);
        assert!(row.present);
    }
    // Three-way ratio tuples round-trip.
    api.discharge(&[0.2, 0.3, 0.5]).unwrap();
    api.charge(&[0.6, 0.3, 0.1]).unwrap();
    assert!(api.discharge(&[0.5, 0.5]).is_err(), "wrong arity rejected");
}

#[test]
fn middle_battery_detach_is_tolerated() {
    let mut micro = tri_pack(1.0);
    let mut runtime = SdbRuntime::new(3);
    micro.set_battery_present(1, false).unwrap();
    let result = run_trace(
        &mut micro,
        &mut runtime,
        &Trace::constant(10.0, 3600.0),
        &SimOptions::default(),
    );
    assert!(result.unmet_j < 1e-6);
    assert!(
        (micro.cells()[1].soc() - 1.0).abs() < 1e-4,
        "absent battery untouched"
    );
}
