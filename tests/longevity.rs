//! Long-horizon wear tests: do the CCB policies actually deliver the
//! paper's longevity claim ("a device's longevity is maximized by
//! balancing CCB")?

use sdb::battery_model::{BatterySpec, Chemistry};
use sdb::core::metrics::{ccb, wear_ratios};
use sdb::core::policy::{ChargeDirective, DischargeDirective};
use sdb::core::runtime::SdbRuntime;
// Invariant-checked drop-ins (sdb-chaos harness): wear runs must conserve
// energy and keep cycle counts monotone on every step.
use sdb::chaos::{
    checked_run_charge_session as run_charge_session, checked_run_trace as run_trace,
};
use sdb::core::scheduler::SimOptions;
use sdb::emulator::{Microcontroller, PackBuilder, ProfileKind};
use sdb::workloads::Trace;

/// Pack mixing a short-lived chemistry (Type 2, χ = 800) with a long-lived
/// one (Type 3, χ = 1800).
fn mixed_wear_pack() -> Microcontroller {
    PackBuilder::new()
        .battery_at(
            BatterySpec::from_chemistry("short-lived", Chemistry::Type2CoStandard, 3.0),
            1.0,
            ProfileKind::Standard,
        )
        .battery_at(
            BatterySpec::from_chemistry("long-lived", Chemistry::Type3CoPower, 3.0),
            1.0,
            ProfileKind::Fast,
        )
        .build()
}

/// Simulates `cycles` drain/recharge days under the given directives and
/// returns the pack's final CCB and wear ratios.
fn cycle_pack(charge_d: f64, discharge_d: f64, cycles: u32) -> (f64, Vec<f64>) {
    let mut micro = mixed_wear_pack();
    let mut runtime = SdbRuntime::new(2);
    runtime.set_charge_directive(ChargeDirective::new(charge_d));
    runtime.set_discharge_directive(DischargeDirective::new(discharge_d));
    for _ in 0..cycles {
        // Drain ~80 % of the pack at a moderate load.
        let _ = run_trace(
            &mut micro,
            &mut runtime,
            &Trace::constant(9.0, 2.0 * 3600.0),
            &SimOptions::default(),
        );
        // Recharge fully.
        let _ = run_charge_session(&mut micro, &mut runtime, 40.0, &[0.99], 8.0 * 3600.0, 120.0);
    }
    let cycles_per: Vec<u32> = micro.cells().iter().map(|c| c.cycle_count()).collect();
    let specs: Vec<&BatterySpec> = micro.cells().iter().map(|c| c.spec()).collect();
    let wear = wear_ratios(&cycles_per, &specs);
    (ccb(&wear), wear)
}

#[test]
fn ccb_directives_balance_wear_better_than_rbl() {
    let (ccb_balanced, wear_balanced) = cycle_pack(0.0, 0.0, 30);
    let (ccb_greedy, wear_greedy) = cycle_pack(1.0, 1.0, 30);
    // Both packs cycled meaningfully.
    assert!(wear_balanced.iter().any(|&w| w > 0.01), "{wear_balanced:?}");
    assert!(wear_greedy.iter().any(|&w| w > 0.01), "{wear_greedy:?}");
    // The CCB-weighted directives end with a better-balanced pack.
    assert!(
        ccb_balanced <= ccb_greedy,
        "CCB policy {ccb_balanced:.3} vs RBL policy {ccb_greedy:.3} (wear {wear_balanced:?} vs {wear_greedy:?})"
    );
}

#[test]
fn fade_shows_up_in_acpi_last_full_capacity() {
    // After heavy cycling, the legacy ACPI view's "last full charge
    // capacity" drops below the design capacity — the OS-visible symptom
    // of aging.
    let mut micro = mixed_wear_pack();
    let mut runtime = SdbRuntime::new(2);
    runtime.set_charge_directive(ChargeDirective::new(1.0));
    for _ in 0..25 {
        let _ = run_trace(
            &mut micro,
            &mut runtime,
            &Trace::constant(9.0, 2.0 * 3600.0),
            &SimOptions::default(),
        );
        let _ = run_charge_session(&mut micro, &mut runtime, 40.0, &[0.99], 8.0 * 3600.0, 120.0);
    }
    let info = sdb::emulator::acpi::report(&micro);
    assert!(
        info.last_full_capacity_mwh < info.design_capacity_mwh * 0.999,
        "full {} vs design {}",
        info.last_full_capacity_mwh,
        info.design_capacity_mwh
    );
    assert!(info.last_full_capacity_mwh > info.design_capacity_mwh * 0.9);
}
