//! Integration tests of the campaign orchestrator: the kill-and-resume
//! property at every checkpoint boundary, the cross-engine differential,
//! the culprit minimizer's convergence on an injected divergence, and the
//! `sdb campaign` CLI surface end to end (including executing the repro
//! command the minimizer prints).

use sdb::campaign::{
    compare, minimize, run_campaign, Baseline, CampaignOptions, CampaignReport, CampaignRun,
    CampaignSpec,
};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A scratch directory unique to this test binary run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdb-campaign-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn sdb(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sdb"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("run sdb")
}

/// The 4-unit matrix the resume property test interrupts at every
/// boundary: 2 cells (fault none/moderate) × 2 devices.
fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        scenarios: vec!["standby".to_owned()],
        chemistries: vec!["co".to_owned()],
        faults: vec!["none".to_owned(), "moderate".to_owned()],
        policies: vec!["greedy".to_owned()],
        engines: vec!["scalar".to_owned()],
        master_seed: 0xC0FFEE,
        hours: 0.5,
        devices_per_cell: 2,
    }
}

fn complete(run: CampaignRun) -> CampaignReport {
    match run {
        CampaignRun::Complete(r) => *r,
        CampaignRun::Interrupted { completed, total } => {
            panic!("unexpected interrupt at {completed}/{total}")
        }
    }
}

#[test]
fn killed_campaign_resumes_to_a_byte_identical_report_at_every_boundary() {
    let spec = tiny_spec();
    let reference = complete(run_campaign(&spec, &CampaignOptions::default()).unwrap());
    let total = 4;

    for k in 0..total {
        let dir = scratch(&format!("resume-{k}"));
        let ck = dir.join("checkpoint.log");
        let _ = std::fs::remove_file(&ck);

        // Phase 1: run until the budget kills it after k fresh units.
        let run = run_campaign(
            &spec,
            &CampaignOptions {
                checkpoint: Some(ck.clone()),
                stop_after: Some(k),
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        match run {
            CampaignRun::Interrupted {
                completed,
                total: t,
            } => {
                assert_eq!((completed, t), (k, total));
            }
            CampaignRun::Complete(_) => panic!("budget {k} must interrupt"),
        }

        // Phase 2: resume with no budget — and a different thread count,
        // so the resume path is also exercising thread invariance.
        let resumed = complete(
            run_campaign(
                &spec,
                &CampaignOptions {
                    checkpoint: Some(ck),
                    threads: 3,
                    ..CampaignOptions::default()
                },
            )
            .unwrap(),
        );
        assert_eq!(resumed, reference, "resume after {k} units diverged");
        assert_eq!(resumed.render_text(), reference.render_text());
        assert_eq!(resumed.to_json(), reference.to_json());
    }
}

#[test]
fn checkpoint_truncated_mid_append_still_resumes_identically() {
    let spec = tiny_spec();
    let reference = complete(run_campaign(&spec, &CampaignOptions::default()).unwrap());
    let dir = scratch("truncate");
    let ck = dir.join("checkpoint.log");
    let _ = std::fs::remove_file(&ck);

    // Complete 2 of 4 units, then chop bytes off the final line — the
    // on-disk state a SIGKILL mid-append leaves behind.
    match run_campaign(
        &spec,
        &CampaignOptions {
            checkpoint: Some(ck.clone()),
            stop_after: Some(2),
            ..CampaignOptions::default()
        },
    )
    .unwrap()
    {
        CampaignRun::Interrupted { completed, .. } => assert_eq!(completed, 2),
        CampaignRun::Complete(_) => panic!("expected interrupt"),
    }
    let bytes = std::fs::read(&ck).unwrap();
    std::fs::write(&ck, &bytes[..bytes.len() - 7]).unwrap();

    let resumed = complete(
        run_campaign(
            &spec,
            &CampaignOptions {
                checkpoint: Some(ck),
                ..CampaignOptions::default()
            },
        )
        .unwrap(),
    );
    assert_eq!(resumed, reference);
}

#[test]
fn checkpoint_from_a_different_spec_is_rejected() {
    let dir = scratch("mismatch");
    let ck = dir.join("checkpoint.log");
    let _ = std::fs::remove_file(&ck);
    let spec = tiny_spec();
    match run_campaign(
        &spec,
        &CampaignOptions {
            checkpoint: Some(ck.clone()),
            stop_after: Some(1),
            ..CampaignOptions::default()
        },
    )
    .unwrap()
    {
        CampaignRun::Interrupted { .. } => {}
        CampaignRun::Complete(_) => panic!("expected interrupt"),
    }

    let other = CampaignSpec {
        master_seed: spec.master_seed ^ 1,
        ..spec
    };
    let err = run_campaign(
        &other,
        &CampaignOptions {
            checkpoint: Some(ck),
            ..CampaignOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("different spec"), "{err}");
}

#[test]
fn cross_engine_pairs_agree_within_the_soa_bounds() {
    // Engine is the last axis, so cells pair up adjacently. Faulted and
    // planner cells run the identical driver under either engine — their
    // pairs must be digest-equal. Fault-free greedy SoA cells fast-forward
    // quiescent stretches, so those pairs get the PR-9 numerical bounds.
    let spec = CampaignSpec {
        scenarios: vec!["standby".to_owned()],
        chemistries: vec!["co".to_owned(), "lfp".to_owned()],
        faults: vec!["none".to_owned(), "moderate".to_owned()],
        policies: vec!["greedy".to_owned(), "planned".to_owned()],
        engines: vec!["scalar".to_owned(), "soa".to_owned()],
        master_seed: 0xD1FF,
        hours: 0.5,
        devices_per_cell: 1,
    };
    let report = complete(run_campaign(&spec, &CampaignOptions::default()).unwrap());
    assert_eq!(report.cells.len(), 16);

    let mut checked_identical = 0;
    let mut checked_bounded = 0;
    for pair in report.cells.chunks_exact(2) {
        let (scalar, soa) = (&pair[0], &pair[1]);
        assert!(scalar.key.ends_with("/scalar"), "{}", scalar.key);
        assert!(soa.key.ends_with("/soa"), "{}", soa.key);
        let faulted = !scalar.key.contains("/none/");
        let planner = scalar.key.contains("/planned/");
        if faulted || planner {
            // Identical driver ⇒ identical per-device digests.
            for (a, b) in scalar.devices.iter().zip(&soa.devices) {
                assert_eq!(a.digest(), b.digest(), "pair {} not identical", scalar.key);
            }
            checked_identical += 1;
        } else {
            for (a, b) in scalar.devices.iter().zip(&soa.devices) {
                let rel = (a.supplied_j - b.supplied_j).abs() / a.supplied_j.abs().max(1.0);
                assert!(rel <= 1e-2, "{}: supplied rel err {rel:.3e}", scalar.key);
                assert!(
                    (a.mean_final_soc - b.mean_final_soc).abs() <= 1e-3,
                    "{}: soc drift {:.3e}",
                    scalar.key,
                    (a.mean_final_soc - b.mean_final_soc).abs()
                );
                if !a.browned_out && !b.browned_out {
                    assert_eq!(a.life_s, b.life_s, "{}: life drift", scalar.key);
                }
            }
            checked_bounded += 1;
        }
    }
    assert_eq!(checked_identical + checked_bounded, 8);
    assert!(checked_bounded >= 2, "no fast-path pairs were exercised");
    // The fast path actually fast-forwarded somewhere, or the bound
    // check above was vacuous.
    assert!(
        report.cells.iter().any(|c| c.ff_ticks() > 0),
        "no cell fast-forwarded:\n{}",
        report.render_text()
    );
}

#[test]
fn minimizer_converges_on_an_injected_divergence_and_its_rerun_reproduces() {
    let spec = tiny_spec();
    let report = complete(run_campaign(&spec, &CampaignOptions::default()).unwrap());
    let mut baseline = Baseline::from_report(&report);

    // Perturb a middle cell's golden digests; the comparison must flag
    // exactly that cell and the minimizer must converge on it.
    let victim = report.cells[1].key.clone();
    baseline.inject_divergence(&victim).unwrap();

    let cmp = compare(&report, &baseline).unwrap();
    assert_eq!(cmp.checked, 2);
    assert_eq!(cmp.divergences.len(), 1);
    assert_eq!(cmp.divergences[0].key, victim);

    let culprit = minimize(&spec, &report, &cmp.divergences, "CAMPAIGN_BASELINE.txt")
        .expect("non-empty divergences minimize");
    assert_eq!(culprit.key, victim);
    assert_eq!(culprit.device, 0, "injection flips device 0's digest");
    assert!(
        culprit.reproduced,
        "fresh re-run must reproduce the observed digest:\n{}",
        culprit.render_text()
    );
    assert_eq!(culprit.rerun, culprit.observed);
    assert_ne!(culprit.rerun, culprit.expected);
    for frag in [
        "--scenarios standby",
        "--chemistries co",
        "--faults moderate",
        "--policies greedy",
        "--engines scalar",
        "--baseline CAMPAIGN_BASELINE.txt",
    ] {
        assert!(
            culprit.repro_command.contains(frag),
            "repro command missing `{frag}`: {}",
            culprit.repro_command
        );
    }
}

/// CLI end to end: list, write a golden baseline, compare clean, then
/// compare against a perturbed baseline — asserting exit code 2, the
/// culprit render, and that the printed repro command itself exits 2.
#[test]
fn cli_campaign_detects_divergence_and_prints_a_working_repro_command() {
    let dir = scratch("cli");
    let args = [
        "campaign",
        "--scenarios",
        "standby",
        "--chemistries",
        "co",
        "--faults",
        "none,moderate",
        "--policies",
        "greedy",
        "--engines",
        "scalar",
        "--seed",
        "9",
        "--hours",
        "0.25",
        "--devices-per-cell",
        "1",
    ];

    let out = sdb(&dir, &["campaign", "--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("48 cells"), "default matrix: {stdout}");

    // Record the golden baseline, then verify a re-run compares clean.
    let mut record = args.to_vec();
    record.extend(["--baseline", "golden.txt", "--write-baseline"]);
    let out = sdb(&dir, &record);
    assert!(
        out.status.success(),
        "write-baseline failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut check = args.to_vec();
    check.extend(["--baseline", "golden.txt", "--threads", "2"]);
    let out = sdb(&dir, &check);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 divergent"), "clean compare: {stdout}");

    // Perturb the committed golden file on disk — from the CLI's view a
    // real divergence — and expect exit 2 plus the minimized culprit.
    let golden = std::fs::read_to_string(dir.join("golden.txt")).unwrap();
    let mut perturbed = Baseline::parse(&golden).unwrap();
    perturbed
        .inject_divergence("standby/co/moderate/greedy/scalar")
        .unwrap();
    std::fs::write(dir.join("perturbed.txt"), perturbed.render()).unwrap();

    let mut diff = args.to_vec();
    diff.extend(["--baseline", "perturbed.txt"]);
    let out = sdb(&dir, &diff);
    assert_eq!(out.status.code(), Some(2), "divergence must exit 2");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("DIVERGED standby/co/moderate/greedy/scalar"),
        "{stdout}"
    );
    assert!(stdout.contains("re-run REPRODUCED"), "{stdout}");

    // Execute the repro command it printed (swapping `sdb` for the test
    // binary path): the pruned single-cell run must also exit 2.
    let repro = stdout
        .lines()
        .find_map(|l| l.strip_prefix("repro: sdb "))
        .expect("repro line printed");
    let repro_args: Vec<&str> = repro.split_whitespace().collect();
    let out = sdb(&dir, &repro_args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "repro command must reproduce the divergence: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("DIVERGED standby/co/moderate/greedy/scalar"),
        "{stdout}"
    );

    // The injected-divergence self-test flag drives the same path
    // without touching the file.
    let mut inject = args.to_vec();
    inject.extend([
        "--baseline",
        "golden.txt",
        "--inject-divergence",
        "standby/co/none/greedy/scalar",
    ]);
    let out = sdb(&dir, &inject);
    assert_eq!(out.status.code(), Some(2));
}

/// `--stop-after` + `--checkpoint` from the CLI: exit 3 on interruption,
/// then a resumed run completes and its report matches a straight-through
/// run byte for byte.
#[test]
fn cli_campaign_interrupts_with_exit_3_and_resumes() {
    let dir = scratch("cli-resume");
    let args = [
        "campaign",
        "--scenarios",
        "standby",
        "--chemistries",
        "co",
        "--faults",
        "moderate",
        "--policies",
        "greedy",
        "--engines",
        "scalar",
        "--seed",
        "5",
        "--hours",
        "0.25",
        "--devices-per-cell",
        "2",
    ];

    // stop-after without a checkpoint is a usage error.
    let mut bad = args.to_vec();
    bad.extend(["--stop-after", "1"]);
    let out = sdb(&dir, &bad);
    assert_eq!(out.status.code(), Some(1));

    let mut partial = args.to_vec();
    partial.extend(["--checkpoint", "ck.log", "--stop-after", "1"]);
    let out = sdb(&dir, &partial);
    assert_eq!(out.status.code(), Some(3), "interrupt must exit 3");

    let mut resume = args.to_vec();
    resume.extend(["--checkpoint", "ck.log", "--out", "resumed.txt"]);
    let out = sdb(&dir, &resume);
    assert!(out.status.success());

    let mut straight = args.to_vec();
    straight.extend(["--out", "straight.txt"]);
    let out = sdb(&dir, &straight);
    assert!(out.status.success());

    let resumed = std::fs::read(dir.join("resumed.txt")).unwrap();
    let straight = std::fs::read(dir.join("straight.txt")).unwrap();
    assert_eq!(resumed, straight, "resumed report must be byte-identical");
}
