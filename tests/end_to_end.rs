//! Cross-crate integration tests: full stack from workload traces through
//! the runtime and emulator down to the electrochemical cells.

use sdb::battery_model::{BatterySpec, Chemistry};
use sdb::core::metrics::{ccb, wear_ratios};
use sdb::core::policy::{ChargeDirective, DischargeDirective, PolicyInput, PreservePolicy};
use sdb::core::runtime::SdbRuntime;
// The chaos harness wrappers are drop-in: same signatures, but every
// simulation step is invariant-checked (energy conservation, SoC bounds,
// ratio validity, safety envelope, wear monotonicity).
use sdb::chaos::{
    checked_run_charge_session as run_charge_session, checked_run_trace as run_trace,
};
use sdb::core::scheduler::SimOptions;
use sdb::emulator::profile::ProfileKind;
use sdb::emulator::{Microcontroller, PackBuilder};
use sdb::workloads::device::Activity;
use sdb::workloads::traces::{tablet_session, watch_day};
use sdb::workloads::Trace;

fn hybrid_pack(soc: f64) -> Microcontroller {
    PackBuilder::new()
        .battery_at(
            BatterySpec::from_chemistry("energy", Chemistry::Type2CoStandard, 3.0),
            soc,
            ProfileKind::Standard,
        )
        .battery_at(
            BatterySpec::from_chemistry("power", Chemistry::Type3CoPower, 3.0),
            soc,
            ProfileKind::Fast,
        )
        .build()
}

#[test]
fn energy_is_conserved_across_the_stack() {
    let mut micro = hybrid_pack(1.0);
    let mut runtime = SdbRuntime::new(2);
    let trace = tablet_session(
        3,
        &[Activity::Network, Activity::Compute],
        300.0,
        2.0 * 3600.0,
    );
    let result = run_trace(&mut micro, &mut runtime, &trace, &SimOptions::default());

    // Everything delivered + all losses must equal the chemical energy the
    // cells gave up (within integration tolerance).
    let chem_out: f64 = micro
        .cells()
        .iter()
        .map(|c| c.energy_out_j() + c.heat_j() - c.energy_in_j())
        .sum();
    let accounted = result.supplied_j + result.circuit_loss_j + result.cell_heat_j;
    let rel = (accounted - chem_out).abs() / chem_out;
    assert!(
        rel < 0.02,
        "accounted {accounted} vs chemical {chem_out} ({rel:.4})"
    );
}

#[test]
fn discharge_then_recharge_roundtrip() {
    let mut micro = hybrid_pack(1.0);
    let mut runtime = SdbRuntime::new(2);
    // Drain half the pack.
    let result = run_trace(
        &mut micro,
        &mut runtime,
        &Trace::constant(8.0, 5400.0),
        &SimOptions::default(),
    );
    assert!(result.unmet_j < 1e-6);
    let mid: Vec<f64> = micro.cells().iter().map(|c| c.soc()).collect();
    assert!(mid.iter().all(|&s| s < 0.95));

    // Recharge to ≥95 % of total capacity.
    runtime.set_charge_directive(ChargeDirective::new(0.5));
    let times = run_charge_session(&mut micro, &mut runtime, 40.0, &[0.95], 8.0 * 3600.0, 30.0);
    assert!(times[0].is_some(), "pack recharges within 8 h");
    // Gauges agree with ground truth within a percent after the cycle.
    for (status, cell) in micro.query_battery_status().iter().zip(micro.cells()) {
        assert!((status.soc - cell.soc()).abs() < 0.02);
    }
}

#[test]
fn runtime_respects_directive_semantics_over_a_real_workload() {
    // A worn power cell: CCB-leaning directive must route load away from
    // it relative to an RBL-leaning directive.
    let build = || {
        let mut m = hybrid_pack(1.0);
        // Pre-age battery 1 by cycling its gauge-visible wear: simulate
        // cycles by charging it through the emulator is slow; instead rely
        // on the policy input directly.
        m.set_discharge_ratios(&[0.5, 0.5]).unwrap();
        m
    };
    let m = build();
    let mut input = PolicyInput::from_micro(&m).with_load(10.0);
    input.batteries[1].wear = 0.6; // battery 1 is well-worn
    let ccb_ratios = DischargeDirective::new(0.0).ratios(&input).unwrap();
    let rbl_ratios = DischargeDirective::new(1.0).ratios(&input).unwrap();
    assert!(
        ccb_ratios[1] < rbl_ratios[1],
        "CCB avoids the worn cell: {ccb_ratios:?} vs {rbl_ratios:?}"
    );
}

#[test]
fn watch_trace_drives_preserve_policy_through_full_stack() {
    let mut micro = PackBuilder::new()
        .battery(sdb::battery_model::library::watch_li_ion().spec().clone())
        .battery(sdb::battery_model::library::watch_bendable().spec().clone())
        .build();
    let mut runtime = SdbRuntime::new(2);
    runtime.set_preserve(Some(PreservePolicy::new(0, 1, 0.3)));
    // Morning only (first 6 h): light load → bendable does the work.
    let mut morning = Trace::new();
    for p in watch_day(5, Some(9.0)).points().iter().take(6 * 60) {
        morning.push(p.load_w, p.external_w, p.dur_s);
    }
    let result = run_trace(&mut micro, &mut runtime, &morning, &SimOptions::default());
    assert!(result.unmet_j < 1e-6);
    let li_ion_used = 1.0 - micro.cells()[0].soc();
    let bendable_used = 1.0 - micro.cells()[1].soc();
    assert!(
        bendable_used > 4.0 * li_ion_used,
        "preserve policy must spend the strap cell: li-ion {li_ion_used:.4}, bendable {bendable_used:.4}"
    );
}

#[test]
fn repeated_days_age_the_pack_and_raise_ccb_awareness() {
    let mut micro = hybrid_pack(1.0);
    let mut runtime = SdbRuntime::new(2);
    runtime.set_discharge_directive(DischargeDirective::new(1.0));
    runtime.set_charge_directive(ChargeDirective::new(1.0));
    // Ten compressed days: drain ~70 % of the pack at 8 W, recharge at
    // 40 W.
    for _ in 0..10 {
        let day = run_trace(
            &mut micro,
            &mut runtime,
            &Trace::constant(8.0, 2.0 * 3600.0),
            &SimOptions::default(),
        );
        assert!(day.unmet_j < 1.0);
        let _ = run_charge_session(&mut micro, &mut runtime, 40.0, &[0.99], 6.0 * 3600.0, 60.0);
    }
    let cycles: Vec<u32> = micro.cells().iter().map(|c| c.cycle_count()).collect();
    assert!(
        cycles.iter().sum::<u32>() >= 8,
        "cycling happened: {cycles:?}"
    );
    let specs: Vec<&BatterySpec> = micro.cells().iter().map(|c| c.spec()).collect();
    let wear = wear_ratios(&cycles, &specs);
    let balance = ccb(&wear);
    assert!(
        balance < 3.0,
        "RBL-only charging keeps wear within bounds: {balance}"
    );
    // Capacity fade is visible but small after ten cycles.
    for cell in micro.cells() {
        let frac = cell.aging().capacity_fraction();
        assert!(frac < 1.0 && frac > 0.95, "fade = {frac}");
    }
}

#[test]
fn brownout_reported_once_pack_cannot_hold_the_load() {
    let mut micro = hybrid_pack(0.08);
    let mut runtime = SdbRuntime::new(2);
    let result = run_trace(
        &mut micro,
        &mut runtime,
        &Trace::constant(25.0, 3600.0),
        &SimOptions {
            stop_on_brownout: true,
            ..SimOptions::default()
        },
    );
    assert!(result.first_brownout_s.is_some());
    assert!(result.simulated_s < 3600.0);
}
