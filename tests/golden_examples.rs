//! Golden snapshot tests: every example binary's stdout is byte-stable.
//!
//! The examples are deterministic end-to-end (fixed packs, fixed traces,
//! no wall clock, no ambient randomness), so their output is part of the
//! repo's behavioral surface: a drifting snapshot means the physics, a
//! policy, or a report format changed. Regenerate intentionally with
//! `SDB_REGEN_GOLDEN=1 cargo test --test golden_examples`.

use std::path::PathBuf;
use std::process::Command;

const EXAMPLES: [&str; 8] = [
    "campaign_matrix",
    "ev_route",
    "fast_charge",
    "optimal_planning",
    "policy_headtohead",
    "quickstart",
    "smart_watch",
    "two_in_one",
];

/// `target/<profile>/examples/`, located relative to the test executable
/// (which lives in `target/<profile>/deps/`).
fn examples_dir() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test exe path");
    dir.pop(); // the test binary
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.join("examples")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.stdout"))
}

#[test]
fn example_stdout_matches_golden_snapshots() {
    let dir = examples_dir();
    let regen = std::env::var_os("SDB_REGEN_GOLDEN").is_some();
    let mut drifted = Vec::new();
    for name in EXAMPLES {
        let bin = dir.join(name);
        assert!(
            bin.exists(),
            "{} not built — run via `cargo test` so cargo builds the examples",
            bin.display()
        );
        let out = Command::new(&bin).output().expect("example runs");
        assert!(
            out.status.success(),
            "{name} exited with {:?}:\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let golden = golden_path(name);
        if regen {
            std::fs::write(&golden, &out.stdout).expect("write golden");
            continue;
        }
        let expected = std::fs::read(&golden)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden.display()));
        if out.stdout != expected {
            let got = String::from_utf8_lossy(&out.stdout);
            let want = String::from_utf8_lossy(&expected);
            let first_diff = got
                .lines()
                .zip(want.lines())
                .enumerate()
                .find(|(_, (g, w))| g != w)
                .map_or_else(
                    || {
                        format!(
                            "line counts differ: {} vs {}",
                            got.lines().count(),
                            want.lines().count()
                        )
                    },
                    |(i, (g, w))| format!("line {}: got {g:?}, want {w:?}", i + 1),
                );
            drifted.push(format!("{name}: {first_diff}"));
        }
    }
    assert!(
        drifted.is_empty(),
        "example output drifted from golden snapshots \
         (SDB_REGEN_GOLDEN=1 to regenerate intentionally):\n  {}",
        drifted.join("\n  ")
    );
}

/// The snapshots themselves are non-trivial: each golden file has content.
#[test]
fn golden_snapshots_are_nonempty() {
    for name in EXAMPLES {
        let bytes = std::fs::read(golden_path(name)).expect("golden exists");
        assert!(bytes.len() > 100, "{name} snapshot suspiciously small");
        assert!(
            std::str::from_utf8(&bytes).is_ok(),
            "{name} snapshot is not UTF-8"
        );
    }
}
