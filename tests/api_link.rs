//! Integration tests of the four SDB APIs across the lossy OS link, with
//! failure injection.

use sdb::battery_model::{BatterySpec, Chemistry};
use sdb::core::api::SdbApi;
use sdb::emulator::link::{Command, Link, Response};
use sdb::emulator::{Microcontroller, PackBuilder};

fn pack() -> Microcontroller {
    PackBuilder::new()
        .battery(BatterySpec::from_chemistry(
            "a",
            Chemistry::Type2CoStandard,
            2.0,
        ))
        .battery(BatterySpec::from_chemistry(
            "b",
            Chemistry::Type3CoPower,
            2.0,
        ))
        .build()
}

#[test]
fn four_apis_roundtrip_through_ideal_link() {
    let mut link = Link::ideal(pack());
    link.send(Command::Discharge(vec![0.25, 0.75]));
    link.send(Command::Charge(vec![0.5, 0.5]));
    link.send(Command::QueryBatteryStatus);
    link.step(4.0, 0.0, 60.0);
    let responses = link.take_responses();
    assert_eq!(responses.len(), 3);
    assert_eq!(responses[0], Response::Ack);
    assert_eq!(responses[1], Response::Ack);
    match &responses[2] {
        Response::Status(rows) => {
            assert_eq!(rows.len(), 2);
            assert!(rows.iter().all(|r| r.terminal_v > 2.5));
        }
        other => panic!("expected status, got {other:?}"),
    }
    // The ratios took effect on the hardware.
    let ratios = link.micro().discharge_ratios();
    assert!((ratios[0] - 0.25).abs() < 0.01, "{ratios:?}");
}

#[test]
fn charge_one_from_another_through_link() {
    let mut micro = PackBuilder::new()
        .battery(BatterySpec::from_chemistry(
            "src",
            Chemistry::Type2CoStandard,
            2.0,
        ))
        .battery_at(
            BatterySpec::from_chemistry("dst", Chemistry::Type2CoStandard, 2.0),
            0.3,
            sdb::emulator::ProfileKind::Standard,
        )
        .build();
    micro.set_discharge_ratios(&[1.0, 0.0]).unwrap();
    let mut link = Link::ideal(micro);
    // Invariant-check the transfer: energy books must balance (sdb-chaos).
    let mut checker = sdb::chaos::InvariantChecker::for_micro(link.micro());
    link.send(Command::ChargeOneFromAnother {
        from: 0,
        to: 1,
        power_w: 4.0,
        duration_s: 900.0,
    });
    for i in 0..20 {
        let report = link.step(0.0, 0.0, 60.0);
        checker.check_step(f64::from(i + 1) * 60.0, &report);
        checker.check_micro(f64::from(i + 1) * 60.0, link.micro());
    }
    assert!(checker.is_clean(), "{:?}", checker.violations());
    assert!(link.cells()[1].soc() > 0.3, "destination gained charge");
    assert!(link.cells()[0].soc() < 1.0, "source paid for it");
}

#[test]
fn dropped_commands_leave_previous_policy_in_force() {
    // Drop every 2nd command: the first Discharge survives, the second is
    // lost, so battery 0 keeps carrying everything.
    let mut link = Link::new(pack(), 0, 2);
    link.send(Command::Discharge(vec![1.0, 0.0])); // delivered
    link.send(Command::Discharge(vec![0.0, 1.0])); // dropped
    for _ in 0..10 {
        link.step(3.0, 0.0, 60.0);
    }
    assert!(link.cells()[0].soc() < 0.99);
    // Battery 1 only self-discharges (the dropped command never arrived).
    assert!(
        link.cells()[1].soc() > 0.9999,
        "dropped command must not take effect"
    );
    let stats = link.stats();
    assert_eq!(stats.dropped, 1);
}

#[test]
fn latency_does_not_reorder_commands() {
    let mut link = Link::new(pack(), 3, 0);
    link.send(Command::Discharge(vec![1.0, 0.0]));
    link.send(Command::Discharge(vec![0.3, 0.7]));
    for _ in 0..6 {
        link.step(2.0, 0.0, 30.0);
    }
    // Both delivered, in order: final ratios are the second command's.
    let ratios = link.micro().discharge_ratios();
    assert!((ratios[0] - 0.3).abs() < 0.01, "{ratios:?}");
    assert_eq!(link.stats().delivered, 2);
}

#[test]
fn malformed_commands_nack_without_corrupting_state() {
    let mut link = Link::ideal(pack());
    link.send(Command::Discharge(vec![0.4, 0.6]));
    link.send(Command::Discharge(vec![2.0, -1.0])); // malformed
    link.send(Command::ChargeOneFromAnother {
        from: 0,
        to: 0,
        power_w: 1.0,
        duration_s: 1.0,
    });
    link.step(2.0, 0.0, 30.0);
    let responses = link.take_responses();
    assert_eq!(responses[0], Response::Ack);
    assert!(matches!(responses[1], Response::Nack(_)));
    assert!(matches!(responses[2], Response::Nack(_)));
    // The valid ratios survive the later garbage.
    let ratios = link.micro().discharge_ratios();
    assert!((ratios[0] - 0.4).abs() < 0.01, "{ratios:?}");
    assert!(!link.micro().transfer_active());
}

#[test]
fn trait_object_api_over_microcontroller_and_link() {
    // Both transports satisfy the same SdbApi the runtime programs
    // against.
    let mut m = pack();
    let mut l = Link::ideal(pack());
    let apis: Vec<&mut dyn SdbApi> = vec![&mut m, &mut l];
    for api in apis {
        assert_eq!(api.battery_count(), 2);
        api.discharge(&[0.5, 0.5]).unwrap();
        assert_eq!(api.query_battery_status().len(), 2);
    }
}
