//! Flight-recorder observability integration tests: the event bus wired
//! through every layer, the metrics registry exporters, and post-mortem
//! dumps from fault-injection runs.

use sdb::battery_model::{BatterySpec, Chemistry};
use sdb::core::runtime::SdbRuntime;
// Invariant-checked drop-in for run_trace (sdb-chaos harness).
use sdb::chaos::checked_run_trace as run_trace;
use sdb::core::scheduler::SimOptions;
use sdb::core::telemetry::Telemetry;
use sdb::emulator::micro::ThermalThrottle;
use sdb::emulator::{Microcontroller, PackBuilder, ProfileKind};
use sdb::fuel_gauge::gauge::GaugeConfig;
use sdb::observe::{FlightRecorder, ObsEvent, Observer};
use sdb::workloads::Trace;

fn hybrid_pack() -> Microcontroller {
    PackBuilder::new()
        .battery(BatterySpec::from_chemistry(
            "a",
            Chemistry::Type2CoStandard,
            3.0,
        ))
        .battery(BatterySpec::from_chemistry(
            "b",
            Chemistry::Type3CoPower,
            3.0,
        ))
        .build()
}

/// The acceptance scenario: a 2-battery run with a flight recorder
/// attached yields a non-empty dump containing at least ratio-push and
/// policy-evaluation events.
#[test]
fn flight_recorder_captures_trace_run() {
    let mut micro = hybrid_pack();
    let mut runtime = SdbRuntime::new(2);
    let obs = Observer::new();
    let recorder = FlightRecorder::shared(4096);
    obs.add_sink(Box::new(recorder.clone()));
    micro.set_observer(obs.clone());
    runtime.set_observer(obs.clone());

    let result = run_trace(
        &mut micro,
        &mut runtime,
        &Trace::constant(4.0, 1800.0),
        &SimOptions::default(),
    );
    assert!(result.unmet_j < 1e-6);

    let rec = recorder.lock().unwrap();
    let dump = rec.dump();
    assert!(!dump.is_empty(), "flight recorder stayed empty");
    assert!(
        dump.iter()
            .any(|e| matches!(e.event, ObsEvent::RatioPush { .. })),
        "no ratio-push events in dump"
    );
    assert!(
        dump.iter()
            .any(|e| matches!(e.event, ObsEvent::PolicyEvaluation { .. })),
        "no policy-evaluation events in dump"
    );
    // Timestamps are the simulation clock, oldest first.
    assert!(dump.windows(2).all(|w| w[0].t_s <= w[1].t_s));
    assert!(dump.last().unwrap().t_s <= 1800.0);
    // The textual dump renders one line per event.
    assert_eq!(rec.dump_text().lines().count(), dump.len());
}

/// Every exporter line must parse as `name{labels} value` (or
/// `name value`), with a finite or +Inf-bucket value — checked with a
/// hand-rolled parser, no regex.
#[test]
fn prometheus_export_parses_line_by_line() {
    let mut micro = hybrid_pack();
    let mut runtime = SdbRuntime::new(2);
    let obs = Observer::new();
    micro.set_observer(obs.clone());
    runtime.set_observer(obs.clone());
    let _ = run_trace(
        &mut micro,
        &mut runtime,
        &Trace::constant(4.0, 1800.0),
        &SimOptions::default(),
    );

    let text = obs.registry().unwrap().to_prometheus_text();
    assert!(!text.is_empty());
    let mut names = Vec::new();
    for line in text.lines() {
        // Split metric id from value at the last space.
        let (id, value) = line.rsplit_once(' ').expect("line has no value");
        assert!(!value.is_empty(), "empty value in {line:?}");
        let _: f64 = value.parse().unwrap_or_else(|_| {
            assert_eq!(value, "+Inf", "unparseable value {value:?} in {line:?}");
            f64::INFINITY
        });
        let name = match id.split_once('{') {
            Some((name, rest)) => {
                assert!(rest.ends_with('}'), "unclosed label set in {line:?}");
                let labels = &rest[..rest.len() - 1];
                for pair in labels.split(',') {
                    let (k, v) = pair.split_once('=').expect("label without =");
                    assert!(!k.is_empty());
                    assert!(
                        v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                        "unquoted label value in {line:?}"
                    );
                }
                name
            }
            None => id,
        };
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name {name:?}"
        );
        names.push(name.to_string());
    }
    // The run actually recorded the cross-layer metrics.
    for expected in [
        "sdb_micro_steps_total",
        "sdb_ratio_pushes_total",
        "sdb_policy_evals_total",
        "sdb_micro_step_ns_bucket",
        "sdb_policy_eval_ns_count",
        "sdb_trace_step_ns_sum",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing metric {expected}"
        );
    }
}

/// A fault-injection run (thermal stress + drifting gauge, as in
/// `faults.rs`) leaves throttle and recalibration events in the recorder
/// for post-mortem analysis.
#[test]
fn fault_injection_run_records_throttle_and_recalibration() {
    let obs = Observer::new();
    let recorder = FlightRecorder::shared(65536);
    obs.add_sink(Box::new(recorder.clone()));

    // Thermal stress: sustained fast charge in a warm environment.
    let mut hot = PackBuilder::new()
        .battery_at(
            BatterySpec::from_chemistry("fast", Chemistry::Type3CoPower, 3.0),
            0.05,
            ProfileKind::Fast,
        )
        .ambient_c(35.0)
        .build();
    hot.set_observer(obs.clone());
    hot.set_thermal_throttle(Some(ThermalThrottle {
        limit_c: 37.5,
        resume_c: 36.0,
    }));
    hot.set_charge_ratios(&[1.0]).unwrap();
    for _ in 0..240 {
        hot.step(0.0, 30.0, 30.0);
    }

    // Gauge drift: a large current offset integrates into SoC error under
    // light load, then an hour of rest triggers OCV recalibration.
    let mut drifty = PackBuilder::new()
        .battery(BatterySpec::from_chemistry(
            "a",
            Chemistry::Type2CoStandard,
            3.0,
        ))
        .gauge(GaugeConfig {
            current_lsb_a: 0.002,
            current_offset_a: 0.004,
            voltage_lsb_v: 0.002,
            rest_recal_s: 1200.0,
        })
        .build();
    drifty.set_observer(obs.clone());
    let mut runtime = SdbRuntime::new(1);
    runtime.set_observer(obs.clone());
    let _ = run_trace(
        &mut drifty,
        &mut runtime,
        &Trace::constant(1.0, 8.0 * 3600.0),
        &SimOptions::default(),
    );
    let _ = run_trace(
        &mut drifty,
        &mut runtime,
        &Trace::constant(0.0, 3600.0),
        &SimOptions::default(),
    );

    let rec = recorder.lock().unwrap();
    let dump = rec.dump();
    let throttle_engagements = dump
        .iter()
        .filter(|e| matches!(e.event, ObsEvent::ThermalThrottle { engaged: true, .. }))
        .count();
    assert!(throttle_engagements >= 1, "no throttle events recorded");
    assert!(
        dump.iter()
            .any(|e| matches!(e.event, ObsEvent::GaugeRecalibration { .. })),
        "no gauge-recalibration events recorded"
    );
    // Registry counters agree with the event stream.
    let text = obs.registry().unwrap().to_prometheus_text();
    assert!(text.contains("sdb_gauge_recalibrations_total"));
    assert!(text.contains("sdb_thermal_throttle_transitions_total"));
}

/// Dropped link commands surface as fault-injection events.
#[test]
fn lossy_link_records_fault_injections() {
    use sdb::core::policy::PolicyInput;
    use sdb::emulator::link::Link;

    let obs = Observer::new();
    let recorder = FlightRecorder::shared(256);
    obs.add_sink(Box::new(recorder.clone()));
    let mut micro = hybrid_pack();
    micro.set_observer(obs.clone());
    // Drop every 2nd command.
    let mut link = Link::new(micro, 0, 2);
    let mut runtime = SdbRuntime::new(2);
    runtime.set_observer(obs.clone());
    runtime.set_update_period(60.0);
    for _ in 0..30 {
        let input = PolicyInput::from_micro(link.micro()).with_load(4.0);
        let _ = runtime.tick(&mut link, &input, 60.0);
        link.step(4.0, 0.0, 60.0);
    }

    assert!(link.stats().dropped >= 1, "link dropped nothing");
    let rec = recorder.lock().unwrap();
    assert!(
        rec.dump()
            .iter()
            .any(|e| matches!(e.event, ObsEvent::FaultInjection { .. })),
        "no fault-injection events from the lossy link"
    );
}

/// Telemetry attached as a bus sink records the same series the scheduler
/// callback would.
#[test]
fn telemetry_sink_matches_callback_capture() {
    let mut micro_a = hybrid_pack();
    let mut micro_b = hybrid_pack();
    let mut rt_a = SdbRuntime::new(2);
    let mut rt_b = SdbRuntime::new(2);

    // A: classic callback capture.
    let mut callback_tel = Telemetry::new();
    let _ = sdb::core::scheduler::run_trace_observed(
        &mut micro_a,
        &mut rt_a,
        &Trace::constant(4.0, 1800.0),
        &SimOptions::default(),
        |t, report| callback_tel.observe(t, report),
    );

    // B: event-bus sink capture.
    let obs = Observer::new();
    let bus_tel = Telemetry::shared(0.0);
    obs.add_sink(Box::new(bus_tel.clone()));
    micro_b.set_observer(obs.clone());
    rt_b.set_observer(obs);
    let _ = run_trace(
        &mut micro_b,
        &mut rt_b,
        &Trace::constant(4.0, 1800.0),
        &SimOptions::default(),
    );

    let bus_tel = bus_tel.lock().unwrap();
    assert_eq!(bus_tel.rows().len(), callback_tel.rows().len());
    for (a, b) in callback_tel.rows().iter().zip(bus_tel.rows()) {
        assert_eq!(a.t_s, b.t_s);
        assert_eq!(a.soc, b.soc);
        assert_eq!(a.load_w, b.load_w);
    }
}

/// An instrumented run and an uninstrumented run produce bit-identical
/// physics: observability is observation only.
#[test]
fn observability_does_not_perturb_simulation() {
    let run = |observed: bool| {
        let mut micro = hybrid_pack();
        let mut runtime = SdbRuntime::new(2);
        if observed {
            let obs = Observer::new();
            obs.add_sink(Box::new(FlightRecorder::shared(1024)));
            micro.set_observer(obs.clone());
            runtime.set_observer(obs);
        }
        let sim = run_trace(
            &mut micro,
            &mut runtime,
            &Trace::constant(6.0, 3600.0),
            &SimOptions::default(),
        );
        (
            sim.supplied_j,
            sim.total_loss_j(),
            micro.cells().iter().map(|c| c.soc()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(false), run(true));
}
