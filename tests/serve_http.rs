//! End-to-end tests of the `sdb serve` surface: the HTTP listener under
//! concurrent scrape load while a fleet simulation runs live, the
//! dropped-events guarantee, and the telemetry store's compression floor
//! on a real fleet workload.

use sdb::fleet::{run_fleet_captured, run_fleet_live, FleetSpec};
use sdb::observe::{FlightRecorder, MetricsRegistry, Observer};
use sdb::tsdb::{ingest_events, serve, SeriesId, ServeOptions, TsdbStore};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One blocking GET, returning (status, body).
fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!("GET {target} HTTP/1.1\r\nHost: sdb\r\n\r\n");
    stream.write_all(req.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// Asserts a Prometheus text body is well-formed: every non-empty,
/// non-comment line is `name value` or `name{labels} value` with a
/// parseable float, and no line is torn mid-write.
fn assert_well_formed_prometheus(body: &str) {
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("no value separator in line {line:?}"));
        assert!(
            !name_part.is_empty()
                && name_part
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
            "bad metric name in line {line:?}"
        );
        assert!(
            value_part.parse::<f64>().is_ok() || value_part == "+Inf",
            "unparseable value in line {line:?}"
        );
    }
}

/// The ISSUE acceptance scenario, end to end:
///
/// * a fleet runs live with its metrics registry shared with the HTTP
///   listener;
/// * four client threads scrape `/metrics` concurrently the whole time
///   and every body must be well-formed;
/// * a flight recorder wired to `sdb_dropped_events_total` must report
///   zero drops;
/// * the captured event stream, ingested into the telemetry store, must
///   compress at least 5x vs raw 16-byte samples;
/// * `/query` serves the ingested series as JSON.
#[test]
fn concurrent_scrapes_during_live_fleet_run() {
    let registry = MetricsRegistry::new();
    let store = TsdbStore::default();
    // The drop counter rides the same registry the scrapers poll. The
    // capacity comfortably exceeds the events a smoke fleet emits, so
    // any increment means the overflow accounting is broken.
    let recorder = FlightRecorder::shared_with_registry(1 << 20, &registry);
    let dropped = registry.counter("sdb_dropped_events_total", &[]);

    let handle = serve(
        &ServeOptions {
            scrape_every: Some(Duration::from_millis(25)),
            ..ServeOptions::default()
        },
        registry.clone(),
        store.clone(),
    )
    .expect("bind loopback");
    let addr = handle.addr();

    let fleet_done = Arc::new(AtomicBool::new(false));
    let events = std::thread::scope(|s| {
        let scrapers: Vec<_> = (0..4)
            .map(|_| {
                let fleet_done = Arc::clone(&fleet_done);
                s.spawn(move || {
                    let mut scrapes = 0u32;
                    while !fleet_done.load(Ordering::SeqCst) || scrapes == 0 {
                        let (status, body) = get(addr, "/metrics");
                        assert_eq!(status, 200);
                        assert_well_formed_prometheus(&body);
                        scrapes += 1;
                        // A malformed request mid-run must not disturb it.
                        let (status, _) = get(addr, "/query?name=x&kind=bogus");
                        assert_eq!(status, 400);
                    }
                    scrapes
                })
            })
            .collect();

        // Feed the flight recorder from a shard of its own while the
        // fleet proper runs live against the same registry.
        let spec = FleetSpec::default_population(16, 42).with_hours(3.0);
        let (report, _stats, events) =
            run_fleet_live(&spec, 3, true, &registry).expect("fleet runs");
        assert_eq!(report.devices, 16);
        let events = events.expect("capture requested");
        // Replay a slice through the recorder so drop accounting is live.
        {
            let obs = Observer::with_registry(registry.clone());
            obs.add_sink(Box::new(recorder.clone()));
            for e in events.iter().take(10_000) {
                obs.emit_at(e.t_s, e.event.clone());
            }
        }
        fleet_done.store(true, Ordering::SeqCst);
        for scraper in scrapers {
            let scrapes = scraper.join().expect("scraper thread");
            assert!(scrapes >= 1);
        }
        events
    });

    // Zero dropped events on the smoke workload, and the counter is
    // visible on the scrape surface.
    assert_eq!(dropped.get(), 0, "flight recorder overflowed");
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        body.contains("sdb_dropped_events_total 0\n"),
        "drop counter missing from scrape: {body}"
    );
    assert!(
        !recorder.lock().expect("recorder lock").is_empty(),
        "recorder saw no events"
    );

    // The compression floor on the real fleet workload.
    let ingested = ingest_events(&store, &events);
    assert!(ingested > 1000, "smoke fleet produced {ingested} events");
    let stats = store.stats();
    assert!(
        stats.compression_ratio() >= 5.0,
        "fleet telemetry must compress >= 5x, got {:.2} ({} samples, {} bytes)",
        stats.compression_ratio(),
        stats.raw_samples,
        stats.compressed_bytes
    );

    // The ingested series are queryable as JSON.
    let (status, body) = get(addr, "/query?name=sdb_soc&label.device=d0&label.battery=0");
    assert_eq!(status, 200);
    let v = sdb::trace::json::parse(&body).expect("json body");
    let series = v.get("series").and_then(|s| s.as_arr()).expect("series");
    assert_eq!(series.len(), 1, "one series for one device+battery");

    handle.shutdown();
}

/// The live-registry path must not change the deterministic report: the
/// same spec through `run_fleet_captured` and `run_fleet_live` renders
/// byte-identical, at different thread counts.
#[test]
fn live_fleet_report_matches_captured_fleet_report() {
    let spec = FleetSpec::default_population(6, 7).with_hours(0.25);
    let (captured, _, _) = run_fleet_captured(&spec, 1, false).expect("captured");
    let live_registry = MetricsRegistry::new();
    let (live, _, _) = run_fleet_live(&spec, 4, false, &live_registry).expect("live");
    assert_eq!(captured.render_text(), live.render_text());
}

/// Scraped longitudinal series land in the store while the fleet runs:
/// the `sdb serve --telemetry` wiring, minus the CLI.
#[test]
fn scraper_tracks_live_fleet_counters() {
    let registry = MetricsRegistry::new();
    let store = TsdbStore::default();
    let handle = serve(
        &ServeOptions {
            scrape_every: Some(Duration::from_millis(10)),
            ..ServeOptions::default()
        },
        registry.clone(),
        store.clone(),
    )
    .expect("bind");

    let spec = FleetSpec::default_population(8, 9).with_hours(0.25);
    run_fleet_live(&spec, 2, false, &registry).expect("fleet runs");
    // One more scrape interval so the final counter values land.
    std::thread::sleep(Duration::from_millis(40));
    handle.shutdown();

    let selected = store.select("sdb_fleet_devices_total", &[], i64::MIN, i64::MAX);
    let points = &selected.first().expect("devices counter scraped").1;
    assert!(
        points.windows(2).all(|w| w[1].value >= w[0].value),
        "counter series must be monotone"
    );
    assert_eq!(
        points.last().expect("at least one scrape").value,
        8.0,
        "final scrape sees every device completed"
    );
}

/// Raw byte-level abuse against a listener serving a non-empty store.
#[test]
fn malformed_requests_never_take_the_listener_down() {
    let registry = MetricsRegistry::new();
    let store = TsdbStore::default();
    store.append(&SeriesId::new("sdb_soc", &[("device", "d0")]), 0, 0.5);
    let handle = serve(&ServeOptions::default(), registry, store).expect("bind");
    let addr = handle.addr();

    for abuse in [
        &b"\r\n\r\n"[..],
        b"GET\r\n\r\n",
        b"GET /query?name=%zz HTTP/1.1\r\n\r\n",
        b"GET /query?q=abc&name=x&kind=quantile HTTP/1.1\r\n\r\n",
        b"\xff\xfe\xfd\xfc\r\n\r\n",
    ] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(abuse).expect("write");
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(
            response.starts_with("HTTP/1.1 400"),
            "abuse {abuse:?} got {response:?}"
        );
    }
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200, "listener died under malformed input");
    handle.shutdown();
}
