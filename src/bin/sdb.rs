//! `sdb` — command-line driver for the SDB simulation stack.
//!
//! ```text
//! sdb packs                                  list built-in packs
//! sdb traces                                 list built-in traces
//! sdb sim    --pack watch --trace watch-day [--policy preserve|rbl|ccb|blend:<v>] [--seed N] [--events-out <jsonl>]
//! sdb sim    --pack phone --trace-file captured.csv   (CSV: dur_s,load_w[,external_w])
//! sdb charge --pack tablet-hybrid --watts 45 [--directive <0..1>] [--target <pct>]
//! sdb status --pack phone [--soc <0..1>]     show QueryBatteryStatus + ACPI view
//! sdb fleet  --devices 10000 --threads 8 --seed 42 [--hours H] [--json] [--metrics-out <path>]
//!            [--events-out <jsonl>] [--trace-out <jsonl>]   (trace-out also writes a Perfetto-loadable .chrome.json)
//! sdb analyze --trace <jsonl> [--json]       replay a recorded trace through the health rules
//! sdb analyze --devices 200 --seed 42 [--hours H] [--threads N] [--json]   run a fleet inline and analyze it
//! sdb chaos  --devices 200 --seed 42 [--intensity 0.7] [--hours H] [--load W] [--threads N] [--json] [--out <path>]
//!            run a fault-injection campaign; exits non-zero on any invariant violation
//! ```

use sdb::battery_model::{library, BatterySpec, Chemistry};
use sdb::core::policy::{ChargeDirective, DischargeDirective, PreservePolicy};
use sdb::core::runtime::SdbRuntime;
use sdb::core::scheduler::{run_charge_session, run_trace, SimOptions};
use sdb::emulator::{acpi, Microcontroller, PackBuilder, ProfileKind};
use sdb::fleet;
use sdb::observe::{Observer, TraceCollector};
use sdb::trace as sdbtrace;
use sdb::workloads::traces::{phone_day, tablet_session, watch_day, Trace};
use sdb::workloads::Activity;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;

const PACKS: &[(&str, &str)] = &[
    (
        "watch",
        "200 mAh Li-ion + 200 mAh bendable strap (paper §5.2)",
    ),
    (
        "tablet-hybrid",
        "4 Ah high-energy + 4 Ah fast-charge (paper §5.1)",
    ),
    (
        "two-in-one",
        "2 × 4 Ah Li-ion, internal + keyboard (paper §5.3)",
    ),
    ("phone", "3 Ah high-energy + 1 Ah high-power"),
];

const TRACES: &[(&str, &str)] = &[
    (
        "watch-day",
        "24 h watch day with an hour-9 GPS run (Figure 13)",
    ),
    ("watch-day-norun", "the same day without the run"),
    (
        "phone-day",
        "24 h smartphone day (commute navigation, streaming)",
    ),
    (
        "tablet-mixed",
        "4 h tablet session mixing network and compute",
    ),
];

/// Pipe-safe print: `println!` panics on `EPIPE`, but CLI output is
/// routinely piped into `head`/`grep` — treat a closed pipe as a normal
/// early exit.
fn emit(text: &str) {
    use std::io::{ErrorKind, Write};
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if let Err(e) = lock.write_all(text.as_bytes()) {
        if e.kind() == ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("write error: {e}");
        std::process::exit(1);
    }
    let _ = lock.flush();
}

fn build_pack(name: &str, soc: f64) -> Option<Microcontroller> {
    let pack = match name {
        "watch" => PackBuilder::new()
            .battery_at(
                library::watch_li_ion().spec().clone(),
                soc,
                ProfileKind::Standard,
            )
            .battery_at(
                library::watch_bendable().spec().clone(),
                soc,
                ProfileKind::Gentle,
            )
            .build(),
        "tablet-hybrid" => PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("high-energy", Chemistry::Type2CoStandard, 4.0),
                soc,
                ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("fast-charge", Chemistry::Type3CoPower, 4.0),
                soc,
                ProfileKind::Fast,
            )
            .build(),
        "two-in-one" => PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("internal", Chemistry::Type2CoStandard, 4.0),
                soc,
                ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("external", Chemistry::Type2CoStandard, 4.0),
                soc,
                ProfileKind::Standard,
            )
            .build(),
        "phone" => PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("high-energy", Chemistry::Type2CoStandard, 3.0),
                soc,
                ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("high-power", Chemistry::Type3CoPower, 1.0),
                soc,
                ProfileKind::Fast,
            )
            .build(),
        _ => return None,
    };
    Some(pack)
}

fn build_trace(name: &str, seed: u64) -> Option<Trace> {
    match name {
        "watch-day" => Some(watch_day(seed, Some(9.0))),
        "watch-day-norun" => Some(watch_day(seed, None)),
        "phone-day" => Some(phone_day(seed)),
        "tablet-mixed" => Some(tablet_session(
            seed,
            &[Activity::Network, Activity::Compute, Activity::Interactive],
            300.0,
            4.0 * 3600.0,
        )),
        _ => None,
    }
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            // A flag followed by another flag (or nothing) is boolean,
            // e.g. `--json`.
            match args.get(i + 1) {
                Some(next) if !next.starts_with("--") => {
                    flags.insert(key.to_owned(), next.clone());
                    i += 2;
                }
                _ => {
                    flags.insert(key.to_owned(), String::new());
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sdb packs | traces\n  sdb sim --pack <name> --trace <name> [--policy preserve|rbl|ccb|blend:<v>] [--seed N] [--trace-file <csv>] [--events-out <jsonl>]\n  sdb charge --pack <name> --watts <W> [--directive <0..1>] [--target <pct>]\n  sdb status --pack <name> [--soc <0..1>]\n  sdb fleet --devices <N> [--threads <N>] [--seed <N>] [--hours <H>] [--json] [--out <path>] [--metrics-out <path>] [--events-out <jsonl>] [--trace-out <jsonl>]\n  sdb analyze --trace <jsonl> [--json] [--max-findings <N>]\n  sdb analyze --devices <N> [--seed <N>] [--hours <H>] [--threads <N>] [--json]\n  sdb chaos --devices <N> [--seed <N>] [--intensity <0..1>] [--hours <H>] [--load <W>] [--threads <N>] [--json] [--out <path>]"
    );
    ExitCode::FAILURE
}

/// Derives the Chrome-export path from a JSONL trace path:
/// `fleet.jsonl` → `fleet.chrome.json`, anything else gets `.chrome.json`
/// appended.
fn chrome_path(jsonl_path: &str) -> String {
    match jsonl_path.strip_suffix(".jsonl") {
        Some(stem) => format!("{stem}.chrome.json"),
        None => format!("{jsonl_path}.chrome.json"),
    }
}

fn cmd_sim(flags: &HashMap<String, String>) -> ExitCode {
    let pack_name = flags.get("pack").map(String::as_str).unwrap_or("watch");
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(13);
    let Some(mut micro) = build_pack(pack_name, 1.0) else {
        eprintln!("unknown pack `{pack_name}` (try `sdb packs`)");
        return ExitCode::FAILURE;
    };
    let (trace, trace_name) = if let Some(path) = flags.get("trace-file") {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Trace::from_csv(&text))
        {
            Ok(t) => (t, path.clone()),
            Err(e) => {
                eprintln!("cannot load trace file `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let trace_name = flags
            .get("trace")
            .map(String::as_str)
            .unwrap_or("watch-day");
        match build_trace(trace_name, seed) {
            Some(t) => (t, trace_name.to_owned()),
            None => {
                eprintln!("unknown trace `{trace_name}` (try `sdb traces`)");
                return ExitCode::FAILURE;
            }
        }
    };
    let mut runtime = SdbRuntime::new(micro.battery_count());
    // With --events-out, attach an observer with a trace collector so the
    // run's event stream (device 0) can be dumped as JSONL afterwards.
    let collector = flags.get("events-out").map(|_| {
        let obs = Observer::new();
        let shared = TraceCollector::shared();
        obs.add_sink(Box::new(shared.clone()));
        micro.set_observer(obs.clone());
        runtime.set_observer(obs);
        shared
    });
    match flags.get("policy").map(String::as_str).unwrap_or("rbl") {
        "preserve" => runtime.set_preserve(Some(PreservePolicy::new(0, 1, 0.3))),
        "rbl" => runtime.set_discharge_directive(DischargeDirective::new(1.0)),
        "ccb" => runtime.set_discharge_directive(DischargeDirective::new(0.0)),
        other => {
            if let Some(v) = other
                .strip_prefix("blend:")
                .and_then(|v| v.parse::<f64>().ok())
            {
                runtime.set_discharge_directive(DischargeDirective::new(v));
            } else {
                eprintln!("unknown policy `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = run_trace(&mut micro, &mut runtime, &trace, &SimOptions::default());
    if let (Some(collector), Some(path)) = (collector, flags.get("events-out")) {
        let events = collector.lock().expect("collector lock").drain();
        let jsonl = sdbtrace::to_jsonl(&events);
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("failed to write events to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {} events to {path}", events.len());
    }
    let mut out = String::new();
    let _ = writeln!(out, "pack:          {pack_name}");
    let _ = writeln!(
        out,
        "trace:         {trace_name} ({:.1} h, mean {:.2} W)",
        trace.duration_s() / 3600.0,
        trace.mean_load_w()
    );
    let _ = writeln!(
        out,
        "battery life:  {:.2} h",
        result.battery_life_s() / 3600.0
    );
    let _ = writeln!(out, "delivered:     {:.1} kJ", result.supplied_j / 1e3);
    let _ = writeln!(
        out,
        "losses:        {:.1} J ({:.2}% of delivered)",
        result.total_loss_j(),
        result.total_loss_j() / result.supplied_j * 100.0
    );
    let _ = writeln!(out, "unserved:      {:.1} J", result.unmet_j);
    for (i, (t, cell)) in result.battery_empty_s.iter().zip(micro.cells()).enumerate() {
        match t {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "battery {i} ({}): empty at {:.1} h",
                    cell.spec().name,
                    s / 3600.0
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "battery {i} ({}): {:.1}% left",
                    cell.spec().name,
                    cell.soc() * 100.0
                );
            }
        }
    }
    emit(&out);
    ExitCode::SUCCESS
}

fn cmd_charge(flags: &HashMap<String, String>) -> ExitCode {
    let pack_name = flags
        .get("pack")
        .map(String::as_str)
        .unwrap_or("tablet-hybrid");
    let watts: f64 = flags
        .get("watts")
        .and_then(|s| s.parse().ok())
        .unwrap_or(45.0);
    let directive: f64 = flags
        .get("directive")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let target: f64 = flags
        .get("target")
        .and_then(|s| s.parse().ok())
        .unwrap_or(80.0);
    let Some(mut micro) = build_pack(pack_name, 0.0) else {
        eprintln!("unknown pack `{pack_name}` (try `sdb packs`)");
        return ExitCode::FAILURE;
    };
    let mut runtime = SdbRuntime::new(micro.battery_count());
    runtime.set_charge_directive(ChargeDirective::new(directive));
    runtime.set_update_period(30.0);
    let targets: Vec<f64> = (1..=((target / 5.0) as usize))
        .map(|k| k as f64 * 0.05)
        .collect();
    let times = run_charge_session(
        &mut micro,
        &mut runtime,
        watts,
        &targets,
        12.0 * 3600.0,
        15.0,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pack: {pack_name}, supply: {watts} W, charge directive: {directive}"
    );
    let _ = writeln!(out, "{:>9}  {:>10}", "% charged", "minutes");
    for (t, time) in targets.iter().zip(&times) {
        match time {
            Some(s) => {
                let _ = writeln!(out, "{:>9.0}  {:>10.1}", t * 100.0, s / 60.0);
            }
            None => {
                let _ = writeln!(out, "{:>9.0}  {:>10}", t * 100.0, "-");
            }
        }
    }
    emit(&out);
    ExitCode::SUCCESS
}

fn cmd_status(flags: &HashMap<String, String>) -> ExitCode {
    let pack_name = flags.get("pack").map(String::as_str).unwrap_or("phone");
    let soc: f64 = flags.get("soc").and_then(|s| s.parse().ok()).unwrap_or(0.8);
    let Some(micro) = build_pack(pack_name, soc.clamp(0.0, 1.0)) else {
        eprintln!("unknown pack `{pack_name}` (try `sdb packs`)");
        return ExitCode::FAILURE;
    };
    let mut out = String::from("QueryBatteryStatus():\n");
    for (i, s) in micro.query_battery_status().iter().enumerate() {
        let _ = writeln!(
            out,
            "  battery {i} ({}): soc {:5.1}%  {:.3} V  {} cycles  {:.2} Ah left{}",
            micro.cells()[i].spec().name,
            s.soc * 100.0,
            s.terminal_v,
            s.cycle_count,
            s.remaining_ah,
            if s.present { "" } else { "  [absent]" },
        );
    }
    let info = acpi::report(&micro);
    let _ = writeln!(out, "\nLegacy ACPI view (single logical battery):");
    let _ = writeln!(
        out,
        "  design capacity:    {:.0} mWh",
        info.design_capacity_mwh
    );
    let _ = writeln!(
        out,
        "  last full capacity: {:.0} mWh",
        info.last_full_capacity_mwh
    );
    let _ = writeln!(
        out,
        "  remaining:          {:.0} mWh ({:.1}%)",
        info.remaining_capacity_mwh, info.percentage
    );
    let _ = writeln!(out, "  voltage:            {:.0} mV", info.voltage_mv);
    let _ = writeln!(out, "  state:              {:?}", info.state);
    emit(&out);
    ExitCode::SUCCESS
}

/// Runs a deterministic multi-device fleet simulation and prints the
/// merged report (human-readable by default, canonical JSON with
/// `--json`). The report is a pure function of `--devices`/`--seed`/
/// `--hours`; `--threads` only changes wall-clock time.
fn cmd_fleet(flags: &HashMap<String, String>) -> ExitCode {
    let devices: usize = flags
        .get("devices")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let threads: usize = flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let hours: f64 = flags
        .get("hours")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4.0);

    let spec = fleet::FleetSpec::default_population(devices, seed).with_hours(hours);
    let capture = flags.contains_key("trace-out") || flags.contains_key("events-out");
    let (report, stats, events) = match fleet::run_fleet_captured(&spec, threads, capture) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(events) = &events {
        let jsonl = sdbtrace::to_jsonl(events);
        if let Some(path) = flags.get("events-out") {
            if let Err(e) = std::fs::write(path, &jsonl) {
                eprintln!("failed to write events to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} events to {path}", events.len());
        }
        // --trace-out writes the replayable JSONL plus a Perfetto-loadable
        // Chrome trace_event export next to it.
        if let Some(path) = flags.get("trace-out") {
            if let Err(e) = std::fs::write(path, &jsonl) {
                eprintln!("failed to write trace to {path}: {e}");
                return ExitCode::FAILURE;
            }
            let chrome = chrome_path(path);
            if let Err(e) = std::fs::write(&chrome, sdbtrace::to_chrome(events)) {
                eprintln!("failed to write chrome trace to {chrome}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} events to {path} (+ {chrome})", events.len());
        }
    }

    if let Some(path) = flags.get("metrics-out") {
        let text = if path.ends_with(".json") {
            stats.registry.to_json()
        } else {
            stats.registry.to_prometheus_text()
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("failed to write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote metrics to {path}");
    }

    let body = if flags.contains_key("json") {
        let mut s = report.to_json();
        s.push('\n');
        s
    } else {
        format!(
            "{}threads: {}  wall: {:.2} s  throughput: {:.0} devices/sec\n",
            report.render_text(),
            stats.threads,
            stats.wall_s,
            stats.devices_per_sec
        )
    };
    if let Some(path) = flags.get("out") {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("failed to write report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote report to {path}");
    } else {
        emit(&body);
    }
    ExitCode::SUCCESS
}

/// Replays a recorded JSONL trace — or runs a fleet inline — through the
/// default health-rule set and prints the findings. Inline mode also
/// cross-checks the streaming quantile sketches against the exact report
/// percentiles.
fn cmd_analyze(flags: &HashMap<String, String>) -> ExitCode {
    let max_findings: usize = flags
        .get("max-findings")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let json = flags.contains_key("json");

    if let Some(path) = flags.get("trace") {
        // Replay mode: analyze a trace file recorded by `--trace-out` /
        // `--events-out`.
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read trace `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        let analysis = match sdbtrace::analyze_jsonl(&text, sdbtrace::default_rules()) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("cannot parse trace `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        let body = if json {
            let mut s = analysis.to_json();
            s.push('\n');
            s
        } else {
            analysis.render_text(max_findings)
        };
        emit(&body);
        return ExitCode::SUCCESS;
    }

    // Inline mode: run a fleet with event capture and analyze it in-process.
    let devices: usize = flags
        .get("devices")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let threads: usize = flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let hours: f64 = flags
        .get("hours")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let spec = fleet::FleetSpec::default_population(devices, seed).with_hours(hours);
    let (report, stats, events) = match fleet::run_fleet_captured(&spec, threads, true) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = events.expect("capture was requested");
    let analysis = sdbtrace::analyze(&events, sdbtrace::default_rules());
    let deltas = stats.sketches.deltas(&report);

    let body = if json {
        format!(
            "{{\"trace\":{},\"sketch_deltas\":{}}}\n",
            analysis.to_json(),
            fleet::render_deltas_json(&deltas)
        )
    } else {
        format!(
            "{}sketch vs exact percentiles (alpha = {}):\n{}",
            analysis.render_text(max_findings),
            fleet::FLEET_SKETCH_ALPHA,
            fleet::render_deltas_text(&deltas)
        )
    };
    emit(&body);
    ExitCode::SUCCESS
}

fn cmd_chaos(flags: &HashMap<String, String>) -> ExitCode {
    let mut spec = sdb::chaos::CampaignSpec::default();
    if let Some(v) = flags.get("devices").and_then(|s| s.parse().ok()) {
        spec.devices = v;
    }
    if let Some(v) = flags.get("seed").and_then(|s| s.parse().ok()) {
        spec.master_seed = v;
    }
    if let Some(v) = flags.get("intensity").and_then(|s| s.parse().ok()) {
        spec.intensity = v;
    }
    if let Some(v) = flags.get("hours").and_then(|s| s.parse::<f64>().ok()) {
        spec.horizon_s = v * 3600.0;
    }
    if let Some(v) = flags.get("load").and_then(|s| s.parse().ok()) {
        spec.load_w = v;
    }
    let threads: usize = flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get));
    let report = match sdb::chaos::run_campaign(&spec, threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let body = if flags.contains_key("json") {
        format!("{}\n", report.to_json())
    } else {
        report.render_text()
    };
    if let Some(path) = flags.get("out") {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("failed to write report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote chaos report to {path}");
    }
    emit(&body);
    if report.total_violations > 0 {
        eprintln!("{} invariant violations detected", report.total_violations);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args[1.min(args.len())..]);
    match args.first().map(String::as_str) {
        Some("packs") => {
            let mut out = String::new();
            for (name, desc) in PACKS {
                let _ = writeln!(out, "  {name:<14} {desc}");
            }
            emit(&out);
            ExitCode::SUCCESS
        }
        Some("traces") => {
            let mut out = String::new();
            for (name, desc) in TRACES {
                let _ = writeln!(out, "  {name:<16} {desc}");
            }
            emit(&out);
            ExitCode::SUCCESS
        }
        Some("sim") => cmd_sim(&flags),
        Some("charge") => cmd_charge(&flags),
        Some("status") => cmd_status(&flags),
        Some("fleet") => cmd_fleet(&flags),
        Some("analyze") => cmd_analyze(&flags),
        Some("chaos") => cmd_chaos(&flags),
        _ => usage(),
    }
}
