//! `sdb` — command-line driver for the SDB simulation stack.
//!
//! ```text
//! sdb packs                                  list built-in packs
//! sdb traces                                 list built-in traces
//! sdb sim    --pack watch --trace watch-day [--policy preserve|rbl|ccb|blend:<v>|planned|oracle] [--seed N] [--events-out <jsonl>]
//! sdb sim    --pack phone --trace-file captured.csv   (CSV: dur_s,load_w[,external_w])
//! sdb charge --pack tablet-hybrid --watts 45 [--directive <0..1>] [--target <pct>]
//! sdb status --pack phone [--soc <0..1>]     show QueryBatteryStatus + ACPI view
//! sdb fleet  --devices 10000 --threads 8 --seed 42 [--hours H] [--policy greedy|planned|oracle] [--engine scalar|soa]
//!            [--json] [--metrics-out <path>] [--events-out <jsonl>] [--trace-out <jsonl>]
//!            (trace-out also writes a Perfetto-loadable .chrome.json; --engine soa fast-forwards quiescent devices)
//! sdb policy [--seed N] [--json] [--out <path>] [--metrics-out <path>]  greedy vs planner vs oracle head-to-head over the scenario corpus
//! sdb analyze --trace <jsonl> [--json]       replay a recorded trace through the health rules
//! sdb analyze --devices 200 --seed 42 [--hours H] [--threads N] [--json]   run a fleet inline and analyze it
//! sdb chaos  --devices 200 --seed 42 [--intensity 0.7] [--hours H] [--load W] [--threads N] [--json] [--out <path>] [--metrics-out <path>]
//!            run a fault-injection campaign; exits non-zero on any invariant violation
//! sdb serve  [--addr 127.0.0.1:0] [--telemetry] [--policy greedy|planned|oracle] [--devices N] [--seed N] [--hours H] [--threads N] [--scrape-ms 250]
//!            HTTP surface: /metrics (Prometheus), /query (JSON), /profile (live phase tree), /healthz, /shutdown;
//!            --telemetry runs a fleet in the background with live counters + stored series
//! sdb profile [--scenario fleet|sim|chaos|policy] [--devices N] [--threads N] [--seed N] [--hours H] [--policy ...]
//!            [--engine scalar|soa] [--format text|counts|json|flame] [--out <path>] [--metrics-out <path>]
//!            run a scenario under the phase profiler and print the hierarchical phase tree
//!            (counts are bit-identical across thread counts; `flame` emits collapsed stacks)
//! sdb perf   [--history PERF_HISTORY.jsonl] [--micro BENCH_micro.json] [--fleet BENCH_fleet.json] [--campaign BENCH_campaign.json]
//!            [--baseline last|best] [--threshold 0.10] [--record] [--label <text>] [--inject <factor>]
//!            compare bench results against recorded history; exits non-zero on regression
//! sdb campaign [--scenarios a,b] [--chemistries a,b] [--faults a,b] [--policies a,b] [--engines scalar,soa]
//!            [--seed N] [--hours H] [--devices-per-cell N] [--threads N] [--list]
//!            [--checkpoint <path>] [--stop-after N] [--baseline <path>] [--write-baseline]
//!            [--inject-divergence <cell-key>] [--format text|json|html] [--out <path>] [--bench-out <json>]
//!            run the scenario × chemistry × fault × policy × engine matrix; byte-identical at any
//!            --threads, resumable via --checkpoint, diffed against a committed golden baseline;
//!            on divergence prints the minimized culprit cell + repro command and exits 2
//! sdb --version                              print version, git hash, and rustc used
//! ```

use sdb::battery_model::{library, BatterySpec, Chemistry};
use sdb::core::policy::{ChargeDirective, DischargeDirective, PreservePolicy};
use sdb::core::runtime::SdbRuntime;
use sdb::core::scheduler::run_trace_planned;
use sdb::core::scheduler::{run_charge_session, run_trace, SimOptions};
use sdb::emulator::{acpi, Microcontroller, PackBuilder, ProfileKind};
use sdb::fleet;
use sdb::observe::{MetricsRegistry, Observer, TraceCollector};
use sdb::policy::{HistoryForecaster, Planner, PlannerConfig};
use sdb::trace as sdbtrace;
use sdb::tsdb;
use sdb::workloads::traces::{phone_day, tablet_session, watch_day, Trace};
use sdb::workloads::Activity;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;

const PACKS: &[(&str, &str)] = &[
    (
        "watch",
        "200 mAh Li-ion + 200 mAh bendable strap (paper §5.2)",
    ),
    (
        "tablet-hybrid",
        "4 Ah high-energy + 4 Ah fast-charge (paper §5.1)",
    ),
    (
        "two-in-one",
        "2 × 4 Ah Li-ion, internal + keyboard (paper §5.3)",
    ),
    ("phone", "3 Ah high-energy + 1 Ah high-power"),
];

const TRACES: &[(&str, &str)] = &[
    (
        "watch-day",
        "24 h watch day with an hour-9 GPS run (Figure 13)",
    ),
    ("watch-day-norun", "the same day without the run"),
    (
        "phone-day",
        "24 h smartphone day (commute navigation, streaming)",
    ),
    (
        "tablet-mixed",
        "4 h tablet session mixing network and compute",
    ),
];

/// Pipe-safe print: `println!` panics on `EPIPE`, but CLI output is
/// routinely piped into `head`/`grep` — treat a closed pipe as a normal
/// early exit.
fn emit(text: &str) {
    use std::io::{ErrorKind, Write};
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if let Err(e) = lock.write_all(text.as_bytes()) {
        if e.kind() == ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("write error: {e}");
        std::process::exit(1);
    }
    let _ = lock.flush();
}

fn build_pack(name: &str, soc: f64) -> Option<Microcontroller> {
    let pack = match name {
        "watch" => PackBuilder::new()
            .battery_at(
                library::watch_li_ion().spec().clone(),
                soc,
                ProfileKind::Standard,
            )
            .battery_at(
                library::watch_bendable().spec().clone(),
                soc,
                ProfileKind::Gentle,
            )
            .build(),
        "tablet-hybrid" => PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("high-energy", Chemistry::Type2CoStandard, 4.0),
                soc,
                ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("fast-charge", Chemistry::Type3CoPower, 4.0),
                soc,
                ProfileKind::Fast,
            )
            .build(),
        "two-in-one" => PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("internal", Chemistry::Type2CoStandard, 4.0),
                soc,
                ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("external", Chemistry::Type2CoStandard, 4.0),
                soc,
                ProfileKind::Standard,
            )
            .build(),
        "phone" => PackBuilder::new()
            .battery_at(
                BatterySpec::from_chemistry("high-energy", Chemistry::Type2CoStandard, 3.0),
                soc,
                ProfileKind::Standard,
            )
            .battery_at(
                BatterySpec::from_chemistry("high-power", Chemistry::Type3CoPower, 1.0),
                soc,
                ProfileKind::Fast,
            )
            .build(),
        _ => return None,
    };
    Some(pack)
}

fn build_trace(name: &str, seed: u64) -> Option<Trace> {
    match name {
        "watch-day" => Some(watch_day(seed, Some(9.0))),
        "watch-day-norun" => Some(watch_day(seed, None)),
        "phone-day" => Some(phone_day(seed)),
        "tablet-mixed" => Some(tablet_session(
            seed,
            &[Activity::Network, Activity::Compute, Activity::Interactive],
            300.0,
            4.0 * 3600.0,
        )),
        _ => None,
    }
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            // A flag followed by another flag (or nothing) is boolean,
            // e.g. `--json`.
            match args.get(i + 1) {
                Some(next) if !next.starts_with("--") => {
                    flags.insert(key.to_owned(), next.clone());
                    i += 2;
                }
                _ => {
                    flags.insert(key.to_owned(), String::new());
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sdb packs | traces\n  sdb sim --pack <name> --trace <name> [--policy preserve|rbl|ccb|blend:<v>|planned|oracle] [--seed N] [--trace-file <csv>] [--events-out <jsonl>]\n  sdb charge --pack <name> --watts <W> [--directive <0..1>] [--target <pct>]\n  sdb status --pack <name> [--soc <0..1>]\n  sdb fleet --devices <N> [--threads <N>] [--seed <N>] [--hours <H>] [--policy greedy|planned|oracle] [--engine scalar|soa] [--json] [--out <path>] [--metrics-out <path>] [--events-out <jsonl>] [--trace-out <jsonl>]
  sdb policy [--seed <N>] [--json] [--out <path>] [--metrics-out <path>]\n  sdb analyze --trace <jsonl> [--json] [--max-findings <N>]\n  sdb analyze --devices <N> [--seed <N>] [--hours <H>] [--threads <N>] [--json]\n  sdb chaos --devices <N> [--seed <N>] [--intensity <0..1>] [--hours <H>] [--load <W>] [--threads <N>] [--json] [--out <path>] [--metrics-out <path>]\n  sdb serve [--addr <host:port>] [--telemetry] [--policy greedy|planned|oracle] [--devices <N>] [--seed <N>] [--hours <H>] [--threads <N>] [--scrape-ms <ms>]\n  sdb profile [--scenario fleet|sim|chaos|policy] [--devices <N>] [--threads <N>] [--seed <N>] [--hours <H>] [--policy ...] [--engine scalar|soa] [--format text|counts|json|flame] [--out <path>] [--metrics-out <path>]\n  sdb perf [--history <jsonl>] [--micro <json>] [--fleet <json>] [--campaign <json>] [--baseline last|best] [--threshold <frac>] [--record] [--label <text>] [--inject <factor>]\n  sdb campaign [--scenarios <a,b>] [--chemistries <a,b>] [--faults <a,b>] [--policies <a,b>] [--engines <a,b>] [--seed <N>] [--hours <H>] [--devices-per-cell <N>] [--threads <N>] [--list] [--checkpoint <path>] [--stop-after <N>] [--baseline <path>] [--write-baseline] [--inject-divergence <key>] [--format text|json|html] [--out <path>] [--bench-out <json>]\n  sdb --version"
    );
    ExitCode::FAILURE
}

/// Writes a metrics registry to `path`: `.json` gets the JSON export,
/// anything else the Prometheus text format. The `--metrics-out`
/// behavior shared by `sdb fleet`, `sdb analyze`, and `sdb chaos`.
fn write_metrics(registry: &MetricsRegistry, path: &str) -> Result<(), ()> {
    let text = if path.ends_with(".json") {
        registry.to_json()
    } else {
        registry.to_prometheus_text()
    };
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("failed to write metrics to {path}: {e}");
        return Err(());
    }
    eprintln!("wrote metrics to {path}");
    Ok(())
}

/// Parses `--engine scalar|soa` (default scalar). Shared by `sdb fleet`
/// and `sdb profile --scenario fleet`.
fn parse_engine(flags: &HashMap<String, String>) -> Result<fleet::EngineKind, ExitCode> {
    match flags.get("engine") {
        None => Ok(fleet::EngineKind::Scalar),
        Some(s) => fleet::EngineKind::parse(s).map_err(|e| {
            eprintln!("{e}");
            ExitCode::FAILURE
        }),
    }
}

/// Build identity baked in at compile time by `build.rs` (each field
/// falls back to `unknown` when the probe failed at build time).
fn build_info() -> tsdb::BuildInfo {
    tsdb::BuildInfo {
        version: env!("CARGO_PKG_VERSION").to_owned(),
        git_hash: env!("SDB_GIT_HASH").to_owned(),
        rustc: env!("SDB_RUSTC_VERSION").to_owned(),
    }
}

/// Derives the Chrome-export path from a JSONL trace path:
/// `fleet.jsonl` → `fleet.chrome.json`, anything else gets `.chrome.json`
/// appended.
fn chrome_path(jsonl_path: &str) -> String {
    match jsonl_path.strip_suffix(".jsonl") {
        Some(stem) => format!("{stem}.chrome.json"),
        None => format!("{jsonl_path}.chrome.json"),
    }
}

fn cmd_sim(flags: &HashMap<String, String>) -> ExitCode {
    let pack_name = flags.get("pack").map(String::as_str).unwrap_or("watch");
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(13);
    let Some(mut micro) = build_pack(pack_name, 1.0) else {
        eprintln!("unknown pack `{pack_name}` (try `sdb packs`)");
        return ExitCode::FAILURE;
    };
    let (trace, trace_name) = if let Some(path) = flags.get("trace-file") {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Trace::from_csv(&text))
        {
            Ok(t) => (t, path.clone()),
            Err(e) => {
                eprintln!("cannot load trace file `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let trace_name = flags
            .get("trace")
            .map(String::as_str)
            .unwrap_or("watch-day");
        match build_trace(trace_name, seed) {
            Some(t) => (t, trace_name.to_owned()),
            None => {
                eprintln!("unknown trace `{trace_name}` (try `sdb traces`)");
                return ExitCode::FAILURE;
            }
        }
    };
    let mut runtime = SdbRuntime::new(micro.battery_count());
    // With --events-out, attach an observer with a trace collector so the
    // run's event stream (device 0) can be dumped as JSONL afterwards.
    let collector = flags.get("events-out").map(|_| {
        let obs = Observer::new();
        let shared = TraceCollector::shared();
        obs.add_sink(Box::new(shared.clone()));
        micro.set_observer(obs.clone());
        runtime.set_observer(obs);
        shared
    });
    let mut planner: Option<Planner> =
        match flags.get("policy").map(String::as_str).unwrap_or("rbl") {
            "preserve" => {
                runtime.set_preserve(Some(PreservePolicy::new(0, 1, 0.3)));
                None
            }
            "rbl" => {
                runtime.set_discharge_directive(DischargeDirective::new(1.0));
                None
            }
            "ccb" => {
                runtime.set_discharge_directive(DischargeDirective::new(0.0));
                None
            }
            "planned" => {
                // Warm-start the forecaster from "previous days": the same
                // named generator under derived seeds. A recorded CSV trace
                // has no generator, so it serves as its own history.
                let history: Vec<Trace> = if flags.contains_key("trace-file") {
                    vec![trace.clone()]
                } else {
                    (1..=7u64)
                        .map(|k| {
                            build_trace(&trace_name, seed.wrapping_add(k.wrapping_mul(0x9E37_79B9)))
                                .expect("trace name was validated above")
                        })
                        .collect()
                };
                let cfg = PlannerConfig {
                    horizon_s: 8.0 * 3600.0,
                    ..PlannerConfig::default()
                };
                Some(Planner::new(
                    cfg,
                    Box::new(HistoryForecaster::from_history(&history, 0.3)),
                ))
            }
            "oracle" => Some(Planner::oracle(
                PlannerConfig {
                    candidates: 17,
                    ..PlannerConfig::default()
                },
                std::sync::Arc::new(trace.clone()),
            )),
            other => {
                if let Some(v) = other
                    .strip_prefix("blend:")
                    .and_then(|v| v.parse::<f64>().ok())
                {
                    runtime.set_discharge_directive(DischargeDirective::new(v));
                } else {
                    eprintln!("unknown policy `{other}`");
                    return ExitCode::FAILURE;
                }
                None
            }
        };
    let result = match planner.as_mut() {
        Some(p) => run_trace_planned(&mut micro, &mut runtime, &trace, &SimOptions::default(), p),
        None => run_trace(&mut micro, &mut runtime, &trace, &SimOptions::default()),
    };
    if let (Some(collector), Some(path)) = (collector, flags.get("events-out")) {
        let events = collector.lock().expect("collector lock").drain();
        let jsonl = sdbtrace::to_jsonl(&events);
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("failed to write events to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {} events to {path}", events.len());
    }
    let mut out = String::new();
    let _ = writeln!(out, "pack:          {pack_name}");
    let _ = writeln!(
        out,
        "trace:         {trace_name} ({:.1} h, mean {:.2} W)",
        trace.duration_s() / 3600.0,
        trace.mean_load_w()
    );
    let _ = writeln!(
        out,
        "battery life:  {:.2} h",
        result.battery_life_s() / 3600.0
    );
    let _ = writeln!(out, "delivered:     {:.1} kJ", result.supplied_j / 1e3);
    let _ = writeln!(
        out,
        "losses:        {:.1} J ({:.2}% of delivered)",
        result.total_loss_j(),
        result.total_loss_j() / result.supplied_j * 100.0
    );
    let _ = writeln!(out, "unserved:      {:.1} J", result.unmet_j);
    if let Some(p) = &planner {
        let _ = writeln!(
            out,
            "plans:         {} committed, final directive {:.3}, forecast mae {:.3} W",
            p.replans(),
            p.current_directive(),
            p.forecast_mae_w()
        );
    }
    for (i, (t, cell)) in result.battery_empty_s.iter().zip(micro.cells()).enumerate() {
        match t {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "battery {i} ({}): empty at {:.1} h",
                    cell.spec().name,
                    s / 3600.0
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "battery {i} ({}): {:.1}% left",
                    cell.spec().name,
                    cell.soc() * 100.0
                );
            }
        }
    }
    emit(&out);
    ExitCode::SUCCESS
}

fn cmd_charge(flags: &HashMap<String, String>) -> ExitCode {
    let pack_name = flags
        .get("pack")
        .map(String::as_str)
        .unwrap_or("tablet-hybrid");
    let watts: f64 = flags
        .get("watts")
        .and_then(|s| s.parse().ok())
        .unwrap_or(45.0);
    let directive: f64 = flags
        .get("directive")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let target: f64 = flags
        .get("target")
        .and_then(|s| s.parse().ok())
        .unwrap_or(80.0);
    let Some(mut micro) = build_pack(pack_name, 0.0) else {
        eprintln!("unknown pack `{pack_name}` (try `sdb packs`)");
        return ExitCode::FAILURE;
    };
    let mut runtime = SdbRuntime::new(micro.battery_count());
    runtime.set_charge_directive(ChargeDirective::new(directive));
    runtime.set_update_period(30.0);
    let targets: Vec<f64> = (1..=((target / 5.0) as usize))
        .map(|k| k as f64 * 0.05)
        .collect();
    let times = run_charge_session(
        &mut micro,
        &mut runtime,
        watts,
        &targets,
        12.0 * 3600.0,
        15.0,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pack: {pack_name}, supply: {watts} W, charge directive: {directive}"
    );
    let _ = writeln!(out, "{:>9}  {:>10}", "% charged", "minutes");
    for (t, time) in targets.iter().zip(&times) {
        match time {
            Some(s) => {
                let _ = writeln!(out, "{:>9.0}  {:>10.1}", t * 100.0, s / 60.0);
            }
            None => {
                let _ = writeln!(out, "{:>9.0}  {:>10}", t * 100.0, "-");
            }
        }
    }
    emit(&out);
    ExitCode::SUCCESS
}

fn cmd_status(flags: &HashMap<String, String>) -> ExitCode {
    let pack_name = flags.get("pack").map(String::as_str).unwrap_or("phone");
    let soc: f64 = flags.get("soc").and_then(|s| s.parse().ok()).unwrap_or(0.8);
    let Some(micro) = build_pack(pack_name, soc.clamp(0.0, 1.0)) else {
        eprintln!("unknown pack `{pack_name}` (try `sdb packs`)");
        return ExitCode::FAILURE;
    };
    let mut out = String::from("QueryBatteryStatus():\n");
    for (i, s) in micro.query_battery_status().iter().enumerate() {
        let _ = writeln!(
            out,
            "  battery {i} ({}): soc {:5.1}%  {:.3} V  {} cycles  {:.2} Ah left{}",
            micro.cells()[i].spec().name,
            s.soc * 100.0,
            s.terminal_v,
            s.cycle_count,
            s.remaining_ah,
            if s.present { "" } else { "  [absent]" },
        );
    }
    let info = acpi::report(&micro);
    let _ = writeln!(out, "\nLegacy ACPI view (single logical battery):");
    let _ = writeln!(
        out,
        "  design capacity:    {:.0} mWh",
        info.design_capacity_mwh
    );
    let _ = writeln!(
        out,
        "  last full capacity: {:.0} mWh",
        info.last_full_capacity_mwh
    );
    let _ = writeln!(
        out,
        "  remaining:          {:.0} mWh ({:.1}%)",
        info.remaining_capacity_mwh, info.percentage
    );
    let _ = writeln!(out, "  voltage:            {:.0} mV", info.voltage_mv);
    let _ = writeln!(out, "  state:              {:?}", info.state);
    emit(&out);
    ExitCode::SUCCESS
}

/// Runs a deterministic multi-device fleet simulation and prints the
/// merged report (human-readable by default, canonical JSON with
/// `--json`). The report is a pure function of `--devices`/`--seed`/
/// `--hours`; `--threads` only changes wall-clock time.
fn cmd_fleet(flags: &HashMap<String, String>) -> ExitCode {
    let devices: usize = flags
        .get("devices")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let threads: usize = flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let hours: f64 = flags
        .get("hours")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4.0);

    let mut spec = fleet::FleetSpec::default_population(devices, seed).with_hours(hours);
    match flags.get("policy").map(String::as_str) {
        None | Some("greedy") => {}
        Some("planned") => {
            spec = spec.with_policy(fleet::PolicySpec::Planned {
                horizon_s: 8.0 * 3600.0,
                replan_s: 1800.0,
            });
        }
        Some("oracle") => {
            spec = spec.with_policy(fleet::PolicySpec::Oracle);
        }
        Some(other) => {
            eprintln!("unknown fleet policy `{other}` (expected greedy, planned, or oracle)");
            return ExitCode::FAILURE;
        }
    }
    let engine = match parse_engine(flags) {
        Ok(e) => e,
        Err(code) => return code,
    };
    let capture = flags.contains_key("trace-out") || flags.contains_key("events-out");
    if capture && engine == fleet::EngineKind::Soa {
        eprintln!("--events-out/--trace-out require --engine scalar (fast-forwarded ticks emit no step events)");
        return ExitCode::FAILURE;
    }
    let (report, stats, events) =
        match fleet::run_fleet_captured_with_engine(&spec, threads, capture, engine) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fleet run failed: {e}");
                return ExitCode::FAILURE;
            }
        };

    if let Some(events) = &events {
        let jsonl = sdbtrace::to_jsonl(events);
        if let Some(path) = flags.get("events-out") {
            if let Err(e) = std::fs::write(path, &jsonl) {
                eprintln!("failed to write events to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} events to {path}", events.len());
        }
        // --trace-out writes the replayable JSONL plus a Perfetto-loadable
        // Chrome trace_event export next to it.
        if let Some(path) = flags.get("trace-out") {
            if let Err(e) = std::fs::write(path, &jsonl) {
                eprintln!("failed to write trace to {path}: {e}");
                return ExitCode::FAILURE;
            }
            let chrome = chrome_path(path);
            if let Err(e) = std::fs::write(&chrome, sdbtrace::to_chrome(events)) {
                eprintln!("failed to write chrome trace to {chrome}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} events to {path} (+ {chrome})", events.len());
        }
    }

    if let Some(path) = flags.get("metrics-out") {
        if write_metrics(&stats.registry, path).is_err() {
            return ExitCode::FAILURE;
        }
    }

    let body = if flags.contains_key("json") {
        let mut s = report.to_json();
        s.push('\n');
        s
    } else {
        format!(
            "{}threads: {}  engine: {}  wall: {:.2} s  throughput: {:.0} devices/sec\n",
            report.render_text(),
            stats.threads,
            engine.name(),
            stats.wall_s,
            stats.devices_per_sec
        )
    };
    if let Some(path) = flags.get("out") {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("failed to write report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote report to {path}");
    } else {
        emit(&body);
    }
    ExitCode::SUCCESS
}

/// Replays a recorded JSONL trace — or runs a fleet inline — through the
/// default health-rule set and prints the findings. Inline mode also
/// cross-checks the streaming quantile sketches against the exact report
/// percentiles.
fn cmd_analyze(flags: &HashMap<String, String>) -> ExitCode {
    let max_findings: usize = flags
        .get("max-findings")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let json = flags.contains_key("json");

    if let Some(path) = flags.get("trace") {
        // Replay mode: analyze a trace file recorded by `--trace-out` /
        // `--events-out`.
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read trace `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        let analysis = match sdbtrace::analyze_jsonl(&text, sdbtrace::default_rules()) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("cannot parse trace `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        // --metrics-out parity with fleet: replay mode has no live
        // registry, so synthesize per-kind event counters from the trace.
        if let Some(out) = flags.get("metrics-out") {
            let events = match sdbtrace::from_jsonl(&text) {
                Ok(ev) => ev,
                Err(e) => {
                    eprintln!("cannot parse trace `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let registry = MetricsRegistry::new();
            for e in &events {
                registry
                    .counter(
                        "sdb_trace_events_total",
                        &[("kind", sdbtrace::event_kind(&e.event))],
                    )
                    .inc();
            }
            if write_metrics(&registry, out).is_err() {
                return ExitCode::FAILURE;
            }
        }
        let body = if json {
            let mut s = analysis.to_json();
            s.push('\n');
            s
        } else {
            analysis.render_text(max_findings)
        };
        emit(&body);
        return ExitCode::SUCCESS;
    }

    // Inline mode: run a fleet with event capture and analyze it in-process.
    let devices: usize = flags
        .get("devices")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let threads: usize = flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let hours: f64 = flags
        .get("hours")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let spec = fleet::FleetSpec::default_population(devices, seed).with_hours(hours);
    let (report, stats, events) = match fleet::run_fleet_captured(&spec, threads, true) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = events.expect("capture was requested");
    let analysis = sdbtrace::analyze(&events, sdbtrace::default_rules());
    let deltas = stats.sketches.deltas(&report);
    if let Some(path) = flags.get("metrics-out") {
        if write_metrics(&stats.registry, path).is_err() {
            return ExitCode::FAILURE;
        }
    }

    let body = if json {
        format!(
            "{{\"trace\":{},\"sketch_deltas\":{}}}\n",
            analysis.to_json(),
            fleet::render_deltas_json(&deltas)
        )
    } else {
        format!(
            "{}sketch vs exact percentiles (alpha = {}):\n{}",
            analysis.render_text(max_findings),
            fleet::FLEET_SKETCH_ALPHA,
            fleet::render_deltas_text(&deltas)
        )
    };
    emit(&body);
    ExitCode::SUCCESS
}

fn cmd_chaos(flags: &HashMap<String, String>) -> ExitCode {
    let mut spec = sdb::chaos::CampaignSpec::default();
    if let Some(v) = flags.get("devices").and_then(|s| s.parse().ok()) {
        spec.devices = v;
    }
    if let Some(v) = flags.get("seed").and_then(|s| s.parse().ok()) {
        spec.master_seed = v;
    }
    if let Some(v) = flags.get("intensity").and_then(|s| s.parse().ok()) {
        spec.intensity = v;
    }
    if let Some(v) = flags.get("hours").and_then(|s| s.parse::<f64>().ok()) {
        spec.horizon_s = v * 3600.0;
    }
    if let Some(v) = flags.get("load").and_then(|s| s.parse().ok()) {
        spec.load_w = v;
    }
    let threads: usize = flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get));
    // --metrics-out parity with fleet: run observed so every device's
    // counters land in one scrapeable registry.
    let metrics_registry = flags.get("metrics-out").map(|_| MetricsRegistry::new());
    let campaign = match &metrics_registry {
        Some(reg) => sdb::chaos::run_campaign_observed(&spec, threads, reg),
        None => sdb::chaos::run_campaign(&spec, threads),
    };
    let report = match campaign {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let (Some(reg), Some(path)) = (&metrics_registry, flags.get("metrics-out")) {
        if write_metrics(reg, path).is_err() {
            return ExitCode::FAILURE;
        }
    }
    let body = if flags.contains_key("json") {
        format!("{}\n", report.to_json())
    } else {
        report.render_text()
    };
    if let Some(path) = flags.get("out") {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("failed to write report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote chaos report to {path}");
    }
    emit(&body);
    if report.total_violations > 0 {
        eprintln!("{} invariant violations detected", report.total_violations);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Serves `/metrics`, `/query`, `/healthz`, and `/shutdown` over the
/// zero-dependency HTTP listener. With `--telemetry`, a fleet simulation
/// runs in the background against the *live* registry (its counters are
/// scrapeable mid-run) and its captured event stream is ingested into
/// the compressed telemetry store for `/query` when it completes; a
/// background scraper also records registry snapshots longitudinally.
/// Blocks until `/shutdown` is hit.
fn cmd_serve(flags: &HashMap<String, String>) -> ExitCode {
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let scrape_ms: u64 = flags
        .get("scrape-ms")
        .and_then(|s| s.parse().ok())
        .unwrap_or(250);
    let registry = MetricsRegistry::new();
    let store = tsdb::TsdbStore::default();
    // The profiler stays on for the whole serve session so `/profile`
    // serves a live tree and the scraper exports `sdb_prof_*` gauges.
    sdb::prof::enable();
    let opts = tsdb::ServeOptions {
        addr,
        scrape_every: Some(std::time::Duration::from_millis(scrape_ms.max(10))),
        build: build_info(),
    };
    let handle = match tsdb::serve(&opts, registry.clone(), store.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    emit(&format!("listening on http://{}\n", handle.addr()));

    let fleet_thread = flags.contains_key("telemetry").then(|| {
        let devices: usize = flags
            .get("devices")
            .and_then(|s| s.parse().ok())
            .unwrap_or(200);
        let threads: usize = flags
            .get("threads")
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
        let hours: f64 = flags
            .get("hours")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0);
        let registry = registry.clone();
        let store = store.clone();
        // `--policy planned|oracle` runs the telemetry fleet under the
        // lookahead planner so `/metrics` carries the
        // `sdb_policy_forecast_mae` gauge and re-plan counter.
        let policy = flags.get("policy").cloned();
        std::thread::spawn(move || {
            let mut spec = fleet::FleetSpec::default_population(devices, seed).with_hours(hours);
            match policy.as_deref() {
                None | Some("greedy") => {}
                Some("planned") => {
                    spec = spec.with_policy(fleet::PolicySpec::Planned {
                        horizon_s: 8.0 * 3600.0,
                        replan_s: 1800.0,
                    });
                }
                Some("oracle") => {
                    spec = spec.with_policy(fleet::PolicySpec::Oracle);
                }
                Some(other) => {
                    eprintln!("unknown fleet policy `{other}`; running greedy");
                }
            }
            match fleet::run_fleet_live(&spec, threads, true, &registry) {
                Ok((_, _, events)) => {
                    let events = events.expect("capture was requested");
                    let n = tsdb::ingest_events(&store, &events);
                    let st = store.stats();
                    eprintln!(
                        "fleet complete: {n} events ingested, {} series, {:.1}x compression",
                        st.series,
                        st.compression_ratio()
                    );
                }
                Err(e) => eprintln!("telemetry fleet run failed: {e}"),
            }
        })
    });

    handle.wait();
    if let Some(t) = fleet_thread {
        let _ = t.join();
    }
    eprintln!("listener stopped");
    ExitCode::SUCCESS
}

/// Compares fresh bench results against the recorded history and exits
/// non-zero if any metric's cost grew past the threshold. `--record`
/// appends the current run to the history file (the committed
/// longitudinal record); `--inject` multiplies every cost metric before
/// comparing — the self-test hook CI uses to prove the gate trips.
fn cmd_perf(flags: &HashMap<String, String>) -> ExitCode {
    use sdb::tsdb::perf;
    let history_path = flags
        .get("history")
        .map(String::as_str)
        .unwrap_or("PERF_HISTORY.jsonl");
    let mut metrics: Vec<perf::PerfMetric> = Vec::new();
    for (flag, default) in [
        ("micro", "BENCH_micro.json"),
        ("fleet", "BENCH_fleet.json"),
        ("campaign", "BENCH_campaign.json"),
    ] {
        let path = flags.get(flag).map(String::as_str).unwrap_or(default);
        match std::fs::read_to_string(path) {
            Ok(text) => match perf::ingest(&text) {
                Ok(m) => metrics.extend(m),
                Err(e) => {
                    eprintln!("cannot parse bench file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(_) if !flags.contains_key(flag) => {
                eprintln!("note: {path} not found, skipping");
            }
            Err(e) => {
                eprintln!("cannot read bench file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if metrics.is_empty() {
        eprintln!("no bench results found (run the sdb-bench benches first)");
        return ExitCode::FAILURE;
    }
    if let Some(factor) = flags.get("inject").and_then(|s| s.parse::<f64>().ok()) {
        for m in &mut metrics {
            match m.direction {
                perf::Direction::LowerIsBetter => m.value *= factor,
                perf::Direction::HigherIsBetter => m.value /= factor,
            }
        }
        eprintln!("injected a synthetic {factor}x cost multiplier for self-test");
    }

    let history_text = std::fs::read_to_string(history_path).unwrap_or_default();
    let history = match perf::parse_history(&history_text) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot parse {history_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match flags.get("baseline").map(String::as_str) {
        Some("best") => perf::Baseline::Best,
        _ => perf::Baseline::Last,
    };
    let threshold: f64 = flags
        .get("threshold")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.10);
    let regressions = perf::check(&history, &metrics, baseline, threshold);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "perf gate: {} metrics vs {} history entries (threshold {:.0}%)",
        metrics.len(),
        history.len(),
        threshold * 100.0
    );
    for r in &regressions {
        let _ = writeln!(
            out,
            "  REGRESSION {:<32} baseline {:>12.2}  current {:>12.2}  ({:+.1}% cost)",
            r.key,
            r.baseline,
            r.current,
            r.worse_by * 100.0
        );
    }
    if regressions.is_empty() {
        let _ = writeln!(out, "  ok: no metric regressed past the threshold");
    }
    emit(&out);

    if flags.contains_key("record") {
        // Wall-clock stamp, quarantined: labels the history line for
        // humans, never enters a comparison.
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let entry = perf::HistoryEntry {
            recorded_at_unix_s: stamp,
            label: flags
                .get("label")
                .cloned()
                .unwrap_or_else(|| "local".to_owned()),
            metrics: metrics.clone(),
        };
        let mut text = history_text;
        if !text.is_empty() && !text.ends_with('\n') {
            text.push('\n');
        }
        text.push_str(&entry.to_jsonl());
        text.push('\n');
        if let Err(e) = std::fs::write(history_path, text) {
            eprintln!("failed to write {history_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("recorded entry {} in {history_path}", history.len() + 1);
    }

    if regressions.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_policy(flags: &HashMap<String, String>) -> ExitCode {
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let h2h = sdb::policy::run_head_to_head(seed);
    // --metrics-out parity with fleet/chaos/analyze: synthesize a
    // registry from the head-to-head outcomes so CI can scrape the
    // corpus results like any other run.
    if let Some(path) = flags.get("metrics-out") {
        let registry = MetricsRegistry::new();
        registry
            .counter("sdb_policy_planner_wins_total", &[])
            .add(h2h.planner_wins() as u64);
        registry
            .counter("sdb_policy_oracle_bounds_total", &[])
            .add(h2h.oracle_bounds() as u64);
        registry
            .counter("sdb_policy_scenarios_total", &[])
            .add((h2h.rows.len() / 3) as u64);
        for row in &h2h.rows {
            let labels = [("scenario", row.scenario), ("policy", row.policy.name())];
            registry.gauge("sdb_policy_life_s", &labels).set(row.life_s);
            registry
                .gauge("sdb_policy_unmet_j", &labels)
                .set(row.unmet_j);
            registry
                .gauge("sdb_policy_forecast_mae_w", &labels)
                .set(row.forecast_mae_w);
            registry
                .counter("sdb_policy_pushes_total", &labels)
                .add(row.pushes);
            registry
                .counter("sdb_policy_replans_total", &labels)
                .add(row.replans);
        }
        if write_metrics(&registry, path).is_err() {
            return ExitCode::FAILURE;
        }
    }
    let text = if flags.contains_key("json") {
        let mut json = h2h.to_json();
        json.push('\n');
        json
    } else {
        h2h.render_text()
    };
    if let Some(path) = flags.get("out") {
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("failed to write report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote policy report to {path}");
    } else {
        emit(&text);
    }
    ExitCode::SUCCESS
}

/// Parses a comma-separated axis flag, falling back to `default`.
fn axis_list(flags: &HashMap<String, String>, key: &str, default: &[String]) -> Vec<String> {
    match flags.get(key) {
        Some(s) => s
            .split(',')
            .map(|v| v.trim().to_owned())
            .filter(|v| !v.is_empty())
            .collect(),
        None => default.to_vec(),
    }
}

/// Runs (or resumes) a campaign: the scenario × chemistry × fault ×
/// policy × engine matrix, optionally checkpointed and compared against a
/// committed golden baseline. Exit codes: 0 clean, 1 error, 2 baseline
/// divergence (after printing the minimized culprit and its repro
/// command), 3 interrupted by `--stop-after` (resume with the same
/// `--checkpoint`).
fn cmd_campaign(flags: &HashMap<String, String>) -> ExitCode {
    use sdb::campaign::{self, CampaignOptions, CampaignRun, CampaignSpec};

    let default = CampaignSpec::default();
    let spec = CampaignSpec {
        scenarios: axis_list(flags, "scenarios", &default.scenarios),
        chemistries: axis_list(flags, "chemistries", &default.chemistries),
        faults: axis_list(flags, "faults", &default.faults),
        policies: axis_list(flags, "policies", &default.policies),
        engines: axis_list(flags, "engines", &default.engines),
        master_seed: flags
            .get("seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(default.master_seed),
        hours: flags
            .get("hours")
            .and_then(|s| s.parse().ok())
            .unwrap_or(default.hours),
        devices_per_cell: flags
            .get("devices-per-cell")
            .and_then(|s| s.parse().ok())
            .unwrap_or(default.devices_per_cell),
    };
    let cells = match spec.cells() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if flags.contains_key("list") {
        let mut out = format!(
            "campaign matrix: {} cells x {} devices (seed {}, {} h horizon)\n",
            cells.len(),
            spec.devices_per_cell,
            spec.master_seed,
            spec.hours
        );
        for c in &cells {
            let _ = writeln!(out, "  [{:>3}] {}", c.index, c.key());
        }
        emit(&out);
        return ExitCode::SUCCESS;
    }

    let stop_after = flags
        .get("stop-after")
        .and_then(|s| s.parse::<usize>().ok());
    let checkpoint = flags.get("checkpoint").map(std::path::PathBuf::from);
    if stop_after.is_some() && checkpoint.is_none() {
        eprintln!(
            "--stop-after requires --checkpoint: an interrupted run without a \
             checkpoint saves nothing"
        );
        return ExitCode::FAILURE;
    }
    let threads: usize = flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let opts = CampaignOptions {
        threads,
        checkpoint,
        stop_after,
    };

    let t0 = std::time::Instant::now();
    let run = match campaign::run_campaign(&spec, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let wall_s = t0.elapsed().as_secs_f64();

    let report = match run {
        CampaignRun::Complete(r) => *r,
        CampaignRun::Interrupted { completed, total } => {
            eprintln!(
                "campaign interrupted: {completed}/{total} units checkpointed; \
                 re-run with the same --checkpoint to resume"
            );
            return ExitCode::from(3);
        }
    };

    if let Some(path) = flags.get("bench-out") {
        let devices = cells.len() * spec.devices_per_cell;
        let json = format!(
            "{{\"bench\":\"campaign\",\"cells\":{},\"devices\":{},\"threads\":{},\
             \"wall_s\":{:.6},\"cells_per_sec\":{:.6},\"devices_per_sec\":{:.6},\
             \"host_cpus\":{}}}\n",
            cells.len(),
            devices,
            threads,
            wall_s,
            cells.len() as f64 / wall_s.max(1e-9),
            devices as f64 / wall_s.max(1e-9),
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write bench results to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote campaign bench results to {path}");
    }

    let format = flags.get("format").map(String::as_str).unwrap_or("text");
    let body = match format {
        "text" => report.render_text(),
        "json" => {
            let mut j = report.to_json();
            j.push('\n');
            j
        }
        "html" => report.render_html(),
        other => {
            eprintln!("unknown --format `{other}` (want text|json|html)");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = flags.get("out") {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("failed to write report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote campaign report to {path}");
    } else {
        emit(&body);
    }

    let Some(baseline_path) = flags.get("baseline") else {
        if flags.contains_key("write-baseline") || flags.contains_key("inject-divergence") {
            eprintln!("--write-baseline / --inject-divergence require --baseline <path>");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    };

    if flags.contains_key("write-baseline") {
        let text = campaign::Baseline::from_report(&report).render();
        if let Err(e) = std::fs::write(baseline_path, text) {
            eprintln!("failed to write baseline to {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote golden baseline ({} cells) to {baseline_path}",
            report.cells.len()
        );
        return ExitCode::SUCCESS;
    }

    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut baseline = match campaign::Baseline::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot parse baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(key) = flags.get("inject-divergence") {
        if let Err(e) = baseline.inject_divergence(key) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        eprintln!("injected a synthetic divergence into baseline cell {key} for self-test");
    }
    let cmp = match campaign::compare(&report, &baseline) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "baseline {baseline_path}: {} cells checked, {} new, {} divergent",
        cmp.checked,
        cmp.new_cells.len(),
        cmp.divergences.len()
    );
    for d in &cmp.divergences {
        let _ = writeln!(
            out,
            "  DIVERGED {:<44} expected {:016x} observed {:016x} ({} device{})",
            d.key,
            d.expected,
            d.actual,
            d.devices.len(),
            if d.devices.len() == 1 { "" } else { "s" }
        );
    }
    if cmp.divergences.is_empty() {
        emit(&out);
        return ExitCode::SUCCESS;
    }
    if let Some(culprit) = campaign::minimize(&spec, &report, &cmp.divergences, baseline_path) {
        out.push_str(&culprit.render_text());
    }
    emit(&out);
    ExitCode::from(2)
}

/// Runs one scenario under the phase profiler and renders the
/// hierarchical phase tree. Call counts (and the tree shape) are
/// deterministic — bit-identical for any `--threads` — while ns timings
/// are sampled wall-clock facts quarantined in a separate section.
/// `--format counts` prints only the deterministic section (CI compares
/// it byte-for-byte across thread counts); `--format flame` emits
/// collapsed stacks valued by deterministic call counts.
fn cmd_profile(flags: &HashMap<String, String>) -> ExitCode {
    let scenario = flags.get("scenario").map(String::as_str).unwrap_or("fleet");
    let devices: usize = flags
        .get("devices")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let threads: usize = flags
        .get("threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let hours: f64 = flags
        .get("hours")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4.0);

    sdb::prof::reset();
    sdb::prof::enable();
    match scenario {
        "fleet" => {
            let mut spec = fleet::FleetSpec::default_population(devices, seed).with_hours(hours);
            match flags.get("policy").map(String::as_str) {
                None | Some("greedy") => {}
                Some("planned") => {
                    spec = spec.with_policy(fleet::PolicySpec::Planned {
                        horizon_s: 8.0 * 3600.0,
                        replan_s: 1800.0,
                    });
                }
                Some("oracle") => {
                    spec = spec.with_policy(fleet::PolicySpec::Oracle);
                }
                Some(other) => {
                    eprintln!(
                        "unknown fleet policy `{other}` (expected greedy, planned, or oracle)"
                    );
                    return ExitCode::FAILURE;
                }
            }
            let engine = match parse_engine(flags) {
                Ok(e) => e,
                Err(code) => return code,
            };
            match fleet::run_fleet_with_engine(&spec, threads, engine) {
                Ok((report, stats)) => eprintln!(
                    "profiled fleet: {} devices, {} threads, {} engine, {:.2} s wall",
                    report.devices,
                    stats.threads,
                    engine.name(),
                    stats.wall_s
                ),
                Err(e) => {
                    eprintln!("fleet run failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "sim" => {
            let pack_name = flags.get("pack").map(String::as_str).unwrap_or("watch");
            let Some(mut micro) = build_pack(pack_name, 1.0) else {
                eprintln!("unknown pack `{pack_name}` (try `sdb packs`)");
                return ExitCode::FAILURE;
            };
            let trace_name = flags
                .get("trace")
                .map(String::as_str)
                .unwrap_or("watch-day");
            let Some(trace) = build_trace(trace_name, seed) else {
                eprintln!("unknown trace `{trace_name}` (try `sdb traces`)");
                return ExitCode::FAILURE;
            };
            let mut runtime = SdbRuntime::new(micro.battery_count());
            runtime.set_discharge_directive(DischargeDirective::new(1.0));
            let result = run_trace(&mut micro, &mut runtime, &trace, &SimOptions::default());
            eprintln!(
                "profiled sim: {pack_name} x {trace_name}, {:.1} h simulated",
                result.simulated_s / 3600.0
            );
        }
        "chaos" => {
            let spec = sdb::chaos::CampaignSpec {
                devices,
                master_seed: seed,
                horizon_s: hours * 3600.0,
                ..Default::default()
            };
            match sdb::chaos::run_campaign(&spec, threads) {
                Ok(report) => eprintln!(
                    "profiled chaos: {} devices, {} violations",
                    report.devices, report.total_violations
                ),
                Err(e) => {
                    eprintln!("chaos campaign failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "policy" => {
            let h2h = sdb::policy::run_head_to_head(seed);
            eprintln!(
                "profiled policy corpus: {} runs, planner wins {}",
                h2h.rows.len(),
                h2h.planner_wins()
            );
        }
        other => {
            eprintln!("unknown scenario `{other}` (expected fleet, sim, chaos, or policy)");
            return ExitCode::FAILURE;
        }
    }
    // Scenario runners flush their own worker threads; this picks up
    // whatever the main thread recorded (e.g. the whole sim scenario).
    sdb::prof::flush_thread();
    sdb::prof::disable();
    let snap = sdb::prof::snapshot();

    if let Some(path) = flags.get("metrics-out") {
        let registry = MetricsRegistry::new();
        sdb::prof::export_gauges(&registry);
        if write_metrics(&registry, path).is_err() {
            return ExitCode::FAILURE;
        }
    }

    let body = match flags.get("format").map(String::as_str) {
        None | Some("text") => snap.render_text(),
        Some("counts") => snap.render_counts(),
        Some("json") => {
            let mut s = snap.to_json();
            s.push('\n');
            s
        }
        Some("flame") => snap.render_flame(),
        Some(other) => {
            eprintln!("unknown format `{other}` (expected text, counts, json, or flame)");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = flags.get("out") {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("failed to write profile to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote profile to {path}");
    } else {
        emit(&body);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(
        args.first().map(String::as_str),
        Some("--version" | "-V" | "version")
    ) {
        let b = build_info();
        emit(&format!(
            "sdb {} ({}; {})\n",
            b.version, b.git_hash, b.rustc
        ));
        return ExitCode::SUCCESS;
    }
    let flags = parse_flags(&args[1.min(args.len())..]);
    match args.first().map(String::as_str) {
        Some("packs") => {
            let mut out = String::new();
            for (name, desc) in PACKS {
                let _ = writeln!(out, "  {name:<14} {desc}");
            }
            emit(&out);
            ExitCode::SUCCESS
        }
        Some("traces") => {
            let mut out = String::new();
            for (name, desc) in TRACES {
                let _ = writeln!(out, "  {name:<16} {desc}");
            }
            emit(&out);
            ExitCode::SUCCESS
        }
        Some("sim") => cmd_sim(&flags),
        Some("charge") => cmd_charge(&flags),
        Some("status") => cmd_status(&flags),
        Some("fleet") => cmd_fleet(&flags),
        Some("analyze") => cmd_analyze(&flags),
        Some("chaos") => cmd_chaos(&flags),
        Some("serve") => cmd_serve(&flags),
        Some("profile") => cmd_profile(&flags),
        Some("perf") => cmd_perf(&flags),
        Some("policy") => cmd_policy(&flags),
        Some("campaign") => cmd_campaign(&flags),
        _ => usage(),
    }
}
