//! # Software Defined Batteries (SDB)
//!
//! A full reproduction of *Software Defined Batteries* (Badam et al.,
//! SOSP 2015) as a Rust library: heterogeneous battery packs whose
//! charging and discharging are scheduled by an OS-level runtime through
//! four hardware APIs.
//!
//! The workspace is layered bottom-up; this facade re-exports every layer:
//!
//! * [`battery_model`] — electrochemical substrate: Thevenin cells,
//!   chemistry library, aging, thermal models (paper §2, §4.3).
//! * [`power_electronics`] — regulators, switching circuits, measurement
//!   chains, and a transient buck simulator (paper §3.2).
//! * [`fuel_gauge`] — coulomb counting and SoC estimation (paper §2.2).
//! * [`emulator`] — the SDB "hardware": microcontroller, profiles, pack,
//!   lossy OS link (paper §4).
//! * [`workloads`] — device power models, the turbo CPU model, and seeded
//!   trace generators (paper §4.3, §5).
//! * [`core`] — the SDB Runtime: CCB/RBL metrics and policies, directive
//!   parameters, the scheduler, and the Section 5 scenarios.
//! * [`observe`] — flight-recorder observability: a metrics registry with
//!   Prometheus/JSON exporters, the structured event bus every layer emits
//!   into, and hot-path span timing.
//! * [`fleet`] — the sharded multi-device fleet simulation engine:
//!   deterministic population sampling, work-queue parallelism over
//!   `std::thread::scope`, and fleet reports that are bit-identical for
//!   any thread count.
//! * [`trace`] — causal trace capture and analysis: JSONL and Chrome
//!   `trace_event` (Perfetto) export of the event stream, trace replay,
//!   and a declarative anomaly/health-rule engine behind `sdb analyze`.
//! * [`tsdb`] — the embedded time-series telemetry store: Gorilla
//!   compression, ring retention with tiered downsampling, typed
//!   queries, the `sdb serve` HTTP surface, and the `sdb perf`
//!   longitudinal regression gate.
//! * [`policy`] — plan-based lookahead policies: load forecasting over
//!   the behavior models, a receding-horizon directive planner, the
//!   perfect-forecast oracle upper bound, and the greedy / planned /
//!   oracle head-to-head corpus behind `sdb policy`.
//! * [`prof`] — the always-on hierarchical phase profiler: scoped timers
//!   into a preallocated slot table, deterministic call counts
//!   quarantined from sampled wall-clock facts, per-shard and per-cohort
//!   attribution, and the renderers behind `sdb profile` / `/profile`.
//! * [`campaign`] — the resumable scenario × chemistry × fault × policy ×
//!   engine matrix orchestrator behind `sdb campaign`: deterministic
//!   sharded cell runner, snapshot-based checkpoints, committed golden
//!   baselines with differential comparison, and culprit-cell
//!   minimization that emits a ready-to-run repro command.
//!
//! ## Quickstart
//!
//! Build a hybrid pack, hand it to the runtime, and run a workload:
//!
//! ```
//! use sdb::battery_model::{BatterySpec, Chemistry};
//! use sdb::core::policy::DischargeDirective;
//! use sdb::core::runtime::SdbRuntime;
//! use sdb::core::scheduler::{run_trace, SimOptions};
//! use sdb::emulator::PackBuilder;
//! use sdb::workloads::Trace;
//!
//! let mut pack = PackBuilder::new()
//!     .battery(BatterySpec::from_chemistry("energy", Chemistry::Type2CoStandard, 3.0))
//!     .battery(BatterySpec::from_chemistry("power", Chemistry::Type3CoPower, 1.5))
//!     .build();
//!
//! let mut runtime = SdbRuntime::new(2);
//! runtime.set_discharge_directive(DischargeDirective::new(0.9));
//!
//! let result = run_trace(
//!     &mut pack,
//!     &mut runtime,
//!     &Trace::constant(5.0, 1800.0),
//!     &SimOptions::default(),
//! );
//! assert!(result.unmet_j < 1e-6);
//! println!("delivered {:.1} kJ, losses {:.1} J",
//!     result.supplied_j / 1e3, result.total_loss_j());
//! ```
//!
//! See `examples/` for the paper's scenarios end-to-end and the
//! `sdb-bench` crate for the full figure-regeneration harness.

pub use sdb_battery_model as battery_model;
pub use sdb_campaign as campaign;
pub use sdb_chaos as chaos;
pub use sdb_core as core;
pub use sdb_emulator as emulator;
pub use sdb_fleet as fleet;
pub use sdb_fuel_gauge as fuel_gauge;
pub use sdb_observe as observe;
pub use sdb_policy as policy;
pub use sdb_power_electronics as power_electronics;
pub use sdb_prof as prof;
pub use sdb_trace as trace;
pub use sdb_tsdb as tsdb;
pub use sdb_workloads as workloads;
